//! Facade crate for the HEBS (Histogram Equalization for Backlight Scaling)
//! reproduction.
//!
//! This crate simply re-exports the workspace members under stable module
//! names so applications can depend on a single crate:
//!
//! * [`imaging`] — image containers, histograms, I/O, synthetic benchmark
//!   suite ([`hebs_imaging`]).
//! * [`quality`] — distortion metrics: UIQI, SSIM, PSNR, HVS model
//!   ([`hebs_quality`]).
//! * [`transform`] — pixel transformation functions and piecewise-linear
//!   coarsening ([`hebs_transform`]).
//! * [`display`] — CCFL / TFT panel power models and the programmable
//!   reference-driver hardware simulation ([`hebs_display`]).
//! * [`core`] — the HEBS algorithm, its baselines and the video pipeline
//!   ([`hebs_core`]).
//! * [`runtime`] — the concurrent, cache-accelerated frame-serving engine
//!   ([`hebs_runtime`]).
//!
//! # Example
//!
//! ```
//! use hebs::core::{BacklightPolicy, HebsPolicy, PipelineConfig};
//! use hebs::imaging::SipiImage;
//!
//! let image = SipiImage::Peppers.generate(64);
//! let policy = HebsPolicy::closed_loop(PipelineConfig::default());
//! let outcome = policy.optimize(&image, 0.10)?;
//! assert!(outcome.power_saving > 0.0);
//! # Ok::<(), hebs::core::HebsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hebs_core as core;
pub use hebs_display as display;
pub use hebs_imaging as imaging;
pub use hebs_quality as quality;
pub use hebs_runtime as runtime;
pub use hebs_transform as transform;
