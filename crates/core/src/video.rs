//! Per-frame backlight scaling for video with temporal smoothing.
//!
//! Running a per-image policy independently on every video frame can make
//! the backlight level jump between frames (visible flicker), especially
//! around scene cuts. The [`VideoPipeline`] wraps any [`BacklightPolicy`]
//! and limits how fast the backlight factor may change per frame, re-deriving
//! the pixel compensation for the smoothed level. It drives the
//! [`hebs_display::controller::LcdController`] model so flicker and bus
//! statistics come out of the same simulation.

use hebs_display::controller::{ControllerStats, LcdController};
use hebs_display::LcdSubsystem;
use hebs_imaging::GrayImage;
use hebs_quality::{DistortionMeasure, HebsDistortion};
use hebs_transform::{ContrastEnhancement, PixelTransform};

use crate::error::{HebsError, Result};
use crate::policy::BacklightPolicy;

/// Per-frame record produced by the video pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameOutcome {
    /// Frame index within the sequence.
    pub frame_index: usize,
    /// Backlight factor requested by the per-image policy.
    pub requested_beta: f64,
    /// Backlight factor actually applied after temporal smoothing.
    pub applied_beta: f64,
    /// Measured distortion of the displayed frame.
    pub distortion: f64,
    /// Power saving of the displayed frame versus full backlight.
    pub power_saving: f64,
}

/// Aggregate results for a processed sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct VideoReport {
    /// Per-frame outcomes, in order.
    pub frames: Vec<FrameOutcome>,
    /// Controller statistics (bus transitions, backlight travel).
    pub controller: ControllerStats,
}

impl VideoReport {
    /// Mean power saving over the sequence.
    pub fn mean_power_saving(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.power_saving))
    }

    /// Mean distortion over the sequence.
    pub fn mean_distortion(&self) -> f64 {
        mean(self.frames.iter().map(|f| f.distortion))
    }

    /// Largest frame-to-frame change in the applied backlight factor.
    pub fn max_backlight_step(&self) -> f64 {
        self.frames
            .windows(2)
            .map(|w| (w[1].applied_beta - w[0].applied_beta).abs())
            .fold(0.0, f64::max)
    }
}

fn mean<I: Iterator<Item = f64>>(values: I) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for v in values {
        sum += v;
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        sum / count as f64
    }
}

/// A video-rate backlight scaling pipeline with temporal smoothing.
pub struct VideoPipeline<P> {
    policy: P,
    subsystem: LcdSubsystem,
    measure: HebsDistortion,
    /// Maximum allowed change of the backlight factor between consecutive
    /// frames.
    max_step: f64,
    /// Distortion budget handed to the per-frame policy.
    max_distortion: f64,
}

impl<P: BacklightPolicy> VideoPipeline<P> {
    /// Creates a pipeline around a per-image policy.
    ///
    /// `max_step` bounds the per-frame backlight change (0.05 ≈ imperceptible
    /// at usual frame rates); `max_distortion` is the per-frame budget.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InvalidFraction`] if either fraction is outside
    /// `[0, 1]`.
    pub fn new(policy: P, max_step: f64, max_distortion: f64) -> Result<Self> {
        for (name, value) in [("max_step", max_step), ("max_distortion", max_distortion)] {
            if !(0.0..=1.0).contains(&value) || !value.is_finite() {
                return Err(HebsError::InvalidFraction { name, value });
            }
        }
        Ok(VideoPipeline {
            policy,
            subsystem: LcdSubsystem::lp064v1(),
            measure: HebsDistortion::default(),
            max_step,
            max_distortion,
        })
    }

    /// The wrapped per-image policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Processes a sequence of frames and returns the per-frame outcomes and
    /// controller statistics.
    ///
    /// # Errors
    ///
    /// Propagates policy and display errors; returns
    /// [`HebsError::InsufficientData`] for an empty sequence.
    pub fn process<I>(&self, frames: I) -> Result<VideoReport>
    where
        I: IntoIterator<Item = GrayImage>,
    {
        let mut iter = frames.into_iter().peekable();
        let first = iter.peek().ok_or(HebsError::InsufficientData {
            samples: 0,
            required: 1,
        })?;
        let mut controller =
            LcdController::new(first.width(), first.height()).map_err(HebsError::Display)?;

        let mut outcomes = Vec::new();
        let mut previous_beta = 1.0f64;
        for (frame_index, frame) in iter.enumerate() {
            let outcome = self.policy.optimize(&frame, self.max_distortion)?;
            let requested_beta = outcome.beta;
            // Temporal smoothing: clamp the change relative to the previous
            // applied level.
            let applied_beta = if frame_index == 0 {
                requested_beta
            } else {
                requested_beta.clamp(previous_beta - self.max_step, previous_beta + self.max_step)
            }
            .clamp(0.0, 1.0);

            // If smoothing changed the level, re-derive a compensation for
            // the applied level so brightness does not visibly pump: the
            // luminance-preserving contrast-enhancement curve for the applied
            // backlight is a safe choice for any policy.
            let (lut, beta_for_power) = if (applied_beta - requested_beta).abs() < 1e-9 {
                (outcome.lut.clone(), requested_beta)
            } else {
                let compensation = ContrastEnhancement::new(applied_beta.max(1.0 / 255.0))?;
                (compensation.to_lut(), applied_beta)
            };

            controller
                .program(lut.clone(), beta_for_power)
                .map_err(HebsError::Display)?;
            let emitted = controller
                .submit_frame(&frame)
                .map_err(HebsError::Display)?;
            let distortion = self.measure.distortion(&frame, &emitted);
            let drive = lut.apply(&frame);
            let power_saving = self
                .subsystem
                .power_saving(&frame, &drive, beta_for_power)?;

            outcomes.push(FrameOutcome {
                frame_index,
                requested_beta,
                applied_beta: beta_for_power,
                distortion,
                power_saving,
            });
            previous_beta = beta_for_power;
        }
        Ok(VideoReport {
            frames: outcomes,
            controller: controller.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::PipelineConfig;
    use crate::policy::HebsPolicy;
    use hebs_imaging::{FrameSequence, SceneKind};

    fn pipeline(max_step: f64) -> VideoPipeline<HebsPolicy> {
        VideoPipeline::new(
            HebsPolicy::closed_loop(PipelineConfig::default()),
            max_step,
            0.12,
        )
        .unwrap()
    }

    #[test]
    fn processes_every_frame() {
        let frames = FrameSequence::new(SceneKind::Static, 48, 48, 4, 7);
        let report = pipeline(0.1).process(frames.frames()).unwrap();
        assert_eq!(report.frames.len(), 4);
        assert_eq!(report.controller.frames, 4);
        assert!(report.mean_power_saving() > 0.0);
        assert!(report.mean_distortion() <= 0.12 + 0.05);
    }

    #[test]
    fn empty_sequence_is_rejected() {
        let result = pipeline(0.1).process(std::iter::empty());
        assert!(matches!(result, Err(HebsError::InsufficientData { .. })));
    }

    #[test]
    fn invalid_parameters_rejected() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        assert!(VideoPipeline::new(policy, 1.5, 0.1).is_err());
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        assert!(VideoPipeline::new(policy, 0.1, -0.1).is_err());
    }

    #[test]
    fn smoothing_bounds_the_backlight_step_across_a_scene_cut() {
        let frames = FrameSequence::new(SceneKind::SceneCut, 48, 48, 6, 9);
        let smoothed = pipeline(0.05).process(frames.frames()).unwrap();
        assert!(
            smoothed.max_backlight_step() <= 0.05 + 1e-9,
            "step {} exceeds bound",
            smoothed.max_backlight_step()
        );

        let unsmoothed = pipeline(1.0).process(frames.frames()).unwrap();
        // Without smoothing the cut produces a much larger jump.
        assert!(unsmoothed.max_backlight_step() >= smoothed.max_backlight_step());
    }

    #[test]
    fn static_scene_keeps_backlight_stable() {
        let frames = FrameSequence::new(SceneKind::Static, 48, 48, 5, 11);
        let report = pipeline(0.1).process(frames.frames()).unwrap();
        let betas: Vec<f64> = report.frames.iter().map(|f| f.applied_beta).collect();
        let spread = betas.iter().cloned().fold(f64::MIN, f64::max)
            - betas.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread < 0.15,
            "backlight wandered by {spread} on a static scene"
        );
    }

    #[test]
    fn fade_to_black_increases_savings_over_time() {
        let frames = FrameSequence::new(SceneKind::FadeToBlack, 48, 48, 6, 13);
        let report = pipeline(0.3).process(frames.frames()).unwrap();
        let first = report.frames.first().unwrap().power_saving;
        let last = report.frames.last().unwrap().power_saving;
        assert!(
            last > first,
            "saving should grow as the scene fades (first {first}, last {last})"
        );
    }
}
