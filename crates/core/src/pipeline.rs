//! The HEBS evaluation pipeline: apply the transformation for a fixed target
//! dynamic range and measure what the display would actually show, consume
//! and distort.
//!
//! Everything in this module goes through the *hardware path*: the requested
//! transformation is coarsened to the segment budget of the hierarchical
//! reference driver, programmed into it (which applies the `1/β` contrast
//! spreading of Eq. 10 and the DAC quantization), and the resulting drive
//! levels are pushed through the panel and backlight models. The distortion
//! is then measured between the original image and the luminance the panel
//! actually emits — so quantization and clamping effects of the real
//! circuit are part of every number the benchmarks report.
//!
//! # Histogram-domain evaluation
//!
//! The displayed level is a deterministic per-level function of the source
//! level (the fused [`DisplayResponse`] of `hebs-display`), so every
//! *global* statistic of the displayed image — mean, variance, covariance,
//! MSE, power — is exactly computable from the source histogram alone.
//! When the configured [`DistortionMeasure`](hebs_quality::DistortionMeasure) supports the histogram-domain
//! entry point (`distortion_from_levels`), fitting runs entirely in level
//! space: a full blend search costs O(candidates × 256) **regardless of
//! frame size**, and pixels are touched exactly once, at apply time, via a
//! single fused LUT pass. Windowed measures (the paper's HVS + SSIM
//! default) fall back to the pixel path, which evaluates candidates into a
//! caller-provided [`FitScratch`] instead of allocating per candidate.

use std::sync::Arc;

use hebs_display::{plrd::HierarchicalPlrd, DisplayResponse, LcdSubsystem, PowerBreakdown};
use hebs_imaging::{GrayImage, Histogram};
use hebs_quality::SharedMeasure;
use hebs_transform::{coarsen, ControlPoint, LookupTable, PiecewiseLinear};

use crate::error::Result;
use crate::ghe::{equalize, TargetRange};

/// The identity source → drive map, the baseline for power accounting.
const IDENTITY_LEVELS: [u8; 256] = {
    let mut map = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        map[i] = i as u8;
        i += 1;
    }
    map
};

/// How the pipeline chooses between pure histogram equalization and plain
/// linear range compression when building the transformation for a target
/// range.
///
/// The paper's algorithm uses pure global histogram equalization
/// ([`BlendMode::Fixed`] with weight 1.0). The reproduction's default is
/// [`BlendMode::Adaptive`], which also considers blends towards a linear
/// compression and keeps whichever measured distortion is lowest — at large
/// target ranges the linear map is nearly lossless, while at small ranges the
/// equalization component preserves the heavily populated levels. The
/// ablation benchmark quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlendMode {
    /// Use a fixed blend weight `w ∈ [0, 1]`: `Φ = (1 − w)·linear + w·GHE`.
    /// `w = 1.0` is the paper's pure GHE.
    Fixed(f64),
    /// Try a small set of blend weights and keep the one with the lowest
    /// measured distortion.
    Adaptive,
}

/// The blend weights the pipeline examines for one fit, stored inline (no
/// per-evaluation allocation).
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlendCandidates {
    values: [f64; 3],
    len: usize,
}

impl BlendCandidates {
    /// The candidate weights as a slice.
    pub(crate) fn as_slice(&self) -> &[f64] {
        &self.values[..self.len]
    }
}

/// Configuration of the HEBS pipeline: hardware models, segment budget and
/// distortion measure.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The reference driver the transformation must fit into.
    pub driver: HierarchicalPlrd,
    /// Maximum number of piecewise-linear segments handed to the driver
    /// (bounded by the driver's own capability).
    pub segments: usize,
    /// The display whose power is being optimized.
    pub subsystem: LcdSubsystem,
    /// The distortion measure used for every comparison. Measures that
    /// implement the histogram-domain entry point make the whole fit
    /// frame-size independent; windowed measures keep the pixel path.
    pub measure: SharedMeasure,
    /// Equalization / linear-compression blending policy.
    pub blend: BlendMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let driver = HierarchicalPlrd::default();
        PipelineConfig {
            segments: driver.max_segments(),
            driver,
            subsystem: LcdSubsystem::lp064v1(),
            measure: SharedMeasure::default(),
            blend: BlendMode::Adaptive,
        }
    }
}

impl PipelineConfig {
    /// The paper's configuration: pure global histogram equalization,
    /// default LP064V1 display and hierarchical driver.
    pub fn paper() -> Self {
        PipelineConfig {
            blend: BlendMode::Fixed(1.0),
            ..Self::default()
        }
    }

    /// Returns the configuration with a different distortion measure.
    pub fn with_measure(mut self, measure: impl hebs_quality::DistortionMeasure + 'static) -> Self {
        self.measure = SharedMeasure::new(measure);
        self
    }

    /// Blend weights examined by the [`BlendMode::Adaptive`] policy.
    pub(crate) fn blend_candidates(&self) -> BlendCandidates {
        match self.blend {
            BlendMode::Fixed(w) => BlendCandidates {
                values: [w.clamp(0.0, 1.0), 0.0, 0.0],
                len: 1,
            },
            BlendMode::Adaptive => BlendCandidates {
                values: [0.0, 0.5, 1.0],
                len: 3,
            },
        }
    }
}

/// The reusable product of the HEBS fitting stage: the programmed
/// transformation for one histogram shape and target range, detached from
/// any particular frame.
///
/// Computing a [`FrameTransform`] is the expensive part of the pipeline (the
/// GHE solve, the blend search and the piecewise-linear-coarsening dynamic
/// program); applying it to a frame is a single fused LUT pass through
/// [`FrameTransform::response`]. The runtime's transformation cache stores
/// values of this type behind an [`Arc`] so near-identical consecutive
/// frames skip the fit without deep-copying the curve.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTransform {
    /// The target range the transformation maps onto.
    pub target: TargetRange,
    /// Backlight scaling factor `β` implied by the target range.
    pub beta: f64,
    /// Blend weight that was selected (1.0 = pure GHE).
    pub blend_weight: f64,
    /// The coarsened transformation handed to the reference driver.
    pub curve: PiecewiseLinear,
    /// The lookup table the driver realizes for this curve and `β` (the
    /// drive levels, including the `1/β` spreading and DAC quantization).
    pub lut: LookupTable,
    /// The fused `driver LUT ∘ panel ∘ backlight` per-level response:
    /// `response.map(p)` is the level the panel emits for source level `p`.
    pub response: DisplayResponse,
}

impl FrameTransform {
    /// Reassembles a transform from its serialized parts (target band,
    /// `β`, blend weight, coarsened curve and programmed LUT), recomposing
    /// the fused display response from the pipeline's subsystem model.
    ///
    /// This is the deserialization half of the runtime's characteristic
    /// snapshots: everything the fit *decided* is carried verbatim, while
    /// the derived response — which has no serialized form of its own — is
    /// rebuilt through the same [`LcdSubsystem::response`] composition that
    /// produced it originally, so a restored transform applies frames
    /// identically to the one that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`crate::HebsError::Display`] when `beta` is outside the
    /// subsystem's admissible backlight range.
    pub fn from_parts(
        config: &PipelineConfig,
        target: TargetRange,
        beta: f64,
        blend_weight: f64,
        curve: PiecewiseLinear,
        lut: LookupTable,
    ) -> Result<Self> {
        let response = config.subsystem.response(&lut, beta)?;
        Ok(FrameTransform {
            target,
            beta,
            blend_weight,
            curve,
            lut,
            response,
        })
    }
}

/// Reusable pixel scratch for the pipeline's pixel paths: candidate
/// displayed images are written here instead of being allocated per
/// evaluation, so a steady-state engine worker performs no intermediate
/// per-frame allocations. One scratch per worker thread; see
/// [`evaluate_at_range_scratch`].
#[derive(Debug, Clone)]
pub struct FitScratch {
    displayed: GrayImage,
    output: GrayImage,
}

impl Default for FitScratch {
    fn default() -> Self {
        FitScratch {
            displayed: GrayImage::filled(1, 1, 0),
            output: GrayImage::filled(1, 1, 0),
        }
    }
}

impl FitScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the reusable *output* frame buffer out of the scratch, leaving
    /// a minimal placeholder behind.
    ///
    /// The output buffer is distinct from the internal candidate buffer:
    /// candidates stay inside the scratch for the whole fit, while the
    /// output leaves the pipeline inside the returned evaluation (the
    /// served frame). Callers that later drop a served frame can donate its
    /// allocation back with [`FitScratch::recycle_output`].
    pub fn take_output(&mut self) -> GrayImage {
        std::mem::replace(&mut self.output, GrayImage::filled(1, 1, 0))
    }

    /// Donates a no-longer-needed frame buffer back to the scratch so the
    /// next [`FitScratch::take_output`] reuses its allocation.
    ///
    /// Keeps whichever of the current and donated buffers has the larger
    /// capacity, so a steady-state worker converges on one full-frame
    /// allocation.
    pub fn recycle_output(&mut self, buffer: GrayImage) {
        if buffer.pixel_count() > self.output.pixel_count() {
            self.output = buffer;
        }
    }
}

/// The frame-independent half of an evaluation: everything the pipeline
/// knows about a fitted transform from the histogram alone — distortion,
/// power, saving — without ever materializing a displayed image.
///
/// Produced by the histogram-domain fit path ([`evaluate_range_from_histogram`])
/// and upgraded to a [`RangeEvaluation`] with [`Evaluation::materialize`]
/// once (and only once) a displayed frame is actually needed.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// The fitted transform; cloning bumps a refcount.
    pub transform: Arc<FrameTransform>,
    /// Distortion of displaying the evaluated histogram through the
    /// transform, exactly as the pixel path would measure it.
    pub distortion: f64,
    /// Power breakdown of the scaled configuration.
    pub power: PowerBreakdown,
    /// Fractional power saving versus full backlight.
    pub power_saving: f64,
    /// Number of target-range fit evaluations performed to produce this
    /// value (each solves the GHE and arbitrates the blend candidates
    /// internally; a closed-loop bisection performs ~8, an open-loop
    /// lookup exactly 1).
    pub fit_evaluations: u32,
}

impl Evaluation {
    /// Produces the displayed image for `image` via one fused LUT pass and
    /// upgrades this histogram-domain evaluation into a full
    /// [`RangeEvaluation`].
    ///
    /// `image` must be the frame whose histogram this evaluation was
    /// computed from, otherwise the recorded distortion does not describe
    /// the produced image.
    pub fn materialize(self, image: &GrayImage) -> RangeEvaluation {
        RangeEvaluation {
            displayed: self.transform.response.apply(image),
            transform: self.transform,
            distortion: self.distortion,
            power: self.power,
            power_saving: self.power_saving,
            fit_evaluations: self.fit_evaluations,
        }
    }

    /// Like [`Evaluation::materialize`] but writes the displayed image into
    /// the scratch's reusable output buffer ([`FitScratch::take_output`])
    /// instead of allocating a fresh frame, so a steady-state serve
    /// performs zero frame-sized allocations.
    pub fn materialize_with_scratch(
        self,
        image: &GrayImage,
        scratch: &mut FitScratch,
    ) -> RangeEvaluation {
        let mut displayed = scratch.take_output();
        self.transform.response.apply_into(image, &mut displayed);
        RangeEvaluation {
            displayed,
            transform: self.transform,
            distortion: self.distortion,
            power: self.power,
            power_saving: self.power_saving,
            fit_evaluations: self.fit_evaluations,
        }
    }
}

/// Everything the pipeline knows after evaluating one image at one target
/// dynamic range.
#[derive(Debug, Clone)]
pub struct RangeEvaluation {
    /// The fitted transform that produced this evaluation (shared; cloning
    /// bumps a refcount instead of copying the curve).
    pub transform: Arc<FrameTransform>,
    /// The luminance image the panel emits (range-compressed to the target).
    pub displayed: GrayImage,
    /// Measured distortion between the original and the displayed image.
    pub distortion: f64,
    /// Power breakdown of the scaled configuration.
    pub power: PowerBreakdown,
    /// Fractional power saving versus showing the original at full
    /// backlight.
    pub power_saving: f64,
    /// Number of target-range fit evaluations performed to produce this
    /// evaluation (0 for a pure replay of an existing transform).
    pub fit_evaluations: u32,
}

impl RangeEvaluation {
    /// The target range that was evaluated.
    pub fn target(&self) -> TargetRange {
        self.transform.target
    }

    /// Backlight scaling factor used (`g_max / 255`).
    pub fn beta(&self) -> f64 {
        self.transform.beta
    }

    /// Blend weight that was ultimately used (1.0 = pure GHE).
    pub fn blend_weight(&self) -> f64 {
        self.transform.blend_weight
    }

    /// The coarsened transformation `Λ` handed to the reference driver.
    pub fn curve(&self) -> &PiecewiseLinear {
        &self.transform.curve
    }

    /// The lookup table the driver realizes.
    pub fn lut(&self) -> &LookupTable {
        &self.transform.lut
    }

    /// A shared handle to the reusable transformation this evaluation was
    /// produced with, for caching and replay on other frames.
    pub fn shared_transform(&self) -> Arc<FrameTransform> {
        Arc::clone(&self.transform)
    }
}

/// Evaluates the HEBS transformation for `image` at the given target dynamic
/// range, running the full hardware path.
///
/// # Errors
///
/// Propagates construction errors from the transformation and display
/// layers (for example when the coarsened curve cannot be realized by the
/// configured driver).
pub fn evaluate_at_range(
    config: &PipelineConfig,
    image: &GrayImage,
    target: TargetRange,
) -> Result<RangeEvaluation> {
    let histogram = Histogram::of(image);
    evaluate_at_range_with_histogram(config, image, &histogram, target)
}

/// Same as [`evaluate_at_range`] but reuses a precomputed histogram (useful
/// when sweeping many ranges for the same image).
///
/// # Errors
///
/// See [`evaluate_at_range`].
pub fn evaluate_at_range_with_histogram(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    target: TargetRange,
) -> Result<RangeEvaluation> {
    let mut scratch = FitScratch::default();
    evaluate_at_range_scratch(config, image, histogram, target, &mut scratch)
}

/// Same as [`evaluate_at_range_with_histogram`] but writes intermediate
/// candidate images into a caller-provided scratch, so repeated fits (a
/// serving engine's steady state) perform no intermediate per-frame
/// allocations. With a histogram-capable measure the scratch is never
/// touched at all — candidates are arbitrated purely in level space.
///
/// # Errors
///
/// See [`evaluate_at_range`].
pub fn evaluate_at_range_scratch(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    target: TargetRange,
    scratch: &mut FitScratch,
) -> Result<RangeEvaluation> {
    let (transform, distortion, evaluations) =
        fit_range(config, histogram, target, Some((image, scratch)))?
            .expect("the pixel fallback was supplied");
    let (power, power_saving) = power_from_histogram(config, histogram, &transform)?;
    let mut displayed = scratch.take_output();
    transform.response.apply_into(image, &mut displayed);
    Ok(RangeEvaluation {
        displayed,
        transform,
        distortion,
        power,
        power_saving,
        fit_evaluations: evaluations,
    })
}

/// Evaluates the best blend candidate for one histogram and target range
/// entirely in the histogram domain: O(candidates × 256), no pixels.
///
/// Returns `None` when the configured measure is windowed and needs the
/// pixel path (use [`evaluate_at_range_scratch`] instead). This is the
/// entry point the closed-loop policy bisects through — a full range search
/// never touches a frame buffer until the final apply.
///
/// # Errors
///
/// Propagates construction errors from the transformation and display
/// layers.
pub fn evaluate_range_from_histogram(
    config: &PipelineConfig,
    histogram: &Histogram,
    target: TargetRange,
) -> Result<Option<Evaluation>> {
    let Some((transform, distortion, evaluations)) = fit_range(config, histogram, target, None)?
    else {
        return Ok(None);
    };
    let (power, power_saving) = power_from_histogram(config, histogram, &transform)?;
    Ok(Some(Evaluation {
        transform,
        distortion,
        power,
        power_saving,
        fit_evaluations: evaluations,
    }))
}

/// Evaluates one already-fitted transform against a histogram in the
/// histogram domain. Returns `None` for windowed measures.
///
/// This is the allocation-free validation primitive the serving runtime
/// uses to recheck cached fits against per-frame distortion budgets before
/// spending any pixel work on them.
///
/// # Errors
///
/// Propagates errors from the display substrate.
pub fn evaluate_transform_from_histogram(
    config: &PipelineConfig,
    histogram: &Histogram,
    transform: &Arc<FrameTransform>,
) -> Result<Option<Evaluation>> {
    let Some(distortion) = config
        .measure
        .distortion_from_levels(histogram, transform.response.levels())
    else {
        return Ok(None);
    };
    let (power, power_saving) = power_from_histogram(config, histogram, transform)?;
    Ok(Some(Evaluation {
        transform: Arc::clone(transform),
        distortion,
        power,
        power_saving,
        fit_evaluations: 0,
    }))
}

/// Fits every blend candidate for `(histogram, target)` and returns the
/// winner `(transform, distortion, fit evaluations)`.
///
/// One call is **one fit evaluation** — the unit `fit_evaluations` counts
/// throughout the stack: a full closed-loop range search performs ~8 of
/// these (one per bisection step), the open-loop table lookup exactly one.
/// The blend candidates a single call arbitrates internally are part of
/// that one evaluation, not separate ones.
///
/// Distortion is measured in the histogram domain when the configured
/// measure supports it; otherwise each candidate's displayed image is
/// produced into the supplied scratch (one fused pass, no allocation) and
/// measured in the pixel domain. Returns `Ok(None)` when the measure needs
/// pixels but no pixel fallback was supplied.
fn fit_range(
    config: &PipelineConfig,
    histogram: &Histogram,
    target: TargetRange,
    mut pixels: Option<(&GrayImage, &mut FitScratch)>,
) -> Result<Option<(Arc<FrameTransform>, f64, u32)>> {
    // Probe measure capability before paying for any candidate fit: a
    // windowed measure with no pixel fallback declines immediately.
    if pixels.is_none()
        && config
            .measure
            .distortion_from_levels(histogram, &IDENTITY_LEVELS)
            .is_none()
    {
        return Ok(None);
    }
    // The GHE solve and the linear band curve depend only on the histogram
    // and target, so hoist them out of the blend-candidate loop.
    let ghe = equalize(histogram, target)?;
    let linear = linear_compression(target);
    let mut best: Option<(Arc<FrameTransform>, f64)> = None;
    for &weight in config.blend_candidates().as_slice() {
        let transform = fit_blended(config, &ghe.transform, &linear, target, weight)?;
        let distortion = match config
            .measure
            .distortion_from_levels(histogram, transform.response.levels())
        {
            Some(distortion) => distortion,
            None => match pixels.as_mut() {
                Some((image, scratch)) => {
                    transform.response.apply_into(image, &mut scratch.displayed);
                    config.measure.distortion(image, &scratch.displayed)
                }
                None => return Ok(None),
            },
        };
        let better = match &best {
            None => true,
            Some((_, current)) => distortion < *current,
        };
        if better {
            best = Some((transform, distortion));
        }
    }
    let (transform, distortion) = best.expect("at least one blend candidate is always evaluated");
    Ok(Some((transform, distortion, 1)))
}

/// Histogram-domain power accounting for one fitted transform: the scaled
/// breakdown and the fractional saving versus full backlight.
fn power_from_histogram(
    config: &PipelineConfig,
    histogram: &Histogram,
    transform: &FrameTransform,
) -> Result<(PowerBreakdown, f64)> {
    let power = config.subsystem.power_from_histogram(
        histogram,
        transform.lut.entries(),
        transform.beta,
    )?;
    let baseline = config
        .subsystem
        .power_from_histogram(histogram, &IDENTITY_LEVELS, 1.0)?;
    let saving = (1.0 - power.total() / baseline.total()).max(0.0);
    Ok((power, saving))
}

/// Blends an already-solved GHE curve with the linear compression and fits
/// the result into the driver (coarsening + programming + response fusion).
fn fit_blended(
    config: &PipelineConfig,
    ghe: &PiecewiseLinear,
    linear: &PiecewiseLinear,
    target: TargetRange,
    blend_weight: f64,
) -> Result<Arc<FrameTransform>> {
    let beta = target.backlight_factor();
    let requested = blend_curves(linear, ghe, blend_weight)?;
    let segments = config.segments.min(config.driver.max_segments()).max(1);
    let coarse = coarsen(&requested, segments)?;
    let programmed = config.driver.program(&coarse.curve, beta)?;
    let response = config.subsystem.response(&programmed.lut, beta)?;
    Ok(Arc::new(FrameTransform {
        target,
        beta,
        blend_weight,
        curve: coarse.curve,
        lut: programmed.lut,
        response,
    }))
}

/// Fits the HEBS transformation for one histogram, target range and blend
/// weight, running the full fitting stage: GHE solve, blend towards the
/// linear compression, piecewise-linear coarsening to the driver's segment
/// budget, programming of the reference driver, and fusion of the display
/// response.
///
/// This is the expensive, frame-independent half of the pipeline; pair it
/// with [`apply_transform`] to evaluate the result on a frame. Callers that
/// serve video at scale compute it once per histogram shape and reuse the
/// returned [`FrameTransform`] across near-identical frames.
///
/// # Errors
///
/// Propagates construction errors from the transformation and display
/// layers.
pub fn fit_transform(
    config: &PipelineConfig,
    histogram: &Histogram,
    target: TargetRange,
    blend_weight: f64,
) -> Result<Arc<FrameTransform>> {
    let ghe = equalize(histogram, target)?;
    let linear = linear_compression(target);
    fit_blended(config, &ghe.transform, &linear, target, blend_weight)
}

/// Applies an already-fitted transformation to a frame and measures what the
/// display would show, consume and distort — the cheap, per-frame half of
/// the pipeline: one histogram pass plus one fused LUT pass.
///
/// # Errors
///
/// Propagates errors from the display substrate.
pub fn apply_transform(
    config: &PipelineConfig,
    image: &GrayImage,
    transform: &Arc<FrameTransform>,
) -> Result<RangeEvaluation> {
    let histogram = Histogram::of(image);
    apply_transform_with_histogram(config, image, &histogram, transform)
}

/// Same as [`apply_transform`] but reuses a precomputed histogram of
/// `image` (the serving runtime already has one for its cache key).
///
/// Distortion and power are measured in the histogram domain when the
/// measure supports it — for the exact frame a transform was fitted on,
/// the result is bit-identical to the fit-time evaluation.
///
/// # Errors
///
/// Propagates errors from the display substrate.
pub fn apply_transform_with_histogram(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    transform: &Arc<FrameTransform>,
) -> Result<RangeEvaluation> {
    let mut scratch = FitScratch::default();
    apply_transform_with_histogram_scratch(config, image, histogram, transform, &mut scratch)
}

/// Same as [`apply_transform_with_histogram`] but materializes the
/// displayed frame into the scratch's reusable output buffer
/// ([`FitScratch::take_output`]), so a cache-hit replay on the serve path
/// allocates nothing once the per-worker scratch has grown to frame size.
///
/// # Errors
///
/// Propagates errors from the display substrate.
pub fn apply_transform_with_histogram_scratch(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    transform: &Arc<FrameTransform>,
    scratch: &mut FitScratch,
) -> Result<RangeEvaluation> {
    let mut displayed = scratch.take_output();
    transform.response.apply_into(image, &mut displayed);
    let distortion = match config
        .measure
        .distortion_from_levels(histogram, transform.response.levels())
    {
        Some(distortion) => distortion,
        None => config.measure.distortion(image, &displayed),
    };
    let (power, power_saving) = power_from_histogram(config, histogram, transform)?;
    Ok(RangeEvaluation {
        transform: Arc::clone(transform),
        displayed,
        distortion,
        power,
        power_saving,
        fit_evaluations: 0,
    })
}

/// Computes the best transformation for `image` at `target` (the blend
/// candidate with the lowest measured distortion) and returns it in its
/// reusable, shared form.
///
/// # Errors
///
/// See [`evaluate_at_range`].
pub fn compute_transform(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    target: TargetRange,
) -> Result<Arc<FrameTransform>> {
    evaluate_at_range_with_histogram(config, image, histogram, target).map(|e| e.transform)
}

/// The plain linear compression of the full input range onto the target
/// band: `Φ(x) = g_min + (g_max − g_min)·x`.
fn linear_compression(target: TargetRange) -> PiecewiseLinear {
    let lo = f64::from(target.g_min()) / 255.0;
    let hi = f64::from(target.g_max()) / 255.0;
    PiecewiseLinear::new(vec![ControlPoint::new(0.0, lo), ControlPoint::new(1.0, hi)])
        .expect("a linear band curve is always valid")
}

/// Point-wise convex blend of two monotone curves (sampled back onto 256
/// control points so the result is again a valid monotone curve).
fn blend_curves(
    linear: &PiecewiseLinear,
    ghe: &PiecewiseLinear,
    weight: f64,
) -> Result<PiecewiseLinear> {
    use hebs_transform::PixelTransform;
    let w = weight.clamp(0.0, 1.0);
    if w <= 0.0 {
        return Ok(linear.clone());
    }
    if w >= 1.0 {
        return Ok(ghe.clone());
    }
    Ok(PiecewiseLinear::from_samples(256, |x| {
        (1.0 - w) * linear.evaluate(x) + w * ghe.evaluate(x)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;
    use hebs_quality::GlobalUiqiDistortion;

    fn small_config() -> PipelineConfig {
        PipelineConfig::default()
    }

    fn histogram_config() -> PipelineConfig {
        PipelineConfig::default().with_measure(GlobalUiqiDistortion)
    }

    #[test]
    fn evaluation_at_full_range_has_negligible_distortion_and_saving() {
        let config = small_config();
        let img = synthetic::still_life(64, 64, 21);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(256).unwrap()).unwrap();
        assert!(eval.distortion < 0.03, "distortion {}", eval.distortion);
        assert!(
            eval.power_saving.abs() < 0.05,
            "saving {}",
            eval.power_saving
        );
        assert!((eval.beta() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_range_gives_more_saving_and_more_distortion() {
        let config = small_config();
        let img = synthetic::portrait(64, 64, 22);
        let wide = evaluate_at_range(&config, &img, TargetRange::from_span(230).unwrap()).unwrap();
        let narrow = evaluate_at_range(&config, &img, TargetRange::from_span(90).unwrap()).unwrap();
        assert!(narrow.power_saving > wide.power_saving + 0.1);
        assert!(narrow.distortion > wide.distortion);
    }

    #[test]
    fn paper_config_uses_pure_ghe() {
        let config = PipelineConfig::paper();
        let img = synthetic::landscape(48, 48, 23);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(128).unwrap()).unwrap();
        assert_eq!(eval.blend_weight(), 1.0);
        assert_eq!(eval.fit_evaluations, 1, "one range fitted, one evaluation");
    }

    #[test]
    fn adaptive_blend_never_does_worse_than_pure_ghe() {
        let adaptive = PipelineConfig::default();
        let pure = PipelineConfig::paper();
        let img = synthetic::low_key(64, 64, 24);
        for span in [220u32, 150, 100] {
            let target = TargetRange::from_span(span).unwrap();
            let a = evaluate_at_range(&adaptive, &img, target).unwrap();
            let p = evaluate_at_range(&pure, &img, target).unwrap();
            assert!(
                a.distortion <= p.distortion + 1e-9,
                "adaptive {} worse than pure {} at span {span}",
                a.distortion,
                p.distortion
            );
            // The adaptive blend arbitrates its candidates *inside* one
            // evaluation: the counter ticks per target range, not per
            // candidate, so open-loop (1) vs closed-loop (~8) comparisons
            // are blend-mode independent.
            assert_eq!(a.fit_evaluations, 1, "one range fitted, one evaluation");
        }
    }

    #[test]
    fn displayed_image_respects_the_target_range() {
        let config = small_config();
        let img = synthetic::fine_texture(64, 64, 25);
        let target = TargetRange::from_span(120).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        // The emitted luminance never exceeds the top of the target band
        // (allowing one level of rounding slack).
        assert!(u32::from(eval.displayed.max_level()) <= target.span() + 1);
    }

    #[test]
    fn curve_fits_the_driver_budget() {
        let config = small_config();
        let img = synthetic::portrait(48, 48, 26);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(100).unwrap()).unwrap();
        assert!(eval.curve().segment_count() <= config.driver.max_segments());
        assert!(eval.lut().is_monotone());
    }

    #[test]
    fn power_breakdown_is_consistent_with_saving() {
        let config = small_config();
        let img = synthetic::still_life(48, 48, 27);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(128).unwrap()).unwrap();
        let baseline = config.subsystem.power(&img, 1.0).unwrap().total();
        let expected_saving = 1.0 - eval.power.total() / baseline;
        assert!((expected_saving - eval.power_saving).abs() < 1e-9);
    }

    #[test]
    fn histogram_reuse_matches_direct_evaluation() {
        let config = small_config();
        let img = synthetic::landscape(48, 48, 28);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(140).unwrap();
        let direct = evaluate_at_range(&config, &img, target).unwrap();
        let reused = evaluate_at_range_with_histogram(&config, &img, &hist, target).unwrap();
        assert_eq!(direct.distortion, reused.distortion);
        assert_eq!(direct.power_saving, reused.power_saving);
    }

    #[test]
    fn apply_transform_reproduces_the_evaluation_it_came_from() {
        let config = small_config();
        let img = synthetic::portrait(48, 48, 31);
        let target = TargetRange::from_span(128).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        let replayed = apply_transform(&config, &img, &eval.transform).unwrap();
        assert_eq!(replayed.distortion, eval.distortion);
        assert_eq!(replayed.power_saving, eval.power_saving);
        assert_eq!(replayed.lut(), eval.lut());
        assert_eq!(replayed.displayed, eval.displayed);
        assert_eq!(replayed.fit_evaluations, 0, "a replay runs no fits");
    }

    #[test]
    fn compute_transform_matches_the_evaluation_path() {
        let config = small_config();
        let img = synthetic::landscape(48, 48, 32);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(140).unwrap();
        let transform = compute_transform(&config, &img, &hist, target).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        assert_eq!(*transform, *eval.transform);
    }

    #[test]
    fn fitted_transform_is_frame_independent() {
        // The fit depends only on the histogram: two different frames with
        // the same histogram produce the same programmed transform.
        let config = small_config();
        let a = synthetic::still_life(48, 48, 33);
        let flipped = hebs_imaging::flip_horizontal(&a);
        let target = TargetRange::from_span(110).unwrap();
        let ta = fit_transform(&config, &Histogram::of(&a), target, 1.0).unwrap();
        let tb = fit_transform(&config, &Histogram::of(&flipped), target, 1.0).unwrap();
        assert_eq!(*ta, *tb);
    }

    #[test]
    fn histogram_domain_fit_agrees_with_the_pixel_path() {
        // The tentpole invariant: with a histogram-capable measure, the
        // level-space fit must agree with a full pixel-path evaluation to
        // within float summation order.
        let config = histogram_config();
        for (seed, img) in [
            synthetic::still_life(64, 64, 41),
            synthetic::portrait(64, 64, 42),
            synthetic::low_key(64, 64, 43),
        ]
        .into_iter()
        .enumerate()
        {
            let hist = Histogram::of(&img);
            for span in [240u32, 160, 90] {
                let target = TargetRange::from_span(span).unwrap();
                let level_space = evaluate_range_from_histogram(&config, &hist, target)
                    .unwrap()
                    .expect("global UIQI is histogram-capable");
                // Reference: measure the materialized image the slow way.
                let displayed = level_space.transform.response.apply(&img);
                let pixel = config.measure.distortion(&img, &displayed);
                assert!(
                    (level_space.distortion - pixel).abs() <= 1e-9,
                    "seed {seed} span {span}: hist {} vs pixel {pixel}",
                    level_space.distortion
                );
                // And the materializing entry point returns the same numbers.
                let full = evaluate_at_range_with_histogram(&config, &img, &hist, target).unwrap();
                assert_eq!(full.distortion, level_space.distortion);
                assert_eq!(full.power_saving, level_space.power_saving);
                assert_eq!(full.displayed, displayed);
            }
        }
    }

    #[test]
    fn windowed_measures_decline_the_histogram_fit() {
        let config = small_config(); // default HVS + SSIM is windowed
        let img = synthetic::portrait(32, 32, 44);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(128).unwrap();
        assert!(evaluate_range_from_histogram(&config, &hist, target)
            .unwrap()
            .is_none());
        // The pixel fallback still works through the scratch entry point.
        let mut scratch = FitScratch::new();
        let eval = evaluate_at_range_scratch(&config, &img, &hist, target, &mut scratch).unwrap();
        assert!(eval.distortion > 0.0);
    }

    #[test]
    fn scratch_reuse_is_deterministic() {
        let config = small_config();
        let img = synthetic::landscape(48, 48, 45);
        let hist = Histogram::of(&img);
        let mut scratch = FitScratch::new();
        let target = TargetRange::from_span(150).unwrap();
        let first = evaluate_at_range_scratch(&config, &img, &hist, target, &mut scratch).unwrap();
        let second = evaluate_at_range_scratch(&config, &img, &hist, target, &mut scratch).unwrap();
        assert_eq!(first.distortion, second.distortion);
        assert_eq!(first.displayed, second.displayed);
    }

    #[test]
    fn evaluate_transform_from_histogram_matches_apply() {
        let config = histogram_config();
        let img = synthetic::still_life(48, 48, 46);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(120).unwrap();
        let transform = fit_transform(&config, &hist, target, 1.0).unwrap();
        let level_space = evaluate_transform_from_histogram(&config, &hist, &transform)
            .unwrap()
            .expect("histogram-capable measure");
        let applied = apply_transform_with_histogram(&config, &img, &hist, &transform).unwrap();
        assert_eq!(level_space.distortion, applied.distortion);
        assert_eq!(level_space.power_saving, applied.power_saving);
    }

    #[test]
    fn pipeline_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineConfig>();
        assert_send_sync::<RangeEvaluation>();
        assert_send_sync::<Evaluation>();
        assert_send_sync::<FrameTransform>();
        assert_send_sync::<BlendMode>();
        assert_send_sync::<FitScratch>();
    }

    #[test]
    fn blend_curves_endpoints() {
        let target = TargetRange::from_span(128).unwrap();
        let linear = linear_compression(target);
        let ghe_curve = PiecewiseLinear::from_samples(64, |x| (x * 0.5).min(0.498));
        let zero = blend_curves(&linear, &ghe_curve, 0.0).unwrap();
        assert_eq!(zero, linear);
        let one = blend_curves(&linear, &ghe_curve, 1.0).unwrap();
        assert_eq!(one, ghe_curve);
    }

    #[test]
    fn blend_candidates_are_allocation_free_and_clamped() {
        let adaptive = PipelineConfig::default();
        assert_eq!(adaptive.blend_candidates().as_slice(), &[0.0, 0.5, 1.0]);
        let fixed = PipelineConfig {
            blend: BlendMode::Fixed(1.7),
            ..PipelineConfig::default()
        };
        assert_eq!(fixed.blend_candidates().as_slice(), &[1.0]);
    }
}
