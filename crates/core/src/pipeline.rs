//! The HEBS evaluation pipeline: apply the transformation for a fixed target
//! dynamic range and measure what the display would actually show, consume
//! and distort.
//!
//! Everything in this module goes through the *hardware path*: the requested
//! transformation is coarsened to the segment budget of the hierarchical
//! reference driver, programmed into it (which applies the `1/β` contrast
//! spreading of Eq. 10 and the DAC quantization), applied to the image, and
//! the resulting drive values are pushed through the panel and backlight
//! models. The distortion is then measured between the original image and
//! the luminance image the panel actually emits — so quantization and
//! clamping effects of the real circuit are part of every number the
//! benchmarks report.

use hebs_display::{plrd::HierarchicalPlrd, LcdSubsystem, PowerBreakdown};
use hebs_imaging::{GrayImage, Histogram};
use hebs_quality::{DistortionMeasure, HebsDistortion};
use hebs_transform::{coarsen, ControlPoint, LookupTable, PiecewiseLinear};

use crate::error::Result;
use crate::ghe::{equalize, TargetRange};

/// How the pipeline chooses between pure histogram equalization and plain
/// linear range compression when building the transformation for a target
/// range.
///
/// The paper's algorithm uses pure global histogram equalization
/// ([`BlendMode::Fixed`] with weight 1.0). The reproduction's default is
/// [`BlendMode::Adaptive`], which also considers blends towards a linear
/// compression and keeps whichever measured distortion is lowest — at large
/// target ranges the linear map is nearly lossless, while at small ranges the
/// equalization component preserves the heavily populated levels. The
/// ablation benchmark quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlendMode {
    /// Use a fixed blend weight `w ∈ [0, 1]`: `Φ = (1 − w)·linear + w·GHE`.
    /// `w = 1.0` is the paper's pure GHE.
    Fixed(f64),
    /// Try a small set of blend weights and keep the one with the lowest
    /// measured distortion.
    Adaptive,
}

/// Configuration of the HEBS pipeline: hardware models, segment budget and
/// distortion measure.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// The reference driver the transformation must fit into.
    pub driver: HierarchicalPlrd,
    /// Maximum number of piecewise-linear segments handed to the driver
    /// (bounded by the driver's own capability).
    pub segments: usize,
    /// The display whose power is being optimized.
    pub subsystem: LcdSubsystem,
    /// The distortion measure used for every comparison.
    pub measure: HebsDistortion,
    /// Equalization / linear-compression blending policy.
    pub blend: BlendMode,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        let driver = HierarchicalPlrd::default();
        PipelineConfig {
            segments: driver.max_segments(),
            driver,
            subsystem: LcdSubsystem::lp064v1(),
            measure: HebsDistortion::default(),
            blend: BlendMode::Adaptive,
        }
    }
}

impl PipelineConfig {
    /// The paper's configuration: pure global histogram equalization,
    /// default LP064V1 display and hierarchical driver.
    pub fn paper() -> Self {
        PipelineConfig {
            blend: BlendMode::Fixed(1.0),
            ..Self::default()
        }
    }

    /// Blend weights examined by the [`BlendMode::Adaptive`] policy.
    pub(crate) fn blend_candidates(&self) -> Vec<f64> {
        match self.blend {
            BlendMode::Fixed(w) => vec![w.clamp(0.0, 1.0)],
            BlendMode::Adaptive => vec![0.0, 0.5, 1.0],
        }
    }
}

/// The reusable product of the HEBS fitting stage: the programmed
/// transformation for one histogram shape and target range, detached from
/// any particular frame.
///
/// Computing a [`FrameTransform`] is the expensive part of the pipeline (the
/// GHE solve, the blend search and the piecewise-linear-coarsening dynamic
/// program); applying it to a frame via [`apply_transform`] is a single LUT
/// pass plus the display models. The runtime's transformation cache stores
/// values of this type so near-identical consecutive frames skip the fit.
/// Cloning is cheap: the LUT shares its storage and the curve is a small
/// control-point vector.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameTransform {
    /// The target range the transformation maps onto.
    pub target: TargetRange,
    /// Backlight scaling factor `β` implied by the target range.
    pub beta: f64,
    /// Blend weight that was selected (1.0 = pure GHE).
    pub blend_weight: f64,
    /// The coarsened transformation handed to the reference driver.
    pub curve: PiecewiseLinear,
    /// The lookup table the driver realizes for this curve and `β`.
    pub lut: LookupTable,
}

/// Everything the pipeline knows after evaluating one image at one target
/// dynamic range.
#[derive(Debug, Clone)]
pub struct RangeEvaluation {
    /// The target range that was evaluated.
    pub target: TargetRange,
    /// Backlight scaling factor used (`g_max / 255`).
    pub beta: f64,
    /// Blend weight that was ultimately used (1.0 = pure GHE).
    pub blend_weight: f64,
    /// The coarsened transformation `Λ` handed to the reference driver
    /// (before the hardware's `1/β` spreading).
    pub curve: PiecewiseLinear,
    /// The lookup table the driver realizes (drive values, including the
    /// `1/β` spreading and DAC quantization).
    pub lut: LookupTable,
    /// The luminance image the panel emits (range-compressed to the target).
    pub displayed: GrayImage,
    /// Measured distortion between the original and the displayed image.
    pub distortion: f64,
    /// Power breakdown of the scaled configuration.
    pub power: PowerBreakdown,
    /// Fractional power saving versus showing the original at full
    /// backlight.
    pub power_saving: f64,
}

impl RangeEvaluation {
    /// Extracts the reusable transformation this evaluation was produced
    /// with, for caching and replay on other frames.
    pub fn transform(&self) -> FrameTransform {
        FrameTransform {
            target: self.target,
            beta: self.beta,
            blend_weight: self.blend_weight,
            curve: self.curve.clone(),
            lut: self.lut.clone(),
        }
    }
}

/// Evaluates the HEBS transformation for `image` at the given target dynamic
/// range, running the full hardware path.
///
/// # Errors
///
/// Propagates construction errors from the transformation and display
/// layers (for example when the coarsened curve cannot be realized by the
/// configured driver).
pub fn evaluate_at_range(
    config: &PipelineConfig,
    image: &GrayImage,
    target: TargetRange,
) -> Result<RangeEvaluation> {
    let histogram = Histogram::of(image);
    evaluate_at_range_with_histogram(config, image, &histogram, target)
}

/// Same as [`evaluate_at_range`] but reuses a precomputed histogram (useful
/// when sweeping many ranges for the same image).
///
/// # Errors
///
/// See [`evaluate_at_range`].
pub fn evaluate_at_range_with_histogram(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    target: TargetRange,
) -> Result<RangeEvaluation> {
    // The GHE solve and the linear band curve depend only on the histogram
    // and target, so hoist them out of the blend-candidate loop.
    let ghe = equalize(histogram, target)?;
    let linear = linear_compression(target);
    let mut best: Option<RangeEvaluation> = None;
    for weight in config.blend_candidates() {
        let transform = fit_blended(config, &ghe.transform, &linear, target, weight)?;
        let candidate = apply_transform(config, image, &transform)?;
        let better = match &best {
            None => true,
            Some(current) => candidate.distortion < current.distortion,
        };
        if better {
            best = Some(candidate);
        }
    }
    Ok(best.expect("at least one blend candidate is always evaluated"))
}

/// Blends an already-solved GHE curve with the linear compression and fits
/// the result into the driver (coarsening + programming).
fn fit_blended(
    config: &PipelineConfig,
    ghe: &PiecewiseLinear,
    linear: &PiecewiseLinear,
    target: TargetRange,
    blend_weight: f64,
) -> Result<FrameTransform> {
    let beta = target.backlight_factor();
    let requested = blend_curves(linear, ghe, blend_weight)?;
    let segments = config.segments.min(config.driver.max_segments()).max(1);
    let coarse = coarsen(&requested, segments)?;
    let programmed = config.driver.program(&coarse.curve, beta)?;
    Ok(FrameTransform {
        target,
        beta,
        blend_weight,
        curve: coarse.curve,
        lut: programmed.lut,
    })
}

/// Fits the HEBS transformation for one histogram, target range and blend
/// weight, running the full fitting stage: GHE solve, blend towards the
/// linear compression, piecewise-linear coarsening to the driver's segment
/// budget, and programming of the reference driver.
///
/// This is the expensive, frame-independent half of the pipeline; pair it
/// with [`apply_transform`] to evaluate the result on a frame. Callers that
/// serve video at scale compute it once per histogram shape and reuse the
/// returned [`FrameTransform`] across near-identical frames.
///
/// # Errors
///
/// Propagates construction errors from the transformation and display
/// layers.
pub fn fit_transform(
    config: &PipelineConfig,
    histogram: &Histogram,
    target: TargetRange,
    blend_weight: f64,
) -> Result<FrameTransform> {
    let ghe = equalize(histogram, target)?;
    let linear = linear_compression(target);
    fit_blended(config, &ghe.transform, &linear, target, blend_weight)
}

/// Applies an already-fitted transformation to a frame and measures what the
/// display would show, consume and distort — the cheap, per-frame half of
/// the pipeline (one LUT pass plus the display models).
///
/// # Errors
///
/// Propagates errors from the display substrate.
pub fn apply_transform(
    config: &PipelineConfig,
    image: &GrayImage,
    transform: &FrameTransform,
) -> Result<RangeEvaluation> {
    let drive_image = transform.lut.apply(image);
    let displayed = config
        .subsystem
        .displayed_image(&drive_image, transform.beta)?;
    let distortion = config.measure.distortion(image, &displayed);
    let power = config.subsystem.power(&drive_image, transform.beta)?;
    let power_saving = config
        .subsystem
        .power_saving(image, &drive_image, transform.beta)?;
    Ok(RangeEvaluation {
        target: transform.target,
        beta: transform.beta,
        blend_weight: transform.blend_weight,
        curve: transform.curve.clone(),
        lut: transform.lut.clone(),
        displayed,
        distortion,
        power,
        power_saving,
    })
}

/// Computes the best transformation for `image` at `target` (the blend
/// candidate with the lowest measured distortion) and returns it in its
/// reusable form.
///
/// # Errors
///
/// See [`evaluate_at_range`].
pub fn compute_transform(
    config: &PipelineConfig,
    image: &GrayImage,
    histogram: &Histogram,
    target: TargetRange,
) -> Result<FrameTransform> {
    evaluate_at_range_with_histogram(config, image, histogram, target).map(|e| e.transform())
}

/// The plain linear compression of the full input range onto the target
/// band: `Φ(x) = g_min + (g_max − g_min)·x`.
fn linear_compression(target: TargetRange) -> PiecewiseLinear {
    let lo = f64::from(target.g_min()) / 255.0;
    let hi = f64::from(target.g_max()) / 255.0;
    PiecewiseLinear::new(vec![ControlPoint::new(0.0, lo), ControlPoint::new(1.0, hi)])
        .expect("a linear band curve is always valid")
}

/// Point-wise convex blend of two monotone curves (sampled back onto 256
/// control points so the result is again a valid monotone curve).
fn blend_curves(
    linear: &PiecewiseLinear,
    ghe: &PiecewiseLinear,
    weight: f64,
) -> Result<PiecewiseLinear> {
    use hebs_transform::PixelTransform;
    let w = weight.clamp(0.0, 1.0);
    if w <= 0.0 {
        return Ok(linear.clone());
    }
    if w >= 1.0 {
        return Ok(ghe.clone());
    }
    Ok(PiecewiseLinear::from_samples(256, |x| {
        (1.0 - w) * linear.evaluate(x) + w * ghe.evaluate(x)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn small_config() -> PipelineConfig {
        PipelineConfig::default()
    }

    #[test]
    fn evaluation_at_full_range_has_negligible_distortion_and_saving() {
        let config = small_config();
        let img = synthetic::still_life(64, 64, 21);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(256).unwrap()).unwrap();
        assert!(eval.distortion < 0.03, "distortion {}", eval.distortion);
        assert!(
            eval.power_saving.abs() < 0.05,
            "saving {}",
            eval.power_saving
        );
        assert!((eval.beta - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smaller_range_gives_more_saving_and_more_distortion() {
        let config = small_config();
        let img = synthetic::portrait(64, 64, 22);
        let wide = evaluate_at_range(&config, &img, TargetRange::from_span(230).unwrap()).unwrap();
        let narrow = evaluate_at_range(&config, &img, TargetRange::from_span(90).unwrap()).unwrap();
        assert!(narrow.power_saving > wide.power_saving + 0.1);
        assert!(narrow.distortion > wide.distortion);
    }

    #[test]
    fn paper_config_uses_pure_ghe() {
        let config = PipelineConfig::paper();
        let img = synthetic::landscape(48, 48, 23);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(128).unwrap()).unwrap();
        assert_eq!(eval.blend_weight, 1.0);
    }

    #[test]
    fn adaptive_blend_never_does_worse_than_pure_ghe() {
        let adaptive = PipelineConfig::default();
        let pure = PipelineConfig::paper();
        let img = synthetic::low_key(64, 64, 24);
        for span in [220u32, 150, 100] {
            let target = TargetRange::from_span(span).unwrap();
            let a = evaluate_at_range(&adaptive, &img, target).unwrap();
            let p = evaluate_at_range(&pure, &img, target).unwrap();
            assert!(
                a.distortion <= p.distortion + 1e-9,
                "adaptive {} worse than pure {} at span {span}",
                a.distortion,
                p.distortion
            );
        }
    }

    #[test]
    fn displayed_image_respects_the_target_range() {
        let config = small_config();
        let img = synthetic::fine_texture(64, 64, 25);
        let target = TargetRange::from_span(120).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        // The emitted luminance never exceeds the top of the target band
        // (allowing one level of rounding slack).
        assert!(u32::from(eval.displayed.max_level()) <= target.span() + 1);
    }

    #[test]
    fn curve_fits_the_driver_budget() {
        let config = small_config();
        let img = synthetic::portrait(48, 48, 26);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(100).unwrap()).unwrap();
        assert!(eval.curve.segment_count() <= config.driver.max_segments());
        assert!(eval.lut.is_monotone());
    }

    #[test]
    fn power_breakdown_is_consistent_with_saving() {
        let config = small_config();
        let img = synthetic::still_life(48, 48, 27);
        let eval = evaluate_at_range(&config, &img, TargetRange::from_span(128).unwrap()).unwrap();
        let baseline = config.subsystem.power(&img, 1.0).unwrap().total();
        let expected_saving = 1.0 - eval.power.total() / baseline;
        assert!((expected_saving - eval.power_saving).abs() < 1e-9);
    }

    #[test]
    fn histogram_reuse_matches_direct_evaluation() {
        let config = small_config();
        let img = synthetic::landscape(48, 48, 28);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(140).unwrap();
        let direct = evaluate_at_range(&config, &img, target).unwrap();
        let reused = evaluate_at_range_with_histogram(&config, &img, &hist, target).unwrap();
        assert_eq!(direct.distortion, reused.distortion);
        assert_eq!(direct.power_saving, reused.power_saving);
    }

    #[test]
    fn apply_transform_reproduces_the_evaluation_it_came_from() {
        let config = small_config();
        let img = synthetic::portrait(48, 48, 31);
        let target = TargetRange::from_span(128).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        let replayed = apply_transform(&config, &img, &eval.transform()).unwrap();
        assert_eq!(replayed.distortion, eval.distortion);
        assert_eq!(replayed.power_saving, eval.power_saving);
        assert_eq!(replayed.lut, eval.lut);
        assert_eq!(replayed.displayed, eval.displayed);
    }

    #[test]
    fn compute_transform_matches_the_evaluation_path() {
        let config = small_config();
        let img = synthetic::landscape(48, 48, 32);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(140).unwrap();
        let transform = compute_transform(&config, &img, &hist, target).unwrap();
        let eval = evaluate_at_range(&config, &img, target).unwrap();
        assert_eq!(transform, eval.transform());
    }

    #[test]
    fn fitted_transform_is_frame_independent() {
        // The fit depends only on the histogram: two different frames with
        // the same histogram produce the same programmed transform.
        let config = small_config();
        let a = synthetic::still_life(48, 48, 33);
        let flipped = hebs_imaging::flip_horizontal(&a);
        let target = TargetRange::from_span(110).unwrap();
        let ta = fit_transform(&config, &Histogram::of(&a), target, 1.0).unwrap();
        let tb = fit_transform(&config, &Histogram::of(&flipped), target, 1.0).unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn pipeline_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineConfig>();
        assert_send_sync::<RangeEvaluation>();
        assert_send_sync::<FrameTransform>();
        assert_send_sync::<BlendMode>();
    }

    #[test]
    fn blend_curves_endpoints() {
        let target = TargetRange::from_span(128).unwrap();
        let linear = linear_compression(target);
        let ghe_curve = PiecewiseLinear::from_samples(64, |x| (x * 0.5).min(0.498));
        let zero = blend_curves(&linear, &ghe_curve, 0.0).unwrap();
        assert_eq!(zero, linear);
        let one = blend_curves(&linear, &ghe_curve, 1.0).unwrap();
        assert_eq!(one, ghe_curve);
    }
}
