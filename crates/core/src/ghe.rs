//! The Global Histogram Equalization (GHE) problem solver.
//!
//! Section 4 of the paper: given the cumulative histogram `H` of the
//! original image and a target dynamic range `[g_min, g_max]`, the monotone
//! transformation that maps `H` onto the uniform cumulative histogram `U`
//! supported on `[g_min, g_max]` is (Eq. 5)
//!
//! ```text
//! Φ(x) = g_min + (g_max − g_min) · H(x) / N
//! ```
//!
//! whose discrete form (Eq. 7) accumulates the marginal histogram. The
//! result is the pixel transformation used by HEBS before piecewise-linear
//! coarsening.

use hebs_imaging::{CumulativeHistogram, GrayImage, Histogram};
use hebs_transform::{ControlPoint, PiecewiseLinear};

use crate::error::{HebsError, Result};

/// A target dynamic range for the transformed image, expressed as the
/// inclusive level band `[g_min, g_max]` on the 0–255 scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetRange {
    g_min: u8,
    g_max: u8,
}

impl TargetRange {
    /// Creates a target band `[g_min, g_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InvalidDynamicRange`] if the band spans fewer
    /// than 2 levels.
    pub fn new(g_min: u8, g_max: u8) -> Result<Self> {
        if g_max <= g_min {
            return Err(HebsError::InvalidDynamicRange {
                range: u32::from(g_max.saturating_sub(g_min)) + 1,
            });
        }
        Ok(TargetRange { g_min, g_max })
    }

    /// The band `[0, range − 1]`: compress towards black, which maximizes
    /// the admissible backlight dimming (the brightest transformed level is
    /// `range − 1`, so the backlight only needs to reach that luminance).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InvalidDynamicRange`] unless `2 ≤ range ≤ 256`.
    pub fn from_span(range: u32) -> Result<Self> {
        if !(2..=256).contains(&range) {
            return Err(HebsError::InvalidDynamicRange { range });
        }
        Ok(TargetRange {
            g_min: 0,
            g_max: (range - 1) as u8,
        })
    }

    /// Lower edge of the band.
    pub fn g_min(&self) -> u8 {
        self.g_min
    }

    /// Upper edge of the band.
    pub fn g_max(&self) -> u8 {
        self.g_max
    }

    /// Number of levels spanned by the band.
    pub fn span(&self) -> u32 {
        u32::from(self.g_max) - u32::from(self.g_min) + 1
    }

    /// The backlight scaling factor naturally associated with this band:
    /// the brightest transformed level over the full scale,
    /// `β = g_max / 255`.
    ///
    /// Dimming below this would make the brightest transformed pixel darker
    /// than intended even at full transmittance.
    pub fn backlight_factor(&self) -> f64 {
        f64::from(self.g_max).max(1.0) / 255.0
    }
}

/// Solution of the GHE problem for one image histogram and target range.
#[derive(Debug, Clone, PartialEq)]
pub struct GheSolution {
    /// The exact transformation `Φ` (one control point per grayscale level).
    pub transform: PiecewiseLinear,
    /// The target range the transformation maps onto.
    pub target: TargetRange,
    /// Residual equalization error: the normalized L1 difference between the
    /// transformed image's cumulative histogram and the ideal uniform
    /// cumulative histogram (the objective of Eq. 4).
    pub equalization_error: f64,
}

/// Solves the GHE problem for an image histogram.
///
/// The returned transformation has one control point per grayscale level
/// (256 points, 255 segments) and is exactly the discrete map of Eq. 7:
/// level `x` maps to `g_min + (g_max − g_min) · H(x)/N`.
///
/// # Errors
///
/// Currently infallible for valid [`TargetRange`] values; the `Result`
/// return type leaves room for stricter validation.
///
/// # Examples
///
/// ```
/// use hebs_core::ghe::{equalize, TargetRange};
/// use hebs_imaging::{GrayImage, Histogram};
/// use hebs_transform::PixelTransform;
///
/// let image = GrayImage::from_fn(64, 64, |x, _| (x * 4) as u8);
/// let hist = Histogram::of(&image);
/// let solution = equalize(&hist, TargetRange::from_span(128)?)?;
/// // The brightest level maps to the top of the target band.
/// assert!((solution.transform.evaluate(1.0) - 127.0 / 255.0).abs() < 1e-9);
/// # Ok::<(), hebs_core::HebsError>(())
/// ```
pub fn equalize(histogram: &Histogram, target: TargetRange) -> Result<GheSolution> {
    let n = histogram.total().max(1) as f64;
    let cumulative = histogram.cumulative();
    let lo = f64::from(target.g_min()) / 255.0;
    let hi = f64::from(target.g_max()) / 255.0;
    let span = hi - lo;

    let mut points = Vec::with_capacity(256);
    for level in 0..=255u16 {
        let x = f64::from(level) / 255.0;
        let h = cumulative.up_to(level as u8) as f64 / n;
        let y = lo + span * h;
        points.push(ControlPoint::new(x, y.clamp(0.0, 1.0)));
    }
    // Enforce the monotone, strictly-increasing-abscissa invariant; the
    // ordinates from a CDF are non-decreasing by construction.
    let transform = PiecewiseLinear::new(points)?;

    // Residual objective of Eq. 4: compare the histogram of the transformed
    // levels with the ideal uniform target.
    let transformed_hist = transformed_histogram(histogram, &transform);
    let target_cum =
        CumulativeHistogram::uniform_target(histogram.total(), target.g_min(), target.g_max());
    let equalization_error = transformed_hist
        .cumulative()
        .equalization_error(&target_cum)
        / 256.0;

    Ok(GheSolution {
        transform,
        target,
        equalization_error,
    })
}

/// Applies a GHE solution to an image, producing the range-compressed image
/// `F' = Φ(F)`.
pub fn apply(solution: &GheSolution, image: &GrayImage) -> GrayImage {
    use hebs_transform::PixelTransform;
    solution.transform.to_lut().apply(image)
}

/// Histogram of the levels an image with histogram `histogram` would have
/// after being pushed through `transform` (without materializing an image).
pub fn transformed_histogram(histogram: &Histogram, transform: &PiecewiseLinear) -> Histogram {
    use hebs_transform::PixelTransform;
    let lut = transform.to_lut();
    let mut counts = [0u64; 256];
    for level in 0..=255u16 {
        let count = histogram.count(level as u8);
        if count > 0 {
            counts[lut.map(level as u8) as usize] += count;
        }
    }
    Histogram::from_counts(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;
    use hebs_transform::PixelTransform;

    #[test]
    fn target_range_validation() {
        assert!(TargetRange::new(10, 10).is_err());
        assert!(TargetRange::new(20, 10).is_err());
        assert!(TargetRange::new(0, 255).is_ok());
        assert!(TargetRange::from_span(1).is_err());
        assert!(TargetRange::from_span(257).is_err());
        let r = TargetRange::from_span(100).unwrap();
        assert_eq!(r.g_min(), 0);
        assert_eq!(r.g_max(), 99);
        assert_eq!(r.span(), 100);
        assert!((r.backlight_factor() - 99.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn full_range_equalization_of_a_ramp_is_identity() {
        // A full ramp already has a uniform histogram: equalizing it onto the
        // full range should leave it (nearly) unchanged.
        let ramp = GrayImage::from_fn(256, 4, |x, _| x as u8);
        let hist = Histogram::of(&ramp);
        let solution = equalize(&hist, TargetRange::new(0, 255).unwrap()).unwrap();
        for level in [0u8, 64, 128, 200, 255] {
            let x = f64::from(level) / 255.0;
            let y = solution.transform.evaluate(x);
            assert!((y - x).abs() < 0.01, "level {level}: {y} vs {x}");
        }
        assert!(solution.equalization_error < 0.02);
    }

    #[test]
    fn equalization_compresses_to_target_range() {
        let img = synthetic::portrait(96, 96, 5);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(120).unwrap();
        let solution = equalize(&hist, target).unwrap();
        let compressed = apply(&solution, &img);
        assert!(u32::from(compressed.max_level()) <= target.span());
        assert!(compressed.min_level() <= 5);
    }

    #[test]
    fn transformed_histogram_is_flatter_than_original() {
        // Equalization should reduce the distance to the uniform target
        // compared with simple linear compression.
        let img = synthetic::low_key(96, 96, 9);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(128).unwrap();
        let ghe = equalize(&hist, target).unwrap();

        // Linear compression onto the same range for comparison.
        let linear = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.0),
            ControlPoint::new(1.0, f64::from(target.g_max()) / 255.0),
        ])
        .unwrap();
        let uniform =
            CumulativeHistogram::uniform_target(hist.total(), target.g_min(), target.g_max());
        let ghe_error = transformed_histogram(&hist, &ghe.transform)
            .cumulative()
            .equalization_error(&uniform);
        let linear_error = transformed_histogram(&hist, &linear)
            .cumulative()
            .equalization_error(&uniform);
        assert!(
            ghe_error < linear_error,
            "GHE error {ghe_error} not below linear compression error {linear_error}"
        );
    }

    #[test]
    fn equalized_output_spans_the_band_endpoints() {
        let img = synthetic::still_life(64, 64, 3);
        let hist = Histogram::of(&img);
        let target = TargetRange::new(0, 199).unwrap();
        let solution = equalize(&hist, target).unwrap();
        // The darkest original level maps near g_min and the brightest near
        // g_max (H ranges from ~0 to N).
        assert!(solution.transform.evaluate(0.0) <= 0.05);
        assert!((solution.transform.evaluate(1.0) - 199.0 / 255.0).abs() < 1e-9);
    }

    #[test]
    fn transform_is_monotone_for_arbitrary_histograms() {
        for seed in 0..5u64 {
            let img = synthetic::fine_texture(48, 48, seed);
            let hist = Histogram::of(&img);
            let solution = equalize(&hist, TargetRange::from_span(64).unwrap()).unwrap();
            assert!(solution.transform.to_lut().is_monotone());
        }
    }

    #[test]
    fn constant_image_maps_all_pixels_to_band_top() {
        // For a constant image H(x) jumps from 0 to N at the single level:
        // that level (and everything above) maps to g_max.
        let img = GrayImage::filled(16, 16, 77);
        let hist = Histogram::of(&img);
        let target = TargetRange::from_span(100).unwrap();
        let solution = equalize(&hist, target).unwrap();
        let out = apply(&solution, &img);
        assert_eq!(out.get(0, 0), Some(99));
    }

    #[test]
    fn empty_histogram_does_not_panic() {
        let hist = Histogram::new();
        let solution = equalize(&hist, TargetRange::from_span(64).unwrap()).unwrap();
        assert!(solution.transform.to_lut().is_monotone());
    }

    #[test]
    fn smaller_target_range_means_dimmer_backlight() {
        let wide = TargetRange::from_span(220).unwrap();
        let narrow = TargetRange::from_span(100).unwrap();
        assert!(narrow.backlight_factor() < wide.backlight_factor());
    }
}
