//! Prior-work baseline policies: DLS and CBCS.
//!
//! The paper compares HEBS against two earlier backlight-scaling approaches:
//!
//! * **DLS** (Chang, Choi, Shim — reference \[4\]): dim the backlight and
//!   compensate every pixel with either the *brightness compensation*
//!   `Φ(x,β) = min(1, x + 1 − β)` or the *contrast enhancement*
//!   `Φ(x,β) = min(1, x/β)` function; distortion comes from the pixels that
//!   saturate.
//! * **CBCS** (Cheng, Pedram — reference \[5\]): pick one band `[g_l, g_u]` of
//!   the histogram, clamp everything outside it and spread the band over the
//!   full grayscale range with the conventional reference driver; the
//!   backlight is dimmed to the band width.
//!
//! Both are implemented against the same display models and the same
//! distortion measure as HEBS so the comparison benchmark is apples to
//! apples.

use hebs_display::plrd::ConventionalPlrd;
use hebs_display::LcdSubsystem;
use hebs_imaging::{GrayImage, Histogram};
use hebs_quality::{DistortionMeasure, HebsDistortion};
use hebs_transform::{
    BrightnessCompensation, ContrastEnhancement, LookupTable, PixelTransform, SingleBandSpreading,
};

use crate::error::{HebsError, Result};
use crate::policy::{BacklightPolicy, ScalingOutcome};

/// Which of the two DLS pixel-compensation functions to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DlsVariant {
    /// `Φ(x,β) = min(1, x + 1 − β)` (Figure 2b of the paper).
    BrightnessCompensation,
    /// `Φ(x,β) = min(1, x/β)` (Figure 2c of the paper).
    ContrastEnhancement,
}

impl DlsVariant {
    fn name(self) -> &'static str {
        match self {
            DlsVariant::BrightnessCompensation => "dls-brightness",
            DlsVariant::ContrastEnhancement => "dls-contrast",
        }
    }

    fn lut_for(self, beta: f64) -> Result<LookupTable> {
        let lut = match self {
            DlsVariant::BrightnessCompensation => BrightnessCompensation::new(beta)?.to_lut(),
            DlsVariant::ContrastEnhancement => ContrastEnhancement::new(beta)?.to_lut(),
        };
        Ok(lut)
    }
}

/// The DLS baseline policy of reference \[4\].
#[derive(Debug, Clone)]
pub struct DlsPolicy {
    variant: DlsVariant,
    subsystem: LcdSubsystem,
    measure: HebsDistortion,
    /// Granularity of the backlight search grid.
    beta_steps: usize,
}

impl DlsPolicy {
    /// Creates the policy with the default LP064V1 display and the paper's
    /// distortion measure.
    pub fn new(variant: DlsVariant) -> Self {
        DlsPolicy {
            variant,
            subsystem: LcdSubsystem::lp064v1(),
            measure: HebsDistortion::default(),
            beta_steps: 64,
        }
    }

    /// Replaces the display model (used by ablations).
    pub fn with_subsystem(mut self, subsystem: LcdSubsystem) -> Self {
        self.subsystem = subsystem;
        self
    }

    /// Replaces the distortion measure (used by ablations).
    pub fn with_measure(mut self, measure: HebsDistortion) -> Self {
        self.measure = measure;
        self
    }

    fn evaluate(&self, image: &GrayImage, beta: f64) -> Result<ScalingOutcome> {
        let lut = self.variant.lut_for(beta)?;
        let drive = lut.apply(image);
        let displayed = self.subsystem.displayed_image(&drive, beta)?;
        let distortion = self.measure.distortion(image, &displayed);
        let power = self.subsystem.power(&drive, beta)?;
        let power_saving = self.subsystem.power_saving(image, &drive, beta)?;
        Ok(ScalingOutcome {
            policy: self.variant.name().to_string(),
            beta,
            dynamic_range: None,
            distortion,
            power,
            power_saving,
            lut,
            displayed,
            fit_evaluations: 1,
        })
    }
}

impl BacklightPolicy for DlsPolicy {
    fn name(&self) -> &str {
        self.variant.name()
    }

    fn optimize(&self, image: &GrayImage, max_distortion: f64) -> Result<ScalingOutcome> {
        check_budget(max_distortion)?;
        // Distortion grows as β shrinks; walk the grid from dim to bright and
        // return the dimmest feasible setting.
        let mut best: Option<ScalingOutcome> = None;
        let mut evaluations = 0u32;
        for step in 1..=self.beta_steps {
            let beta = step as f64 / self.beta_steps as f64;
            let outcome = self.evaluate(image, beta)?;
            evaluations += 1;
            if outcome.distortion <= max_distortion {
                best = Some(outcome);
                break;
            }
        }
        match best {
            Some(mut outcome) => {
                outcome.fit_evaluations = evaluations;
                Ok(outcome)
            }
            // Nothing feasible: fall back to full backlight (zero saving).
            None => {
                let mut outcome = self.evaluate(image, 1.0)?;
                outcome.fit_evaluations = evaluations + 1;
                Ok(outcome)
            }
        }
    }
}

/// The CBCS (concurrent brightness/contrast scaling) baseline policy of
/// reference \[5\].
#[derive(Debug, Clone)]
pub struct CbcsPolicy {
    subsystem: LcdSubsystem,
    measure: HebsDistortion,
    driver: ConventionalPlrd,
    /// Candidate fractions of pixels allowed to be clipped outside the band.
    clip_fractions: Vec<f64>,
}

impl Default for CbcsPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl CbcsPolicy {
    /// Creates the policy with the default LP064V1 display, the conventional
    /// 10-tap reference driver and the paper's distortion measure.
    pub fn new() -> Self {
        CbcsPolicy {
            subsystem: LcdSubsystem::lp064v1(),
            measure: HebsDistortion::default(),
            driver: ConventionalPlrd::default(),
            clip_fractions: vec![0.0, 0.01, 0.02, 0.05, 0.08, 0.12, 0.16, 0.22, 0.30, 0.40],
        }
    }

    /// Replaces the display model (used by ablations).
    pub fn with_subsystem(mut self, subsystem: LcdSubsystem) -> Self {
        self.subsystem = subsystem;
        self
    }

    /// Replaces the distortion measure (used by ablations).
    pub fn with_measure(mut self, measure: HebsDistortion) -> Self {
        self.measure = measure;
        self
    }

    /// The shortest level band `[g_l, g_u]` containing at least
    /// `1 − clip_fraction` of the pixels, found with a two-pointer sweep over
    /// the cumulative histogram.
    fn shortest_band(histogram: &Histogram, clip_fraction: f64) -> (u8, u8) {
        let total = histogram.total();
        if total == 0 {
            return (0, 255);
        }
        let needed = ((1.0 - clip_fraction) * total as f64).ceil() as u64;
        let needed = needed.clamp(1, total);
        let cumulative = histogram.cumulative();
        let mut best: (u8, u8) = (0, 255);
        let mut best_width = 256u32;
        let mut lo = 0usize;
        for hi in 0..256usize {
            // Pixels inside [lo, hi].
            loop {
                let below_lo = if lo == 0 {
                    0
                } else {
                    cumulative.up_to((lo - 1) as u8)
                };
                let inside = cumulative.up_to(hi as u8) - below_lo;
                if inside < needed {
                    break;
                }
                let width = (hi - lo + 1) as u32;
                if width < best_width {
                    best_width = width;
                    best = (lo as u8, hi as u8);
                }
                lo += 1;
                if lo > hi {
                    break;
                }
            }
        }
        best
    }

    fn evaluate(&self, image: &GrayImage, band: (u8, u8)) -> Result<ScalingOutcome> {
        let (g_l, g_u) = band;
        let lower = f64::from(g_l) / 255.0;
        let upper = (f64::from(g_u) / 255.0).max(lower + 1.0 / 255.0);
        // The backlight only needs to reach the band width: displayed
        // luminance of the band top is then g_u − g_l, preserving in-band
        // contrast exactly (the CBCS design point).
        let beta = (upper - lower).clamp(1.0 / 255.0, 1.0);
        let spreading = SingleBandSpreading::new(lower, upper.min(1.0), beta)?;
        let programmed = self.driver.program(&spreading)?;
        let drive = programmed.lut.apply(image);
        let displayed = self.subsystem.displayed_image(&drive, beta)?;
        let distortion = self.measure.distortion(image, &displayed);
        let power = self.subsystem.power(&drive, beta)?;
        let power_saving = self.subsystem.power_saving(image, &drive, beta)?;
        Ok(ScalingOutcome {
            policy: "cbcs".to_string(),
            beta,
            dynamic_range: Some(u32::from(g_u) - u32::from(g_l) + 1),
            distortion,
            power,
            power_saving,
            lut: programmed.lut,
            displayed,
            fit_evaluations: 1,
        })
    }
}

impl BacklightPolicy for CbcsPolicy {
    fn name(&self) -> &str {
        "cbcs"
    }

    fn optimize(&self, image: &GrayImage, max_distortion: f64) -> Result<ScalingOutcome> {
        check_budget(max_distortion)?;
        let histogram = Histogram::of(image);
        let mut best: Option<ScalingOutcome> = None;
        let mut evaluations = 0u32;
        for &clip in &self.clip_fractions {
            let band = Self::shortest_band(&histogram, clip);
            let outcome = self.evaluate(image, band)?;
            evaluations += 1;
            if outcome.distortion > max_distortion {
                continue;
            }
            let better = match &best {
                None => true,
                Some(current) => outcome.power_saving > current.power_saving,
            };
            if better {
                best = Some(outcome);
            }
        }
        match best {
            Some(mut outcome) => {
                outcome.fit_evaluations = evaluations;
                Ok(outcome)
            }
            // Nothing feasible: keep the full range at full backlight.
            None => {
                let mut outcome = self.evaluate(image, (0, 255))?;
                outcome.fit_evaluations = evaluations + 1;
                Ok(outcome)
            }
        }
    }
}

fn check_budget(max_distortion: f64) -> Result<()> {
    if !(0.0..=1.0).contains(&max_distortion) || !max_distortion.is_finite() {
        return Err(HebsError::InvalidFraction {
            name: "max_distortion",
            value: max_distortion,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn test_image() -> GrayImage {
        synthetic::still_life(64, 64, 51)
    }

    #[test]
    fn dls_respects_the_distortion_bound() {
        for variant in [
            DlsVariant::ContrastEnhancement,
            DlsVariant::BrightnessCompensation,
        ] {
            let policy = DlsPolicy::new(variant);
            let outcome = policy.optimize(&test_image(), 0.10).unwrap();
            assert!(
                outcome.distortion <= 0.10 + 1e-9,
                "{}: {}",
                policy.name(),
                outcome.distortion
            );
            assert!(outcome.beta > 0.0 && outcome.beta <= 1.0);
        }
    }

    #[test]
    fn dls_contrast_enhancement_saves_power_at_moderate_budgets() {
        let policy = DlsPolicy::new(DlsVariant::ContrastEnhancement);
        let outcome = policy.optimize(&test_image(), 0.10).unwrap();
        assert!(outcome.power_saving > 0.0);
        assert_eq!(outcome.policy, "dls-contrast");
        assert!(outcome.dynamic_range.is_none());
    }

    #[test]
    fn dls_with_zero_budget_falls_back_to_full_backlight() {
        let policy = DlsPolicy::new(DlsVariant::ContrastEnhancement);
        let outcome = policy.optimize(&test_image(), 0.0).unwrap();
        // Either a genuinely distortion-free dimming or the identity
        // fallback; in both cases the bound may not be exceeded by much more
        // than numerical noise, and β must be near 1 for a busy image.
        assert!(outcome.beta > 0.9);
    }

    #[test]
    fn dls_larger_budget_never_saves_less() {
        let policy = DlsPolicy::new(DlsVariant::ContrastEnhancement);
        let img = test_image();
        let tight = policy.optimize(&img, 0.05).unwrap();
        let loose = policy.optimize(&img, 0.20).unwrap();
        assert!(loose.power_saving + 1e-9 >= tight.power_saving);
    }

    #[test]
    fn dls_invalid_budget_rejected() {
        let policy = DlsPolicy::new(DlsVariant::BrightnessCompensation);
        assert!(policy.optimize(&test_image(), -0.5).is_err());
        assert!(policy.optimize(&test_image(), 2.0).is_err());
    }

    #[test]
    fn cbcs_shortest_band_contains_requested_mass() {
        let img = synthetic::portrait(64, 64, 52);
        let hist = Histogram::of(&img);
        let (lo, hi) = CbcsPolicy::shortest_band(&hist, 0.10);
        let cumulative = hist.cumulative();
        let below = if lo == 0 { 0 } else { cumulative.up_to(lo - 1) };
        let inside = cumulative.up_to(hi) - below;
        assert!(inside as f64 >= 0.90 * hist.total() as f64);
        assert!(hi >= lo);
    }

    #[test]
    fn cbcs_shortest_band_of_constant_image_is_narrow() {
        let img = GrayImage::filled(16, 16, 100);
        let hist = Histogram::of(&img);
        let (lo, hi) = CbcsPolicy::shortest_band(&hist, 0.0);
        assert_eq!(lo, 100);
        assert_eq!(hi, 100);
    }

    #[test]
    fn cbcs_respects_the_distortion_bound() {
        let policy = CbcsPolicy::new();
        let outcome = policy.optimize(&test_image(), 0.10).unwrap();
        // Either feasible under the bound or the explicit full-range
        // fallback.
        if outcome.beta < 0.999 {
            assert!(outcome.distortion <= 0.10 + 1e-9);
        }
        assert_eq!(outcome.policy, "cbcs");
    }

    #[test]
    fn cbcs_saves_power_on_narrow_histogram_images() {
        // A low-key image concentrates its histogram, which is CBCS's best
        // case: a narrow band captures almost all pixels.
        let img = synthetic::low_key(64, 64, 53);
        let policy = CbcsPolicy::new();
        let outcome = policy.optimize(&img, 0.15).unwrap();
        assert!(
            outcome.power_saving > 0.2,
            "expected CBCS to save power on a low-key image, got {}",
            outcome.power_saving
        );
    }

    #[test]
    fn cbcs_larger_budget_never_saves_less() {
        let policy = CbcsPolicy::new();
        let img = test_image();
        let tight = policy.optimize(&img, 0.05).unwrap();
        let loose = policy.optimize(&img, 0.25).unwrap();
        assert!(loose.power_saving + 1e-9 >= tight.power_saving);
    }

    #[test]
    fn hebs_beats_both_baselines_at_equal_distortion() {
        // The paper's headline comparison: at the same distortion budget,
        // HEBS saves more power than DLS and CBCS.
        use crate::pipeline::PipelineConfig;
        use crate::policy::HebsPolicy;
        let img = test_image();
        let budget = 0.10;
        let hebs = HebsPolicy::closed_loop(PipelineConfig::default())
            .optimize(&img, budget)
            .unwrap();
        let dls = DlsPolicy::new(DlsVariant::ContrastEnhancement)
            .optimize(&img, budget)
            .unwrap();
        let cbcs = CbcsPolicy::new().optimize(&img, budget).unwrap();
        assert!(
            hebs.power_saving >= dls.power_saving - 1e-9,
            "HEBS {} should beat DLS {}",
            hebs.power_saving,
            dls.power_saving
        );
        assert!(
            hebs.power_saving >= cbcs.power_saving - 1e-9,
            "HEBS {} should beat CBCS {}",
            hebs.power_saving,
            cbcs.power_saving
        );
    }

    #[test]
    fn policies_work_through_the_trait_object() {
        let policies: Vec<Box<dyn BacklightPolicy>> = vec![
            Box::new(DlsPolicy::new(DlsVariant::ContrastEnhancement)),
            Box::new(CbcsPolicy::new()),
        ];
        let img = test_image();
        for policy in &policies {
            let outcome = policy.optimize(&img, 0.15).unwrap();
            assert!(!outcome.policy.is_empty());
            assert!(outcome.power_saving >= 0.0);
        }
    }
}
