//! HEBS: Histogram Equalization for Backlight Scaling.
//!
//! This crate implements the algorithm of *"HEBS: Histogram Equalization for
//! Backlight Scaling"* (Iranli, Fatemi, Pedram — DATE 2005) on top of the
//! display, transformation and quality substrates of the workspace:
//!
//! 1. A user-specified maximum tolerable distortion is turned into a minimum
//!    admissible dynamic range via the [`characterize::DistortionCharacteristic`]
//!    curve (or via a per-image closed-loop search).
//! 2. The [`ghe`] module solves the Global Histogram Equalization problem:
//!    the pixel transformation that maps the image's cumulative histogram
//!    onto a uniform histogram of the target range (Eq. 5–7).
//! 3. The transformation is approximated by a small piecewise-linear curve
//!    (the PLC dynamic program in `hebs-transform`) and programmed into the
//!    hierarchical reference driver, which spreads the contrast by `1/β`
//!    (Eq. 10) while the backlight is dimmed to `β`.
//! 4. Distortion and power of the result are measured through the display
//!    models, producing a [`policy::ScalingOutcome`].
//!
//! The prior-work baselines DLS and CBCS are provided in [`baselines`] and
//! implement the same [`policy::BacklightPolicy`] trait so they can be
//! compared head to head; [`video::VideoPipeline`] adds temporal smoothing
//! for frame sequences.
//!
//! # Quick start
//!
//! ```
//! use hebs_core::{BacklightPolicy, HebsPolicy, PipelineConfig};
//! use hebs_imaging::SipiImage;
//!
//! let image = SipiImage::Lena.generate(64);
//! let policy = HebsPolicy::closed_loop(PipelineConfig::default());
//! let outcome = policy.optimize(&image, 0.10)?;
//! assert!(outcome.distortion <= 0.10 + 1e-9);
//! assert!(outcome.power_saving > 0.0);
//! # Ok::<(), hebs_core::HebsError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod characterize;
mod error;
pub mod fit;
pub mod ghe;
pub mod pipeline;
pub mod policy;
pub mod video;

pub use baselines::{CbcsPolicy, DlsPolicy, DlsVariant};
pub use characterize::{
    nearest_centroid, BankClass, CharacteristicBank, CharacterizationSample, CurveFit,
    DistortionCharacteristic, DEFAULT_RANGES, ENVELOPE_QUANTILE,
};
pub use error::{HebsError, Result};
pub use ghe::{GheSolution, TargetRange};
pub use pipeline::{
    apply_transform, apply_transform_with_histogram, apply_transform_with_histogram_scratch,
    compute_transform, evaluate_range_from_histogram, evaluate_transform_from_histogram,
    fit_transform, BlendMode, Evaluation, FitScratch, FrameTransform, PipelineConfig,
    RangeEvaluation,
};
pub use policy::{BacklightPolicy, HebsPolicy, RangeSelection, ScalingOutcome};
// Re-exported for the runtime's snapshot codec, which reconstructs
// `ScalingOutcome`/`FrameTransform` values without depending on the display
// substrate directly.
pub use hebs_display::{DisplayResponse, PowerBreakdown};
pub use video::{FrameOutcome, VideoPipeline, VideoReport};
