//! Distortion characterization: the distortion-versus-dynamic-range curve.
//!
//! Section 5.1c / Figure 7 of the paper: for every benchmark image, the
//! transformed image's distortion is measured at a set of target dynamic
//! ranges; an *average* fit and a *worst-case* fit through the scatter form
//! the **distortion characteristic curve**. At run time the HEBS flow looks
//! up the minimum admissible dynamic range for the user's distortion budget
//! on this curve instead of searching per image — that is what makes the
//! hardware implementation a simple table lookup.

use hebs_imaging::{GrayImage, Histogram};

use crate::error::{HebsError, Result};
use crate::fit::{fit_upper_envelope, Polynomial};
use crate::ghe::TargetRange;
use crate::pipeline::{
    evaluate_at_range_with_histogram, evaluate_range_from_histogram, PipelineConfig,
};

/// One measured `(dynamic range, distortion)` sample, tagged with the image
/// it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationSample {
    /// Name of the benchmark image.
    pub image: String,
    /// Target dynamic range that was evaluated.
    pub dynamic_range: u32,
    /// Measured distortion at that range.
    pub distortion: f64,
    /// Measured power saving at that range.
    pub power_saving: f64,
}

/// The fitted distortion characteristic curve.
#[derive(Debug, Clone)]
pub struct DistortionCharacteristic {
    samples: Vec<CharacterizationSample>,
    average: Polynomial,
    worst_case: Polynomial,
}

/// Default set of target dynamic ranges used for characterization (the paper
/// evaluates "ten different values" per image).
pub const DEFAULT_RANGES: [u32; 10] = [25, 50, 75, 100, 125, 150, 175, 200, 225, 250];

impl DistortionCharacteristic {
    /// Builds the characteristic by sweeping the given dynamic ranges over a
    /// set of named benchmark images.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when fewer than three
    /// `(range, distortion)` samples could be produced, plus any error from
    /// the underlying pipeline.
    pub fn characterize<'a, I>(config: &PipelineConfig, images: I, ranges: &[u32]) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a str, &'a GrayImage)>,
    {
        let mut samples = Vec::new();
        for (name, image) in images {
            let histogram = Histogram::of(image);
            for &range in ranges {
                let target = TargetRange::from_span(range)?;
                let eval = evaluate_at_range_with_histogram(config, image, &histogram, target)?;
                samples.push(CharacterizationSample {
                    image: name.to_string(),
                    dynamic_range: range,
                    distortion: eval.distortion,
                    power_saving: eval.power_saving,
                });
            }
        }
        Self::from_samples(samples)
    }

    /// Rebuilds the characteristic from bare histograms, entirely in the
    /// histogram domain — no frames required.
    ///
    /// This is what makes the curve *rebuildable at serving time*: a runtime
    /// that keeps a rolling sketch of recent traffic histograms can
    /// re-characterize in O(histograms × ranges × levels) without retaining
    /// a single frame. Requires a histogram-capable distortion measure (the
    /// windowed paper default needs pixels and declines).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::HistogramIncapableMeasure`] when the configured
    /// measure declines the histogram-domain evaluation path,
    /// [`HebsError::InsufficientData`] when fewer than three samples could
    /// be produced, plus any error from the underlying pipeline.
    pub fn characterize_from_histograms<'a, I>(
        config: &PipelineConfig,
        histograms: I,
        ranges: &[u32],
    ) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Histogram>,
    {
        let mut samples = Vec::new();
        for (index, histogram) in histograms.into_iter().enumerate() {
            for &range in ranges {
                let target = TargetRange::from_span(range)?;
                let Some(eval) = evaluate_range_from_histogram(config, histogram, target)? else {
                    return Err(HebsError::HistogramIncapableMeasure {
                        measure: config.measure.name().to_string(),
                    });
                };
                samples.push(CharacterizationSample {
                    image: format!("sketch-{index}"),
                    dynamic_range: range,
                    distortion: eval.distortion,
                    power_saving: eval.power_saving,
                });
            }
        }
        Self::from_samples(samples)
    }

    /// Builds the characteristic from precomputed samples (used by tests and
    /// by the benchmark harness, which wants to print the raw scatter too).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when fewer than three samples
    /// are supplied.
    pub fn from_samples(samples: Vec<CharacterizationSample>) -> Result<Self> {
        if samples.len() < 3 {
            return Err(HebsError::InsufficientData {
                samples: samples.len(),
                required: 3,
            });
        }
        let points: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (f64::from(s.dynamic_range), s.distortion))
            .collect();
        let average = Polynomial::fit(&points, 2)?;
        let worst_case = fit_upper_envelope(&points, 2)?;
        Ok(DistortionCharacteristic {
            samples,
            average,
            worst_case,
        })
    }

    /// The raw `(range, distortion)` scatter the fits were built from.
    pub fn samples(&self) -> &[CharacterizationSample] {
        &self.samples
    }

    /// The average ("entire dataset") fit of Figure 7.
    pub fn average_fit(&self) -> &Polynomial {
        &self.average
    }

    /// The worst-case (upper envelope) fit of Figure 7.
    pub fn worst_case_fit(&self) -> &Polynomial {
        &self.worst_case
    }

    /// Predicted distortion at a given dynamic range using the average fit,
    /// clamped to `[0, 1]`.
    pub fn predicted_distortion(&self, dynamic_range: u32) -> f64 {
        self.average
            .evaluate(f64::from(dynamic_range))
            .clamp(0.0, 1.0)
    }

    /// Predicted worst-case distortion at a given dynamic range, clamped to
    /// `[0, 1]`.
    pub fn predicted_worst_case(&self, dynamic_range: u32) -> f64 {
        self.worst_case
            .evaluate(f64::from(dynamic_range))
            .clamp(0.0, 1.0)
    }

    /// The minimum admissible dynamic range for a distortion budget: the
    /// smallest range whose predicted distortion does not exceed
    /// `max_distortion`. With `conservative = true` the worst-case fit is
    /// used (guaranteeing the bound for every characterized image), otherwise
    /// the average fit.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InvalidFraction`] when `max_distortion` is
    /// outside `[0, 1]`, and [`HebsError::Infeasible`] when even the full
    /// 256-level range is predicted to exceed the budget.
    pub fn min_range_for(&self, max_distortion: f64, conservative: bool) -> Result<u32> {
        if !(0.0..=1.0).contains(&max_distortion) || !max_distortion.is_finite() {
            return Err(HebsError::InvalidFraction {
                name: "max_distortion",
                value: max_distortion,
            });
        }
        let predict = |range: u32| {
            if conservative {
                self.predicted_worst_case(range)
            } else {
                self.predicted_distortion(range)
            }
        };
        // The fits are (near-)monotone decreasing in range over [2, 256];
        // scan from the smallest range upward and return the first
        // admissible one.
        for range in 2..=256u32 {
            if predict(range) <= max_distortion {
                return Ok(range);
            }
        }
        Err(HebsError::Infeasible {
            max_distortion,
            best_achievable: predict(256),
        })
    }

    /// How far a measured distortion drifted *past* what the curve promised
    /// at this dynamic range: `measured − predicted_worst_case(range)`.
    ///
    /// A diagnostic for open-loop deployments: a positive value means the
    /// characterized traffic no longer describes the current traffic (the
    /// lookup under-provisioned the range). Note the serving runtime's own
    /// drift *fallback* triggers on the budget, not on this quantity —
    /// this method quantifies how stale a curve is, e.g. for monitoring or
    /// for tuning `RecharacterizePolicy` thresholds.
    pub fn drift(&self, dynamic_range: u32, measured: f64) -> f64 {
        measured - self.predicted_worst_case(dynamic_range)
    }

    /// The largest absolute difference between this curve's predictions and
    /// `other`'s (average and worst-case fits) over the given ranges.
    ///
    /// The serving runtime uses this to decide whether a freshly rebuilt
    /// curve is different enough to be worth *swapping in*: installing a
    /// statistically identical curve would only invalidate every
    /// generation-tagged cache entry for nothing.
    pub fn max_prediction_delta(&self, other: &Self, ranges: &[u32]) -> f64 {
        ranges
            .iter()
            .map(|&range| {
                let average =
                    (self.predicted_distortion(range) - other.predicted_distortion(range)).abs();
                let worst =
                    (self.predicted_worst_case(range) - other.predicted_worst_case(range)).abs();
                average.max(worst)
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn tiny_suite() -> Vec<(String, GrayImage)> {
        vec![
            ("portrait".to_string(), synthetic::portrait(48, 48, 31)),
            ("landscape".to_string(), synthetic::landscape(48, 48, 32)),
            ("texture".to_string(), synthetic::fine_texture(48, 48, 33)),
        ]
    }

    fn tiny_characteristic() -> DistortionCharacteristic {
        let config = PipelineConfig::default();
        let suite = tiny_suite();
        DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &[60, 120, 180, 240],
        )
        .unwrap()
    }

    #[test]
    fn characterization_produces_samples_for_every_image_and_range() {
        let characteristic = tiny_characteristic();
        assert_eq!(characteristic.samples().len(), 3 * 4);
        assert!(characteristic
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.distortion)));
    }

    #[test]
    fn distortion_decreases_with_range_on_average() {
        let characteristic = tiny_characteristic();
        let at_60 = characteristic.predicted_distortion(60);
        let at_240 = characteristic.predicted_distortion(240);
        assert!(
            at_60 > at_240,
            "distortion at range 60 ({at_60}) should exceed range 240 ({at_240})"
        );
    }

    #[test]
    fn worst_case_fit_dominates_average_fit() {
        let characteristic = tiny_characteristic();
        for range in [60u32, 120, 180, 240] {
            assert!(
                characteristic.predicted_worst_case(range) + 1e-9
                    >= characteristic.predicted_distortion(range)
            );
        }
    }

    #[test]
    fn min_range_for_is_monotone_in_the_budget() {
        let characteristic = tiny_characteristic();
        let strict = characteristic.min_range_for(0.05, false).unwrap_or(256);
        let relaxed = characteristic.min_range_for(0.20, false).unwrap_or(256);
        assert!(relaxed <= strict);
    }

    #[test]
    fn conservative_lookup_requires_wider_range() {
        let characteristic = tiny_characteristic();
        let average = characteristic.min_range_for(0.10, false).unwrap_or(256);
        let conservative = characteristic.min_range_for(0.10, true).unwrap_or(256);
        assert!(conservative >= average);
    }

    #[test]
    fn invalid_budget_rejected() {
        let characteristic = tiny_characteristic();
        assert!(characteristic.min_range_for(-0.1, false).is_err());
        assert!(characteristic.min_range_for(1.5, false).is_err());
        assert!(characteristic.min_range_for(f64::NAN, false).is_err());
    }

    #[test]
    fn histogram_characterization_matches_the_pixel_path() {
        use hebs_quality::GlobalUiqiDistortion;
        // With a histogram-capable measure, rebuilding the curve from bare
        // histograms must produce the same samples as characterizing from
        // the frames they came from.
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        let suite = tiny_suite();
        let ranges = [60u32, 120, 180, 240];
        let from_frames = DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &ranges,
        )
        .unwrap();
        let histograms: Vec<Histogram> = suite.iter().map(|(_, i)| Histogram::of(i)).collect();
        let from_histograms =
            DistortionCharacteristic::characterize_from_histograms(&config, &histograms, &ranges)
                .unwrap();
        assert_eq!(from_frames.samples().len(), from_histograms.samples().len());
        for (a, b) in from_frames.samples().iter().zip(from_histograms.samples()) {
            assert_eq!(a.dynamic_range, b.dynamic_range);
            assert!((a.distortion - b.distortion).abs() <= 1e-12);
            assert!((a.power_saving - b.power_saving).abs() <= 1e-12);
        }
    }

    #[test]
    fn windowed_measures_decline_histogram_characterization() {
        // The paper's default HVS + SSIM measure needs pixels.
        let config = PipelineConfig::default();
        let histograms = vec![Histogram::of(&synthetic::portrait(32, 32, 3))];
        assert!(matches!(
            DistortionCharacteristic::characterize_from_histograms(
                &config,
                &histograms,
                &[120, 200]
            ),
            Err(HebsError::HistogramIncapableMeasure { .. })
        ));
    }

    #[test]
    fn prediction_delta_is_zero_against_self_and_large_against_a_liar() {
        let characteristic = tiny_characteristic();
        let ranges = [60u32, 120, 180, 240];
        assert!(characteristic.max_prediction_delta(&characteristic, &ranges) <= 1e-12);

        let lying: Vec<CharacterizationSample> = (1..=5)
            .map(|i| CharacterizationSample {
                image: format!("lie{i}"),
                dynamic_range: 40 * i,
                distortion: 0.0,
                power_saving: 0.9,
            })
            .collect();
        let liar = DistortionCharacteristic::from_samples(lying).unwrap();
        assert!(characteristic.max_prediction_delta(&liar, &ranges) > 0.01);
    }

    #[test]
    fn drift_is_positive_past_the_worst_case_prediction() {
        let characteristic = tiny_characteristic();
        let promised = characteristic.predicted_worst_case(120);
        assert!(characteristic.drift(120, promised + 0.05) > 0.04);
        assert!(characteristic.drift(120, promised) <= 1e-12);
        assert!(characteristic.drift(120, 0.0) <= 0.0);
    }

    #[test]
    fn from_samples_requires_enough_data() {
        let samples = vec![CharacterizationSample {
            image: "x".to_string(),
            dynamic_range: 100,
            distortion: 0.1,
            power_saving: 0.3,
        }];
        assert!(matches!(
            DistortionCharacteristic::from_samples(samples),
            Err(HebsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn synthetic_samples_round_trip_through_fit() {
        // Distortion that falls linearly with range: d = 0.3 − 0.001·R.
        let samples: Vec<CharacterizationSample> = (1..=10)
            .map(|i| {
                let range = 25 * i;
                CharacterizationSample {
                    image: format!("img{i}"),
                    dynamic_range: range,
                    distortion: 0.3 - 0.001 * f64::from(range),
                    power_saving: 0.5,
                }
            })
            .collect();
        let characteristic = DistortionCharacteristic::from_samples(samples).unwrap();
        // The fit should reproduce the generating line closely.
        assert!((characteristic.predicted_distortion(100) - 0.2).abs() < 0.01);
        // Inverting: distortion 0.1 needs range ≈ 200.
        let range = characteristic.min_range_for(0.1, false).unwrap();
        assert!((195..=210).contains(&range), "range {range}");
    }
}
