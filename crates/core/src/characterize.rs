//! Distortion characterization: the distortion-versus-dynamic-range curve.
//!
//! Section 5.1c / Figure 7 of the paper: for every benchmark image, the
//! transformed image's distortion is measured at a set of target dynamic
//! ranges; an *average* fit and a *worst-case* fit through the scatter form
//! the **distortion characteristic curve**. At run time the HEBS flow looks
//! up the minimum admissible dynamic range for the user's distortion budget
//! on this curve instead of searching per image — that is what makes the
//! hardware implementation a simple table lookup.

use std::sync::Arc;

use hebs_imaging::rng::StdRng;
use hebs_imaging::{GrayImage, Histogram, HistogramSignature, SIGNATURE_BINS};

use crate::error::{HebsError, Result};
use crate::fit::{fit_quantile_envelope, fit_upper_envelope, Polynomial};
use crate::ghe::TargetRange;
use crate::pipeline::{
    evaluate_at_range_with_histogram, evaluate_range_from_histogram, PipelineConfig,
};

/// The quantile of the [`DistortionCharacteristic`]'s envelope fit: the
/// curve covers 95% of the characterization samples, sitting between the
/// average fit (which half the images exceed) and the worst-case fit (which
/// a single outlier image can drag arbitrarily high).
pub const ENVELOPE_QUANTILE: f64 = 0.95;

/// Which of a [`DistortionCharacteristic`]'s fitted curves a lookup uses.
///
/// The trade-off is dimming aggressiveness versus drift risk: the average
/// fit dims like the typical characterized image but under-provisions half
/// of them; the worst-case fit guarantees the bound for every characterized
/// image but refuses to dim at all when the characterized set is
/// heterogeneous; the p95 [envelope](ENVELOPE_QUANTILE) is the half-step
/// between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CurveFit {
    /// The average ("entire dataset") fit of Figure 7.
    Average,
    /// The p95 quantile envelope: covers [`ENVELOPE_QUANTILE`] of the
    /// samples, so one outlier image cannot veto dimming for everyone.
    Envelope,
    /// The worst-case (upper envelope) fit of Figure 7 — the bound holds
    /// for every characterized image.
    #[default]
    WorstCase,
}

/// One measured `(dynamic range, distortion)` sample, tagged with the image
/// it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationSample {
    /// Name of the benchmark image.
    pub image: String,
    /// Target dynamic range that was evaluated.
    pub dynamic_range: u32,
    /// Measured distortion at that range.
    pub distortion: f64,
    /// Measured power saving at that range.
    pub power_saving: f64,
}

/// The fitted distortion characteristic curve.
#[derive(Debug, Clone)]
pub struct DistortionCharacteristic {
    samples: Vec<CharacterizationSample>,
    average: Polynomial,
    envelope: Polynomial,
    worst_case: Polynomial,
}

/// Default set of target dynamic ranges used for characterization (the paper
/// evaluates "ten different values" per image).
pub const DEFAULT_RANGES: [u32; 10] = [25, 50, 75, 100, 125, 150, 175, 200, 225, 250];

impl DistortionCharacteristic {
    /// Builds the characteristic by sweeping the given dynamic ranges over a
    /// set of named benchmark images.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when fewer than three
    /// `(range, distortion)` samples could be produced, plus any error from
    /// the underlying pipeline.
    pub fn characterize<'a, I>(config: &PipelineConfig, images: I, ranges: &[u32]) -> Result<Self>
    where
        I: IntoIterator<Item = (&'a str, &'a GrayImage)>,
    {
        let mut samples = Vec::new();
        for (name, image) in images {
            let histogram = Histogram::of(image);
            for &range in ranges {
                let target = TargetRange::from_span(range)?;
                let eval = evaluate_at_range_with_histogram(config, image, &histogram, target)?;
                samples.push(CharacterizationSample {
                    image: name.to_string(),
                    dynamic_range: range,
                    distortion: eval.distortion,
                    power_saving: eval.power_saving,
                });
            }
        }
        Self::from_samples(samples)
    }

    /// Rebuilds the characteristic from bare histograms, entirely in the
    /// histogram domain — no frames required.
    ///
    /// This is what makes the curve *rebuildable at serving time*: a runtime
    /// that keeps a rolling sketch of recent traffic histograms can
    /// re-characterize in O(histograms × ranges × levels) without retaining
    /// a single frame. Requires a histogram-capable distortion measure (the
    /// windowed paper default needs pixels and declines).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::HistogramIncapableMeasure`] when the configured
    /// measure declines the histogram-domain evaluation path,
    /// [`HebsError::InsufficientData`] when fewer than three samples could
    /// be produced, plus any error from the underlying pipeline.
    pub fn characterize_from_histograms<'a, I>(
        config: &PipelineConfig,
        histograms: I,
        ranges: &[u32],
    ) -> Result<Self>
    where
        I: IntoIterator<Item = &'a Histogram>,
    {
        let mut samples = Vec::new();
        for (index, histogram) in histograms.into_iter().enumerate() {
            for &range in ranges {
                let target = TargetRange::from_span(range)?;
                let Some(eval) = evaluate_range_from_histogram(config, histogram, target)? else {
                    return Err(HebsError::HistogramIncapableMeasure {
                        measure: config.measure.name().to_string(),
                    });
                };
                samples.push(CharacterizationSample {
                    image: format!("sketch-{index}"),
                    dynamic_range: range,
                    distortion: eval.distortion,
                    power_saving: eval.power_saving,
                });
            }
        }
        Self::from_samples(samples)
    }

    /// Builds the characteristic from precomputed samples (used by tests and
    /// by the benchmark harness, which wants to print the raw scatter too).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when fewer than three samples
    /// are supplied.
    pub fn from_samples(samples: Vec<CharacterizationSample>) -> Result<Self> {
        if samples.len() < 3 {
            return Err(HebsError::InsufficientData {
                samples: samples.len(),
                required: 3,
            });
        }
        let points: Vec<(f64, f64)> = samples
            .iter()
            .map(|s| (f64::from(s.dynamic_range), s.distortion))
            .collect();
        let average = Polynomial::fit(&points, 2)?;
        let envelope = fit_quantile_envelope(&points, 2, ENVELOPE_QUANTILE)?;
        let worst_case = fit_upper_envelope(&points, 2)?;
        Ok(DistortionCharacteristic {
            samples,
            average,
            envelope,
            worst_case,
        })
    }

    /// The raw `(range, distortion)` scatter the fits were built from.
    pub fn samples(&self) -> &[CharacterizationSample] {
        &self.samples
    }

    /// The average ("entire dataset") fit of Figure 7.
    pub fn average_fit(&self) -> &Polynomial {
        &self.average
    }

    /// The p95 quantile [envelope](ENVELOPE_QUANTILE) fit: between the
    /// average and the worst case.
    pub fn envelope_fit(&self) -> &Polynomial {
        &self.envelope
    }

    /// The worst-case (upper envelope) fit of Figure 7.
    pub fn worst_case_fit(&self) -> &Polynomial {
        &self.worst_case
    }

    /// Predicted distortion at a given dynamic range using the average fit,
    /// clamped to `[0, 1]`.
    pub fn predicted_distortion(&self, dynamic_range: u32) -> f64 {
        self.predicted(dynamic_range, CurveFit::Average)
    }

    /// Predicted p95-envelope distortion at a given dynamic range, clamped
    /// to `[0, 1]`.
    pub fn predicted_envelope(&self, dynamic_range: u32) -> f64 {
        self.predicted(dynamic_range, CurveFit::Envelope)
    }

    /// Predicted worst-case distortion at a given dynamic range, clamped to
    /// `[0, 1]`.
    pub fn predicted_worst_case(&self, dynamic_range: u32) -> f64 {
        self.predicted(dynamic_range, CurveFit::WorstCase)
    }

    /// Predicted distortion at a given dynamic range on the selected fit,
    /// clamped to `[0, 1]`.
    pub fn predicted(&self, dynamic_range: u32, fit: CurveFit) -> f64 {
        let curve = match fit {
            CurveFit::Average => &self.average,
            CurveFit::Envelope => &self.envelope,
            CurveFit::WorstCase => &self.worst_case,
        };
        curve.evaluate(f64::from(dynamic_range)).clamp(0.0, 1.0)
    }

    /// The minimum admissible dynamic range for a distortion budget: the
    /// smallest range whose predicted distortion does not exceed
    /// `max_distortion`. With `conservative = true` the worst-case fit is
    /// used (guaranteeing the bound for every characterized image), otherwise
    /// the average fit.
    ///
    /// # Errors
    ///
    /// See [`DistortionCharacteristic::min_range_for_fit`].
    pub fn min_range_for(&self, max_distortion: f64, conservative: bool) -> Result<u32> {
        let fit = if conservative {
            CurveFit::WorstCase
        } else {
            CurveFit::Average
        };
        self.min_range_for_fit(max_distortion, fit)
    }

    /// Like [`DistortionCharacteristic::min_range_for`] with an explicit
    /// [`CurveFit`] selection.
    ///
    /// The true distortion-versus-range curve is monotone non-increasing,
    /// but a fitted quadratic can dip and then rise; a naive first-admissible
    /// scan over such a fit picks an unsafely narrow range whose dip the
    /// real curve never follows. The lookup therefore runs on the smallest
    /// monotone non-increasing *majorant* of the fit over the sampled range
    /// span: a range is admissible only if the fit stays within the budget
    /// at that range and at every wider sampled range. Beyond the widest
    /// characterized range the raw prediction is used (extrapolation-tail
    /// artifacts there must not poison the whole sampled span).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InvalidFraction`] when `max_distortion` is
    /// outside `[0, 1]`, and [`HebsError::Infeasible`] when even the full
    /// 256-level range is predicted to exceed the budget.
    pub fn min_range_for_fit(&self, max_distortion: f64, fit: CurveFit) -> Result<u32> {
        if !(0.0..=1.0).contains(&max_distortion) || !max_distortion.is_finite() {
            return Err(HebsError::InvalidFraction {
                name: "max_distortion",
                value: max_distortion,
            });
        }
        let widest_sampled = self
            .samples
            .iter()
            .map(|s| s.dynamic_range)
            .max()
            .unwrap_or(256)
            .clamp(2, 256);
        // Scan downward, accumulating the suffix maximum of the prediction
        // over the sampled span: once it exceeds the budget, every narrower
        // range would rely on a non-monotone dip and is rejected too.
        let mut suffix_worst = f64::NEG_INFINITY;
        let mut admissible = None;
        for range in (2..=256u32).rev() {
            let predicted = self.predicted(range, fit);
            let effective = if range <= widest_sampled {
                suffix_worst = suffix_worst.max(predicted);
                suffix_worst
            } else {
                predicted
            };
            if effective <= max_distortion {
                admissible = Some(range);
            } else if range <= widest_sampled {
                break;
            }
        }
        admissible.ok_or(HebsError::Infeasible {
            max_distortion,
            best_achievable: self.predicted(256, fit),
        })
    }

    /// How far a measured distortion drifted *past* what the curve promised
    /// at this dynamic range: `measured − predicted_worst_case(range)`.
    ///
    /// A diagnostic for open-loop deployments: a positive value means the
    /// characterized traffic no longer describes the current traffic (the
    /// lookup under-provisioned the range). Note the serving runtime's own
    /// drift *fallback* triggers on the budget, not on this quantity —
    /// this method quantifies how stale a curve is, e.g. for monitoring or
    /// for tuning `RecharacterizePolicy` thresholds.
    pub fn drift(&self, dynamic_range: u32, measured: f64) -> f64 {
        measured - self.predicted_worst_case(dynamic_range)
    }

    /// The largest absolute difference between this curve's predictions and
    /// `other`'s (average, envelope and worst-case fits) over the given
    /// ranges.
    ///
    /// The serving runtime uses this to decide whether a freshly rebuilt
    /// curve is different enough to be worth *swapping in*: installing a
    /// statistically identical curve would only invalidate every
    /// generation-tagged cache entry for nothing.
    pub fn max_prediction_delta(&self, other: &Self, ranges: &[u32]) -> f64 {
        ranges
            .iter()
            .map(|&range| {
                [CurveFit::Average, CurveFit::Envelope, CurveFit::WorstCase]
                    .into_iter()
                    .map(|fit| (self.predicted(range, fit) - other.predicted(range, fit)).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max)
    }
}

/// One content class of a [`CharacteristicBank`]: the centroid of its
/// histogram-signature cluster and the distortion characteristic fitted to
/// the class's members.
#[derive(Debug, Clone)]
pub struct BankClass {
    /// Cluster centroid in (un-quantized) signature-bin space: mean mass
    /// per [`SIGNATURE_BINS`] downsampled bin, in quantization steps.
    pub centroid: [f64; SIGNATURE_BINS],
    /// The characteristic curve fitted to this class's histograms.
    pub characteristic: Arc<DistortionCharacteristic>,
    /// How many histograms the class was fitted from (diagnostic).
    pub members: usize,
}

impl BankClass {
    /// Builds a class centered exactly on a histogram signature (useful for
    /// hand-assembled banks: every frame quantizing to `signature` is
    /// nearer to this class than to any differently-shaped one).
    pub fn centered_on(
        signature: &HistogramSignature,
        characteristic: Arc<DistortionCharacteristic>,
    ) -> Self {
        let mut centroid = [0.0f64; SIGNATURE_BINS];
        for (slot, &bin) in centroid.iter_mut().zip(signature.bins()) {
            *slot = f64::from(bin);
        }
        BankClass {
            centroid,
            characteristic,
            members: 0,
        }
    }
}

/// A bank of per-class distortion characteristics, keyed by
/// histogram-signature cluster.
///
/// The single worst-case curve of the paper's flow promises its bound for
/// *every* characterized image — over heterogeneous traffic it therefore
/// refuses to dim at all (the outlier image vetoes everyone's backlight).
/// Clustering the characterization set by histogram shape and fitting one
/// curve per cluster recovers most of the per-image (closed-loop) saving at
/// open-loop lookup cost: each frame is routed to the curve of images that
/// look like it. This mirrors the brightness-preserving HE literature, which
/// partitions by histogram statistics for the same reason — one global curve
/// fits no one.
///
/// Clustering is k-means over the existing 32-bin
/// [`HistogramSignature`]s — `std`-only, deterministic (seeded by the
/// internal PRNG), a few hundred float ops per histogram.
#[derive(Debug, Clone)]
pub struct CharacteristicBank {
    classes: Vec<BankClass>,
}

impl CharacteristicBank {
    /// Builds a bank from traffic histograms: clusters their signatures into
    /// at most `classes` groups (empty clusters are dropped) and fits one
    /// characteristic per group via
    /// [`DistortionCharacteristic::characterize_from_histograms`].
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when `histograms` is empty or
    /// a class ends up with fewer than three `(range, distortion)` samples,
    /// [`HebsError::HistogramIncapableMeasure`] for measures that decline
    /// the histogram-domain path, plus any error from the pipeline.
    pub fn build(
        config: &PipelineConfig,
        histograms: &[Histogram],
        ranges: &[u32],
        classes: usize,
    ) -> Result<Self> {
        if histograms.is_empty() {
            return Err(HebsError::InsufficientData {
                samples: 0,
                required: 1,
            });
        }
        let signatures: Vec<HistogramSignature> =
            histograms.iter().map(HistogramSignature::of).collect();
        let (centroids, assignment) = cluster_signatures(&signatures, classes.max(1));
        let mut bank = Vec::with_capacity(centroids.len());
        for (class, centroid) in centroids.into_iter().enumerate() {
            let members: Vec<&Histogram> = assignment
                .iter()
                .zip(histograms)
                .filter(|(&a, _)| a == class)
                .map(|(_, h)| h)
                .collect();
            let characteristic = DistortionCharacteristic::characterize_from_histograms(
                config,
                members.iter().copied(),
                ranges,
            )?;
            bank.push(BankClass {
                centroid,
                characteristic: Arc::new(characteristic),
                members: members.len(),
            });
        }
        Self::from_classes(bank)
    }

    /// Builds a bank from preassembled classes (hand-tuned deployments,
    /// tests).
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when `classes` is empty.
    pub fn from_classes(classes: Vec<BankClass>) -> Result<Self> {
        if classes.is_empty() {
            return Err(HebsError::InsufficientData {
                samples: 0,
                required: 1,
            });
        }
        Ok(CharacteristicBank { classes })
    }

    /// The bank's classes, in classification-index order.
    pub fn classes(&self) -> &[BankClass] {
        &self.classes
    }

    /// Number of classes in the bank.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the bank has no classes (never true for a constructed bank).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The index of the class whose centroid is nearest (squared Euclidean
    /// distance in signature-bin space) to `signature`.
    pub fn classify(&self, signature: &HistogramSignature) -> usize {
        nearest_centroid(signature, self.classes.iter().map(|class| &class.centroid))
    }
}

/// The index of the centroid nearest (squared Euclidean distance in
/// signature-bin space) to `signature`, 0 when `centroids` is empty.
///
/// This is **the** routing metric of the characteristic bank: anything that
/// classifies frames against bank centroids (the bank itself, the serving
/// runtime's installed copy) must use it, or frames would be routed to a
/// different class than the one their curve was fitted on.
pub fn nearest_centroid<'a, I>(signature: &HistogramSignature, centroids: I) -> usize
where
    I: IntoIterator<Item = &'a [f64; SIGNATURE_BINS]>,
{
    let mut best = 0;
    let mut best_distance = f64::INFINITY;
    for (index, centroid) in centroids.into_iter().enumerate() {
        let distance = centroid_distance(centroid, signature);
        if distance < best_distance {
            best = index;
            best_distance = distance;
        }
    }
    best
}

/// Squared Euclidean distance between a centroid and a signature.
fn centroid_distance(centroid: &[f64; SIGNATURE_BINS], signature: &HistogramSignature) -> f64 {
    centroid
        .iter()
        .zip(signature.bins())
        .map(|(&c, &b)| {
            let d = c - f64::from(b);
            d * d
        })
        .sum()
}

/// K-means over histogram signatures: deterministic farthest-point seeding
/// (first pick by the internal PRNG with a fixed seed), a bounded number of
/// Lloyd iterations, empty clusters dropped. Returns the surviving
/// centroids and each signature's class index.
fn cluster_signatures(
    signatures: &[HistogramSignature],
    k: usize,
) -> (Vec<[f64; SIGNATURE_BINS]>, Vec<usize>) {
    let as_point = |s: &HistogramSignature| {
        let mut point = [0.0f64; SIGNATURE_BINS];
        for (slot, &bin) in point.iter_mut().zip(s.bins()) {
            *slot = f64::from(bin);
        }
        point
    };
    let distance = |a: &[f64; SIGNATURE_BINS], b: &[f64; SIGNATURE_BINS]| {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
    };
    let points: Vec<[f64; SIGNATURE_BINS]> = signatures.iter().map(as_point).collect();
    let k = k.min(points.len()).max(1);

    // Farthest-point seeding: deterministic and spread-out, which is what
    // matters for histogram shapes (the PRNG only breaks the tie of which
    // point goes first).
    let mut rng = StdRng::seed_from_u64(0x4845_4253);
    let mut centroids: Vec<[f64; SIGNATURE_BINS]> = vec![points[rng.random_range(0..points.len())]];
    while centroids.len() < k {
        let farthest = points
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let da = centroids
                    .iter()
                    .map(|c| distance(c, a))
                    .fold(f64::INFINITY, f64::min);
                let db = centroids
                    .iter()
                    .map(|c| distance(c, b))
                    .fold(f64::INFINITY, f64::min);
                da.partial_cmp(&db).expect("finite distances")
            })
            .map(|(i, _)| i)
            .expect("points is non-empty");
        centroids.push(points[farthest]);
    }

    // Lloyd iterations until stable (or a small bound — signatures are
    // coarse, convergence is fast).
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..25 {
        let mut changed = false;
        for (slot, point) in assignment.iter_mut().zip(&points) {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    distance(a, point)
                        .partial_cmp(&distance(b, point))
                        .expect("finite distances")
                })
                .map(|(i, _)| i)
                .expect("centroids is non-empty");
            if *slot != nearest {
                *slot = nearest;
                changed = true;
            }
        }
        let mut sums = vec![[0.0f64; SIGNATURE_BINS]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (&class, point) in assignment.iter().zip(&points) {
            counts[class] += 1;
            for (sum, &value) in sums[class].iter_mut().zip(point) {
                *sum += value;
            }
        }
        for ((centroid, sum), &count) in centroids.iter_mut().zip(&sums).zip(&counts) {
            if count > 0 {
                for (slot, &total) in centroid.iter_mut().zip(sum) {
                    *slot = total / count as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Drop empty clusters and compact the assignment indices.
    let mut counts = vec![0usize; centroids.len()];
    for &class in &assignment {
        counts[class] += 1;
    }
    let mut remap = vec![usize::MAX; centroids.len()];
    let mut kept = Vec::with_capacity(centroids.len());
    for (index, centroid) in centroids.into_iter().enumerate() {
        if counts[index] > 0 {
            remap[index] = kept.len();
            kept.push(centroid);
        }
    }
    for class in &mut assignment {
        *class = remap[*class];
    }
    (kept, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    fn tiny_suite() -> Vec<(String, GrayImage)> {
        vec![
            ("portrait".to_string(), synthetic::portrait(48, 48, 31)),
            ("landscape".to_string(), synthetic::landscape(48, 48, 32)),
            ("texture".to_string(), synthetic::fine_texture(48, 48, 33)),
        ]
    }

    fn tiny_characteristic() -> DistortionCharacteristic {
        let config = PipelineConfig::default();
        let suite = tiny_suite();
        DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &[60, 120, 180, 240],
        )
        .unwrap()
    }

    #[test]
    fn characterization_produces_samples_for_every_image_and_range() {
        let characteristic = tiny_characteristic();
        assert_eq!(characteristic.samples().len(), 3 * 4);
        assert!(characteristic
            .samples()
            .iter()
            .all(|s| (0.0..=1.0).contains(&s.distortion)));
    }

    #[test]
    fn distortion_decreases_with_range_on_average() {
        let characteristic = tiny_characteristic();
        let at_60 = characteristic.predicted_distortion(60);
        let at_240 = characteristic.predicted_distortion(240);
        assert!(
            at_60 > at_240,
            "distortion at range 60 ({at_60}) should exceed range 240 ({at_240})"
        );
    }

    #[test]
    fn worst_case_fit_dominates_average_fit() {
        let characteristic = tiny_characteristic();
        for range in [60u32, 120, 180, 240] {
            assert!(
                characteristic.predicted_worst_case(range) + 1e-9
                    >= characteristic.predicted_distortion(range)
            );
        }
    }

    #[test]
    fn envelope_fit_sits_between_average_and_worst_case() {
        let characteristic = tiny_characteristic();
        for range in [60u32, 120, 180, 240] {
            let average = characteristic.predicted_distortion(range);
            let envelope = characteristic.predicted_envelope(range);
            let worst = characteristic.predicted_worst_case(range);
            assert!(envelope + 1e-9 >= average, "envelope below average");
            assert!(envelope <= worst + 1e-9, "envelope above worst case");
            assert_eq!(
                envelope,
                characteristic.predicted(range, CurveFit::Envelope)
            );
        }
        // The envelope lookup never dims more aggressively than the average
        // lookup nor less than the worst-case one.
        let average = characteristic
            .min_range_for_fit(0.10, CurveFit::Average)
            .unwrap_or(256);
        let envelope = characteristic
            .min_range_for_fit(0.10, CurveFit::Envelope)
            .unwrap_or(256);
        let worst = characteristic
            .min_range_for_fit(0.10, CurveFit::WorstCase)
            .unwrap_or(256);
        assert!(average <= envelope);
        assert!(envelope <= worst);
    }

    #[test]
    fn non_monotone_fits_cannot_admit_an_unsafely_narrow_range() {
        // An adversarial scatter whose quadratic fit dips mid-span and rises
        // again within the sampled ranges: a naive first-admissible scan
        // would pick a range inside the dip even though the fit itself says
        // wider sampled ranges exceed the budget.
        let samples: Vec<CharacterizationSample> = [
            (25u32, 0.50),
            (75, 0.20),
            (125, 0.05),
            (175, 0.20),
            (250, 0.50),
        ]
        .iter()
        .map(|&(range, distortion)| CharacterizationSample {
            image: format!("adv{range}"),
            dynamic_range: range,
            distortion,
            power_saving: 0.3,
        })
        .collect();
        let characteristic = DistortionCharacteristic::from_samples(samples).unwrap();
        // The fit really is non-monotone: it dips below 0.10 mid-span...
        let dip = (2..=250u32)
            .map(|r| characteristic.predicted_distortion(r))
            .fold(f64::INFINITY, f64::min);
        assert!(dip < 0.10, "the adversarial fit must dip, got {dip}");
        // ...and rises back above it at the widest sampled range.
        assert!(characteristic.predicted_distortion(250) > 0.10);
        // The monotone-clamped lookup refuses the dip instead of serving an
        // unsafely narrow range.
        assert!(matches!(
            characteristic.min_range_for(0.10, false),
            Err(HebsError::Infeasible { .. })
        ));
        // Budgets above the whole fit remain admissible at narrow ranges.
        let relaxed = characteristic.min_range_for(0.60, false).unwrap();
        assert!(relaxed < 100, "a generous budget still dims, got {relaxed}");
    }

    #[test]
    fn bank_clusters_histogram_shapes_and_routes_lookups() {
        use hebs_quality::GlobalUiqiDistortion;
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        // Two visibly different traffic shapes, several near-identical
        // members each.
        let dark: Vec<GrayImage> = (0..3).map(|s| synthetic::low_key(32, 32, s)).collect();
        let bright: Vec<GrayImage> = (0..3).map(|s| synthetic::high_key(32, 32, s)).collect();
        let histograms: Vec<Histogram> = dark.iter().chain(&bright).map(Histogram::of).collect();
        let bank =
            CharacteristicBank::build(&config, &histograms, &[60, 120, 180, 240], 2).unwrap();
        assert_eq!(bank.len(), 2, "two shapes make two classes");
        assert!(bank.classes().iter().all(|c| c.members == 3));

        // Every dark frame routes to one class, every bright frame to the
        // other.
        let dark_class = bank.classify(&HistogramSignature::of(&Histogram::of(&dark[0])));
        let bright_class = bank.classify(&HistogramSignature::of(&Histogram::of(&bright[0])));
        assert_ne!(dark_class, bright_class);
        for frame in &dark {
            let signature = HistogramSignature::of(&Histogram::of(frame));
            assert_eq!(bank.classify(&signature), dark_class);
        }
        for frame in &bright {
            let signature = HistogramSignature::of(&Histogram::of(frame));
            assert_eq!(bank.classify(&signature), bright_class);
        }

        // Per-class worst-case curves dim their own members far better than
        // the pooled worst-case curve dims anyone: the pooled curve's
        // admissible range is vetoed by the opposite shape.
        let pooled = DistortionCharacteristic::characterize_from_histograms(
            &config,
            &histograms,
            &[60, 120, 180, 240],
        )
        .unwrap();
        let budget = 0.10;
        let pooled_range = pooled.min_range_for(budget, true).unwrap_or(256);
        for class in bank.classes() {
            let class_range = class
                .characteristic
                .min_range_for(budget, true)
                .unwrap_or(256);
            assert!(
                class_range <= pooled_range,
                "class range {class_range} wider than pooled {pooled_range}"
            );
        }
    }

    #[test]
    fn degenerate_banks_collapse_gracefully() {
        use hebs_quality::GlobalUiqiDistortion;
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        // Identical histograms cannot support 4 distinct classes: the
        // duplicate centroids collapse and empty clusters are dropped.
        let histograms: Vec<Histogram> = (0..4)
            .map(|_| Histogram::of(&synthetic::portrait(32, 32, 7)))
            .collect();
        let bank =
            CharacteristicBank::build(&config, &histograms, &[60, 120, 180, 240], 4).unwrap();
        assert!(!bank.is_empty());
        let total_members: usize = bank.classes().iter().map(|c| c.members).sum();
        assert_eq!(total_members, 4, "every histogram belongs to a class");
        assert!(matches!(
            CharacteristicBank::build(&config, &[], &[60, 120], 2),
            Err(HebsError::InsufficientData { .. })
        ));
        assert!(matches!(
            CharacteristicBank::from_classes(vec![]),
            Err(HebsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn min_range_for_is_monotone_in_the_budget() {
        let characteristic = tiny_characteristic();
        let strict = characteristic.min_range_for(0.05, false).unwrap_or(256);
        let relaxed = characteristic.min_range_for(0.20, false).unwrap_or(256);
        assert!(relaxed <= strict);
    }

    #[test]
    fn conservative_lookup_requires_wider_range() {
        let characteristic = tiny_characteristic();
        let average = characteristic.min_range_for(0.10, false).unwrap_or(256);
        let conservative = characteristic.min_range_for(0.10, true).unwrap_or(256);
        assert!(conservative >= average);
    }

    #[test]
    fn invalid_budget_rejected() {
        let characteristic = tiny_characteristic();
        assert!(characteristic.min_range_for(-0.1, false).is_err());
        assert!(characteristic.min_range_for(1.5, false).is_err());
        assert!(characteristic.min_range_for(f64::NAN, false).is_err());
    }

    #[test]
    fn histogram_characterization_matches_the_pixel_path() {
        use hebs_quality::GlobalUiqiDistortion;
        // With a histogram-capable measure, rebuilding the curve from bare
        // histograms must produce the same samples as characterizing from
        // the frames they came from.
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        let suite = tiny_suite();
        let ranges = [60u32, 120, 180, 240];
        let from_frames = DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &ranges,
        )
        .unwrap();
        let histograms: Vec<Histogram> = suite.iter().map(|(_, i)| Histogram::of(i)).collect();
        let from_histograms =
            DistortionCharacteristic::characterize_from_histograms(&config, &histograms, &ranges)
                .unwrap();
        assert_eq!(from_frames.samples().len(), from_histograms.samples().len());
        for (a, b) in from_frames.samples().iter().zip(from_histograms.samples()) {
            assert_eq!(a.dynamic_range, b.dynamic_range);
            assert!((a.distortion - b.distortion).abs() <= 1e-12);
            assert!((a.power_saving - b.power_saving).abs() <= 1e-12);
        }
    }

    #[test]
    fn windowed_measures_decline_histogram_characterization() {
        // The paper's default HVS + SSIM measure needs pixels.
        let config = PipelineConfig::default();
        let histograms = vec![Histogram::of(&synthetic::portrait(32, 32, 3))];
        assert!(matches!(
            DistortionCharacteristic::characterize_from_histograms(
                &config,
                &histograms,
                &[120, 200]
            ),
            Err(HebsError::HistogramIncapableMeasure { .. })
        ));
    }

    #[test]
    fn prediction_delta_is_zero_against_self_and_large_against_a_liar() {
        let characteristic = tiny_characteristic();
        let ranges = [60u32, 120, 180, 240];
        assert!(characteristic.max_prediction_delta(&characteristic, &ranges) <= 1e-12);

        let lying: Vec<CharacterizationSample> = (1..=5)
            .map(|i| CharacterizationSample {
                image: format!("lie{i}"),
                dynamic_range: 40 * i,
                distortion: 0.0,
                power_saving: 0.9,
            })
            .collect();
        let liar = DistortionCharacteristic::from_samples(lying).unwrap();
        assert!(characteristic.max_prediction_delta(&liar, &ranges) > 0.01);
    }

    #[test]
    fn drift_is_positive_past_the_worst_case_prediction() {
        let characteristic = tiny_characteristic();
        let promised = characteristic.predicted_worst_case(120);
        assert!(characteristic.drift(120, promised + 0.05) > 0.04);
        assert!(characteristic.drift(120, promised) <= 1e-12);
        assert!(characteristic.drift(120, 0.0) <= 0.0);
    }

    #[test]
    fn from_samples_requires_enough_data() {
        let samples = vec![CharacterizationSample {
            image: "x".to_string(),
            dynamic_range: 100,
            distortion: 0.1,
            power_saving: 0.3,
        }];
        assert!(matches!(
            DistortionCharacteristic::from_samples(samples),
            Err(HebsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn synthetic_samples_round_trip_through_fit() {
        // Distortion that falls linearly with range: d = 0.3 − 0.001·R.
        let samples: Vec<CharacterizationSample> = (1..=10)
            .map(|i| {
                let range = 25 * i;
                CharacterizationSample {
                    image: format!("img{i}"),
                    dynamic_range: range,
                    distortion: 0.3 - 0.001 * f64::from(range),
                    power_saving: 0.5,
                }
            })
            .collect();
        let characteristic = DistortionCharacteristic::from_samples(samples).unwrap();
        // The fit should reproduce the generating line closely.
        assert!((characteristic.predicted_distortion(100) - 0.2).abs() < 0.01);
        // Inverting: distortion 0.1 needs range ≈ 200.
        let range = characteristic.min_range_for(0.1, false).unwrap();
        assert!((195..=210).contains(&range), "range {range}");
    }
}
