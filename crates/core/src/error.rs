//! Error type for the HEBS core algorithms.

use std::fmt;

use hebs_display::DisplayError;
use hebs_transform::TransformError;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, HebsError>;

/// Error raised by the HEBS pipeline and its configuration.
#[derive(Debug)]
#[non_exhaustive]
pub enum HebsError {
    /// A distortion bound or other fraction was outside `[0, 1]`.
    InvalidFraction {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A dynamic-range value was outside `[2, 256]`.
    InvalidDynamicRange {
        /// The offending value.
        range: u32,
    },
    /// The distortion characterization did not contain enough samples to fit
    /// a curve.
    InsufficientData {
        /// Number of samples available.
        samples: usize,
        /// Number of samples required.
        required: usize,
    },
    /// The configured distortion measure does not support the requested
    /// histogram-domain operation (windowed measures need pixels).
    HistogramIncapableMeasure {
        /// Name of the measure that declined the histogram path.
        measure: String,
    },
    /// No backlight setting satisfies the requested distortion bound.
    Infeasible {
        /// The distortion bound that could not be met.
        max_distortion: f64,
        /// The smallest distortion that was achievable.
        best_achievable: f64,
    },
    /// An error from the transformation layer.
    Transform(TransformError),
    /// An error from the display substrate.
    Display(DisplayError),
}

impl fmt::Display for HebsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HebsError::InvalidFraction { name, value } => {
                write!(f, "parameter {name} = {value} is outside of [0, 1]")
            }
            HebsError::InvalidDynamicRange { range } => {
                write!(f, "dynamic range {range} is outside of [2, 256]")
            }
            HebsError::InsufficientData { samples, required } => write!(
                f,
                "need at least {required} characterization samples, got {samples}"
            ),
            HebsError::HistogramIncapableMeasure { measure } => write!(
                f,
                "distortion measure {measure} cannot be evaluated in the histogram domain"
            ),
            HebsError::Infeasible {
                max_distortion,
                best_achievable,
            } => write!(
                f,
                "no setting meets distortion bound {max_distortion}; best achievable is {best_achievable}"
            ),
            HebsError::Transform(err) => write!(f, "transformation error: {err}"),
            HebsError::Display(err) => write!(f, "display error: {err}"),
        }
    }
}

impl std::error::Error for HebsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HebsError::Transform(err) => Some(err),
            HebsError::Display(err) => Some(err),
            _ => None,
        }
    }
}

impl From<TransformError> for HebsError {
    fn from(err: TransformError) -> Self {
        HebsError::Transform(err)
    }
}

impl From<DisplayError> for HebsError {
    fn from(err: DisplayError) -> Self {
        HebsError::Display(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = HebsError::InvalidFraction {
            name: "max_distortion",
            value: 1.5,
        };
        assert!(err.to_string().contains("max_distortion"));
        let err = HebsError::InvalidDynamicRange { range: 300 };
        assert!(err.to_string().contains("300"));
        let err = HebsError::Infeasible {
            max_distortion: 0.01,
            best_achievable: 0.05,
        };
        assert!(err.to_string().contains("0.05"));
    }

    #[test]
    fn conversions_preserve_source() {
        use std::error::Error;
        let err: HebsError = TransformError::InvalidBacklightFactor { beta: 2.0 }.into();
        assert!(err.source().is_some());
        let err: HebsError = DisplayError::InvalidBacklightFactor { beta: 2.0 }.into();
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HebsError>();
    }
}
