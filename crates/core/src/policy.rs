//! Backlight scaling policies and the HEBS policy itself.
//!
//! A *policy* answers the Dynamic Backlight Scaling problem of Section 3:
//! given an image and a maximum tolerable distortion, pick the backlight
//! factor and the pixel transformation that minimize power. The trait
//! [`BacklightPolicy`] is implemented by HEBS (this module) and by the
//! prior-work baselines in [`crate::baselines`], so the comparison harness
//! can treat them uniformly.
//!
//! The closed-loop HEBS search bisects over target ranges. When the
//! configured distortion measure supports the histogram-domain entry point,
//! the whole bisection runs in level space — O(evaluations × 256)
//! regardless of frame size — and the frame is touched exactly once, by
//! the final fused apply. Windowed measures fall back to the pixel path,
//! whose intermediate candidate images go into a reusable [`FitScratch`].

use std::sync::Arc;

use hebs_display::PowerBreakdown;
use hebs_imaging::{GrayImage, Histogram};
use hebs_transform::LookupTable;

use crate::characterize::{CurveFit, DistortionCharacteristic};
use crate::error::{HebsError, Result};
use crate::ghe::TargetRange;
use crate::pipeline::{
    apply_transform_with_histogram_scratch, evaluate_at_range_scratch,
    evaluate_range_from_histogram, evaluate_transform_from_histogram, Evaluation, FitScratch,
    FrameTransform, PipelineConfig, RangeEvaluation,
};

/// The outcome of running a backlight scaling policy on one image.
#[derive(Debug, Clone)]
pub struct ScalingOutcome {
    /// Name of the policy that produced this outcome.
    pub policy: String,
    /// Backlight scaling factor `β` chosen by the policy.
    pub beta: f64,
    /// Target dynamic range of the transformed image, when the policy is
    /// range-based (HEBS); `None` for the baselines.
    pub dynamic_range: Option<u32>,
    /// Measured distortion between the original and the displayed image.
    pub distortion: f64,
    /// Power breakdown of the scaled configuration.
    pub power: PowerBreakdown,
    /// Fractional power saving versus the original image at full backlight.
    pub power_saving: f64,
    /// The lookup table programmed into the reference driver.
    pub lut: LookupTable,
    /// The luminance image the display emits.
    pub displayed: GrayImage,
    /// Number of target-range fit evaluations the policy performed to
    /// produce this outcome: ~8 for a closed-loop search, 1 for an
    /// open-loop lookup, 0 when a cached transform was replayed.
    pub fit_evaluations: u32,
}

impl ScalingOutcome {
    /// Builds an outcome from a pipeline range evaluation.
    pub(crate) fn from_evaluation(policy: &str, eval: RangeEvaluation) -> Self {
        ScalingOutcome {
            policy: policy.to_string(),
            beta: eval.beta(),
            dynamic_range: Some(eval.target().span()),
            distortion: eval.distortion,
            power: eval.power,
            power_saving: eval.power_saving,
            lut: eval.lut().clone(),
            fit_evaluations: eval.fit_evaluations,
            displayed: eval.displayed,
        }
    }
}

/// A dynamic backlight scaling policy.
pub trait BacklightPolicy {
    /// Short name used in benchmark tables.
    fn name(&self) -> &str;

    /// Chooses a backlight setting and pixel transformation for `image`
    /// such that the measured distortion stays at or below `max_distortion`
    /// while saving as much power as the policy can.
    ///
    /// # Errors
    ///
    /// Returns an error if `max_distortion` is outside `[0, 1]` or the
    /// underlying models reject the configuration. Policies fall back to the
    /// identity (no dimming) rather than erroring when the bound simply
    /// cannot be improved upon.
    fn optimize(&self, image: &GrayImage, max_distortion: f64) -> Result<ScalingOutcome>;
}

/// How the HEBS policy determines the target dynamic range for a distortion
/// budget.
#[derive(Debug, Clone)]
pub enum RangeSelection {
    /// Look the range up on a precomputed distortion characteristic curve
    /// (the paper's flow — a single table lookup at run time). The boolean
    /// selects the conservative (worst-case) fit.
    Characteristic {
        /// The fitted curve to look ranges up on. Shared so a serving
        /// runtime can hold the same curve in its re-characterization slot
        /// without cloning the sample scatter per policy rebuild.
        curve: Arc<DistortionCharacteristic>,
        /// Which of the curve's fits (average, p95 envelope, worst case)
        /// the lookup runs on.
        fit: CurveFit,
    },
    /// Search the range per image using the actual measured distortion
    /// (closed loop): slower, but the bound is honoured exactly.
    ClosedLoop,
}

/// The HEBS backlight scaling policy.
pub struct HebsPolicy {
    config: PipelineConfig,
    selection: RangeSelection,
    name: String,
}

impl std::fmt::Debug for HebsPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HebsPolicy")
            .field("name", &self.name)
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl HebsPolicy {
    /// A closed-loop HEBS policy: the target range is searched per image so
    /// the distortion bound is met exactly.
    pub fn closed_loop(config: PipelineConfig) -> Self {
        HebsPolicy {
            config,
            selection: RangeSelection::ClosedLoop,
            name: "hebs".to_string(),
        }
    }

    /// An open-loop HEBS policy using a precomputed distortion
    /// characteristic curve, as in the paper's hardware flow.
    pub fn open_loop(
        config: PipelineConfig,
        curve: DistortionCharacteristic,
        conservative: bool,
    ) -> Self {
        Self::open_loop_shared(config, Arc::new(curve), conservative)
    }

    /// Like [`HebsPolicy::open_loop`] but shares an existing characteristic
    /// instead of taking ownership — the serving runtime swaps rebuilt
    /// curves into fresh policies without copying the sample scatter.
    pub fn open_loop_shared(
        config: PipelineConfig,
        curve: Arc<DistortionCharacteristic>,
        conservative: bool,
    ) -> Self {
        let fit = if conservative {
            CurveFit::WorstCase
        } else {
            CurveFit::Average
        };
        Self::open_loop_with_fit(config, curve, fit)
    }

    /// Like [`HebsPolicy::open_loop_shared`] with an explicit [`CurveFit`]
    /// selection — in particular the p95 envelope, which dims heterogeneous
    /// traffic the worst-case fit refuses to.
    pub fn open_loop_with_fit(
        config: PipelineConfig,
        curve: Arc<DistortionCharacteristic>,
        fit: CurveFit,
    ) -> Self {
        HebsPolicy {
            config,
            selection: RangeSelection::Characteristic { curve, fit },
            name: match fit {
                CurveFit::Average => "hebs-open".to_string(),
                CurveFit::Envelope => "hebs-open-envelope".to_string(),
                CurveFit::WorstCase => "hebs-open-worstcase".to_string(),
            },
        }
    }

    /// The pipeline configuration this policy runs with.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The characteristic curve an open-loop policy looks ranges up on
    /// (`None` for closed-loop policies).
    pub fn characteristic(&self) -> Option<&Arc<DistortionCharacteristic>> {
        match &self.selection {
            RangeSelection::Characteristic { curve, .. } => Some(curve),
            RangeSelection::ClosedLoop => None,
        }
    }

    fn evaluate(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        range: u32,
        scratch: &mut FitScratch,
    ) -> Result<RangeEvaluation> {
        let target = TargetRange::from_span(range)?;
        evaluate_at_range_scratch(&self.config, image, histogram, target, scratch)
    }

    /// Closed-loop search: the smallest range whose measured distortion is
    /// within the budget. Distortion is monotone non-increasing in the range
    /// to a good approximation, so a bisection over `[2, 256]` suffices.
    ///
    /// With a histogram-capable measure the entire bisection runs in level
    /// space and only the winning fit is materialized; otherwise every step
    /// measures through the pixel path (candidates into `scratch`).
    fn search_range(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<RangeEvaluation> {
        let full_target = TargetRange::from_span(256).expect("256 is a valid span");
        if let Some(full) = evaluate_range_from_histogram(&self.config, histogram, full_target)? {
            if let Some(found) =
                self.search_range_level_space(image, histogram, max_distortion, full, scratch)?
            {
                return Ok(found);
            }
        }
        self.search_range_pixel_space(image, histogram, max_distortion, scratch)
    }

    /// The O(levels) bisection: every step is a histogram-domain fit; the
    /// frame is only touched by the final materializing apply.
    ///
    /// Returns `Ok(None)` when a step unexpectedly declines the histogram
    /// path (a measure violating the capability-stability contract); the
    /// caller then restarts through the pixel path instead of panicking a
    /// serving worker.
    fn search_range_level_space(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        max_distortion: f64,
        full: Evaluation,
        scratch: &mut FitScratch,
    ) -> Result<Option<RangeEvaluation>> {
        let mut total_evaluations = full.fit_evaluations;
        if full.distortion > max_distortion {
            // Even the widest range misses the budget: fall back to it (it is
            // the least-distorting configuration HEBS can produce).
            let mut best = full;
            best.fit_evaluations = total_evaluations;
            return Ok(Some(best.materialize_with_scratch(image, scratch)));
        }
        let mut lo = 2u32;
        let mut hi = 256u32;
        let mut best = full;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let target = TargetRange::from_span(mid)?;
            let Some(eval) = evaluate_range_from_histogram(&self.config, histogram, target)? else {
                return Ok(None);
            };
            total_evaluations += eval.fit_evaluations;
            if eval.distortion <= max_distortion {
                hi = mid;
                best = eval;
            } else {
                lo = mid + 1;
            }
        }
        best.fit_evaluations = total_evaluations;
        Ok(Some(best.materialize_with_scratch(image, scratch)))
    }

    /// The pixel-path bisection for windowed measures: candidate images go
    /// into the scratch, one full evaluation per step.
    fn search_range_pixel_space(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<RangeEvaluation> {
        let full = self.evaluate(image, histogram, 256, scratch)?;
        let mut total_evaluations = full.fit_evaluations;
        if full.distortion > max_distortion {
            return Ok(full);
        }
        let mut lo = 2u32;
        let mut hi = 256u32;
        let mut best = full;
        while lo < hi {
            let mid = (lo + hi) / 2;
            let eval = self.evaluate(image, histogram, mid, scratch)?;
            total_evaluations += eval.fit_evaluations;
            if eval.distortion <= max_distortion {
                hi = mid;
                let discarded = std::mem::replace(&mut best, eval);
                scratch.recycle_output(discarded.displayed);
            } else {
                lo = mid + 1;
                scratch.recycle_output(eval.displayed);
            }
        }
        best.fit_evaluations = total_evaluations;
        Ok(best)
    }
}

impl HebsPolicy {
    /// Runs the full policy with a precomputed histogram of `image`.
    fn select_evaluation_with_histogram(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<RangeEvaluation> {
        if !(0.0..=1.0).contains(&max_distortion) || !max_distortion.is_finite() {
            return Err(HebsError::InvalidFraction {
                name: "max_distortion",
                value: max_distortion,
            });
        }
        match &self.selection {
            RangeSelection::ClosedLoop => {
                self.search_range(image, histogram, max_distortion, scratch)
            }
            RangeSelection::Characteristic { curve, fit } => {
                // When even the full range is predicted to exceed the budget
                // the characteristic cannot help; fall back to the widest
                // (least distorting) range rather than refusing to display.
                let range = curve.min_range_for_fit(max_distortion, *fit).unwrap_or(256);
                self.evaluate(image, histogram, range.max(2), scratch)
            }
        }
    }

    /// Like [`BacklightPolicy::optimize`], but writes intermediate pixel
    /// work into a caller-provided scratch — the serving runtime gives each
    /// worker one, so steady-state fits perform no intermediate per-frame
    /// allocations.
    ///
    /// # Errors
    ///
    /// Same as [`BacklightPolicy::optimize`].
    pub fn optimize_with_scratch(
        &self,
        image: &GrayImage,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<ScalingOutcome> {
        let histogram = Histogram::of(image);
        let evaluation =
            self.select_evaluation_with_histogram(image, &histogram, max_distortion, scratch)?;
        Ok(ScalingOutcome::from_evaluation(&self.name, evaluation))
    }

    /// Like [`BacklightPolicy::optimize`], but also returns the fitted
    /// [`FrameTransform`] so callers can cache it and replay it on other
    /// frames with [`HebsPolicy::apply_frame_transform`].
    ///
    /// # Errors
    ///
    /// Same as [`BacklightPolicy::optimize`].
    pub fn optimize_with_transform(
        &self,
        image: &GrayImage,
        max_distortion: f64,
    ) -> Result<(ScalingOutcome, Arc<FrameTransform>)> {
        let histogram = Histogram::of(image);
        let mut scratch = FitScratch::default();
        self.optimize_with_transform_using_histogram(
            image,
            &histogram,
            max_distortion,
            &mut scratch,
        )
    }

    /// Like [`HebsPolicy::optimize_with_transform`] but reuses a precomputed
    /// histogram of `image` and a caller-provided scratch — the serving
    /// runtime already computes a histogram per frame for its cache key, and
    /// this avoids a second pass over the pixels.
    ///
    /// # Errors
    ///
    /// Same as [`BacklightPolicy::optimize`].
    pub fn optimize_with_transform_using_histogram(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<(ScalingOutcome, Arc<FrameTransform>)> {
        let evaluation =
            self.select_evaluation_with_histogram(image, histogram, max_distortion, scratch)?;
        let transform = evaluation.shared_transform();
        Ok((
            ScalingOutcome::from_evaluation(&self.name, evaluation),
            transform,
        ))
    }

    /// Applies an already-fitted transformation to a frame, skipping the
    /// range search and the fitting stage entirely.
    ///
    /// This is the cache-hit fast path of the serving runtime: the distortion
    /// and power of the *actual* frame are still measured (in the histogram
    /// domain when the measure allows, else through the pixel path), only
    /// the expensive fit is reused. For the exact frame the transform was
    /// fitted on, the outcome is bit-identical to the one
    /// [`BacklightPolicy::optimize`] produces (the pipeline is
    /// deterministic).
    ///
    /// # Errors
    ///
    /// Propagates errors from the display substrate.
    pub fn apply_frame_transform(
        &self,
        image: &GrayImage,
        transform: &Arc<FrameTransform>,
    ) -> Result<ScalingOutcome> {
        let histogram = Histogram::of(image);
        self.apply_frame_transform_with_histogram(image, &histogram, transform)
    }

    /// Like [`HebsPolicy::apply_frame_transform`] with a precomputed
    /// histogram of `image`.
    ///
    /// # Errors
    ///
    /// Propagates errors from the display substrate.
    pub fn apply_frame_transform_with_histogram(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        transform: &Arc<FrameTransform>,
    ) -> Result<ScalingOutcome> {
        let mut scratch = FitScratch::default();
        self.apply_frame_transform_with_histogram_scratch(image, histogram, transform, &mut scratch)
    }

    /// Like [`HebsPolicy::apply_frame_transform_with_histogram`] but
    /// materializes the displayed frame through the scratch's reusable
    /// output buffer — the allocation-free serve-path variant.
    ///
    /// # Errors
    ///
    /// Propagates errors from the display substrate.
    pub fn apply_frame_transform_with_histogram_scratch(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        transform: &Arc<FrameTransform>,
        scratch: &mut FitScratch,
    ) -> Result<ScalingOutcome> {
        let evaluation = apply_transform_with_histogram_scratch(
            &self.config,
            image,
            histogram,
            transform,
            scratch,
        )?;
        Ok(ScalingOutcome::from_evaluation(&self.name, evaluation))
    }

    /// Replays a cached transform on a frame *only if* its measured
    /// distortion satisfies `max_distortion`; returns `Ok(None)` otherwise.
    ///
    /// With a histogram-capable measure the budget check costs O(levels)
    /// and a rejected replay never touches a pixel — the serving runtime
    /// uses this to validate approximate-cache hits before spending any
    /// frame-buffer work on them.
    ///
    /// # Errors
    ///
    /// Propagates errors from the display substrate.
    pub fn replay_frame_transform(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        transform: &Arc<FrameTransform>,
        max_distortion: f64,
    ) -> Result<Option<ScalingOutcome>> {
        let mut scratch = FitScratch::default();
        self.replay_frame_transform_with_scratch(
            image,
            histogram,
            transform,
            max_distortion,
            &mut scratch,
        )
    }

    /// Like [`HebsPolicy::replay_frame_transform`] but materializes an
    /// accepted replay through the scratch's reusable output buffer, so a
    /// steady-state cache hit allocates nothing.
    ///
    /// # Errors
    ///
    /// Propagates errors from the display substrate.
    pub fn replay_frame_transform_with_scratch(
        &self,
        image: &GrayImage,
        histogram: &Histogram,
        transform: &Arc<FrameTransform>,
        max_distortion: f64,
        scratch: &mut FitScratch,
    ) -> Result<Option<ScalingOutcome>> {
        if let Some(evaluation) =
            evaluate_transform_from_histogram(&self.config, histogram, transform)?
        {
            // Histogram-capable: decide before materializing anything.
            if evaluation.distortion > max_distortion {
                return Ok(None);
            }
            return Ok(Some(ScalingOutcome::from_evaluation(
                &self.name,
                evaluation.materialize_with_scratch(image, scratch),
            )));
        }
        // Windowed measure: the displayed image is needed to measure; it
        // doubles as the outcome on acceptance.
        let outcome = self
            .apply_frame_transform_with_histogram_scratch(image, histogram, transform, scratch)?;
        if outcome.distortion > max_distortion {
            scratch.recycle_output(outcome.displayed);
            return Ok(None);
        }
        Ok(Some(outcome))
    }
}

impl BacklightPolicy for HebsPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn optimize(&self, image: &GrayImage, max_distortion: f64) -> Result<ScalingOutcome> {
        let mut scratch = FitScratch::default();
        self.optimize_with_scratch(image, max_distortion, &mut scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::DistortionCharacteristic;
    use hebs_imaging::synthetic;
    use hebs_quality::GlobalUiqiDistortion;

    fn test_image() -> GrayImage {
        synthetic::still_life(64, 64, 41)
    }

    #[test]
    fn closed_loop_respects_the_distortion_bound() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        for bound in [0.05, 0.10, 0.20] {
            let outcome = policy.optimize(&img, bound).unwrap();
            assert!(
                outcome.distortion <= bound + 1e-9,
                "distortion {} exceeds bound {bound}",
                outcome.distortion
            );
            assert!(outcome.power_saving >= 0.0);
            assert_eq!(outcome.policy, "hebs");
            assert!(
                outcome.fit_evaluations > 0,
                "a search must report its fit evaluations"
            );
        }
    }

    #[test]
    fn histogram_capable_measure_respects_the_bound_too() {
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        let policy = HebsPolicy::closed_loop(config);
        let img = test_image();
        for bound in [0.05, 0.15] {
            let outcome = policy.optimize(&img, bound).unwrap();
            assert!(
                outcome.distortion <= bound + 1e-9,
                "distortion {} exceeds bound {bound}",
                outcome.distortion
            );
            assert!(outcome.fit_evaluations > 0);
        }
    }

    #[test]
    fn level_space_and_pixel_space_searches_agree() {
        // Forcing the same global measure down the pixel path must pick the
        // same configuration as the level-space search.
        #[derive(Debug, Clone, Copy)]
        struct PixelOnly;
        impl hebs_quality::DistortionMeasure for PixelOnly {
            fn distortion(&self, a: &GrayImage, b: &GrayImage) -> f64 {
                GlobalUiqiDistortion.distortion(a, b)
            }
            fn name(&self) -> &'static str {
                "uiqi-global-pixel-test"
            }
        }

        let img = test_image();
        let level =
            HebsPolicy::closed_loop(PipelineConfig::default().with_measure(GlobalUiqiDistortion));
        let pixel = HebsPolicy::closed_loop(PipelineConfig::default().with_measure(PixelOnly));
        let a = level.optimize(&img, 0.10).unwrap();
        let b = pixel.optimize(&img, 0.10).unwrap();
        assert_eq!(a.beta, b.beta, "both searches must pick the same range");
        assert_eq!(a.lut, b.lut);
        assert!((a.distortion - b.distortion).abs() <= 1e-9);
        assert_eq!(a.displayed, b.displayed);
    }

    #[test]
    fn larger_budget_never_saves_less_power() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        let tight = policy.optimize(&img, 0.05).unwrap();
        let loose = policy.optimize(&img, 0.20).unwrap();
        assert!(loose.power_saving + 1e-9 >= tight.power_saving);
        assert!(loose.beta <= tight.beta + 1e-9);
    }

    #[test]
    fn meaningful_savings_at_moderate_distortion() {
        // The headline claim of the paper: tens of percent of power saved at
        // ten-percent distortion.
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        let outcome = policy.optimize(&img, 0.10).unwrap();
        assert!(
            outcome.power_saving > 0.25,
            "expected >25% saving at 10% distortion, got {}",
            outcome.power_saving
        );
    }

    #[test]
    fn invalid_budget_rejected() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        assert!(policy.optimize(&img, -0.1).is_err());
        assert!(policy.optimize(&img, 1.5).is_err());
        assert!(policy.optimize(&img, f64::NAN).is_err());
    }

    #[test]
    fn open_loop_uses_the_characteristic_curve() {
        let config = PipelineConfig::default();
        let suite = [
            ("a".to_string(), synthetic::portrait(48, 48, 42)),
            ("b".to_string(), synthetic::landscape(48, 48, 43)),
            ("c".to_string(), synthetic::fine_texture(48, 48, 44)),
        ];
        let characteristic = DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &[80, 160, 240],
        )
        .unwrap();
        let policy = HebsPolicy::open_loop(config, characteristic, false);
        let outcome = policy.optimize(&test_image(), 0.15).unwrap();
        assert!(outcome.dynamic_range.is_some());
        assert!(outcome.beta <= 1.0);
        assert_eq!(outcome.policy, "hebs-open");
    }

    #[test]
    fn conservative_open_loop_dims_less_aggressively() {
        let config = PipelineConfig::default();
        let suite = [
            ("a".to_string(), synthetic::portrait(48, 48, 45)),
            ("b".to_string(), synthetic::low_key(48, 48, 46)),
            ("c".to_string(), synthetic::fine_texture(48, 48, 47)),
        ];
        let characteristic = DistortionCharacteristic::characterize(
            &config,
            suite.iter().map(|(n, i)| (n.as_str(), i)),
            &[80, 160, 240],
        )
        .unwrap();
        let average = HebsPolicy::open_loop(config.clone(), characteristic.clone(), false);
        let conservative = HebsPolicy::open_loop(config, characteristic, true);
        let img = test_image();
        let avg_outcome = average.optimize(&img, 0.10).unwrap();
        let cons_outcome = conservative.optimize(&img, 0.10).unwrap();
        assert!(cons_outcome.beta + 1e-9 >= avg_outcome.beta);
    }

    #[test]
    fn outcome_is_consistent_with_its_own_power_breakdown() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        let outcome = policy.optimize(&img, 0.10).unwrap();
        assert!((outcome.power.beta - outcome.beta).abs() < 1e-12);
        assert!(outcome.lut.is_monotone());
        assert_eq!(outcome.displayed.width(), img.width());
    }

    #[test]
    fn optimize_with_transform_matches_plain_optimize() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let img = test_image();
        let plain = policy.optimize(&img, 0.10).unwrap();
        let (outcome, transform) = policy.optimize_with_transform(&img, 0.10).unwrap();
        assert_eq!(outcome.beta, plain.beta);
        assert_eq!(outcome.distortion, plain.distortion);
        assert_eq!(outcome.lut, plain.lut);
        assert_eq!(transform.lut, plain.lut);

        // Replaying the transform on the same frame is bit-identical.
        let replayed = policy.apply_frame_transform(&img, &transform).unwrap();
        assert_eq!(replayed.beta, plain.beta);
        assert_eq!(replayed.distortion, plain.distortion);
        assert_eq!(replayed.power_saving, plain.power_saving);
        assert_eq!(replayed.displayed, plain.displayed);
        assert_eq!(replayed.lut, plain.lut);
        assert_eq!(replayed.fit_evaluations, 0, "a replay runs no fits");
    }

    #[test]
    fn replay_rejects_over_budget_transforms_cheaply() {
        let config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
        let policy = HebsPolicy::closed_loop(config);
        let img = test_image();
        let (loose, transform) = policy.optimize_with_transform(&img, 0.20).unwrap();
        assert!(loose.distortion > 0.01, "loose fit uses its budget");
        let hist = Histogram::of(&img);
        // A much stricter budget must reject the cached fit...
        let rejected = policy
            .replay_frame_transform(&img, &hist, &transform, 0.001)
            .unwrap();
        assert!(rejected.is_none());
        // ...while the original budget accepts it bit-identically.
        let accepted = policy
            .replay_frame_transform(&img, &hist, &transform, 0.20)
            .unwrap()
            .expect("fit satisfies its own budget");
        assert_eq!(accepted.distortion, loose.distortion);
        assert_eq!(accepted.displayed, loose.displayed);
    }

    #[test]
    fn policy_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HebsPolicy>();
        assert_send_sync::<RangeSelection>();
        assert_send_sync::<ScalingOutcome>();
        assert_send_sync::<crate::video::VideoPipeline<HebsPolicy>>();
    }

    #[test]
    fn policy_trait_is_object_safe() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let as_object: &dyn BacklightPolicy = &policy;
        assert_eq!(as_object.name(), "hebs");
    }
}
