//! Least-squares curve fitting for the distortion characteristic curve.
//!
//! Section 5.1c of the paper: the distortion of a transformed image as a
//! function of its target dynamic range is measured over a benchmark suite,
//! and "standard curve fitting tools" produce an *average* fit and a
//! *worst-case* fit (Figure 7). At run time the worst-case (or average) fit
//! is inverted to look up the minimum admissible dynamic range for a given
//! distortion budget. The paper used MATLAB; this module implements ordinary
//! least-squares polynomial fitting from scratch (solving the normal
//! equations by Gaussian elimination), which is all that is required.

use crate::error::{HebsError, Result};

/// A polynomial `p(x) = c₀ + c₁·x + … + c_d·x^d` fitted by least squares.
#[derive(Debug, Clone, PartialEq)]
pub struct Polynomial {
    coefficients: Vec<f64>,
}

impl Polynomial {
    /// Creates a polynomial from its coefficients, lowest order first.
    ///
    /// # Panics
    ///
    /// Panics if `coefficients` is empty.
    pub fn new(coefficients: Vec<f64>) -> Self {
        assert!(!coefficients.is_empty(), "polynomial needs coefficients");
        Polynomial { coefficients }
    }

    /// Coefficients, lowest order first.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Degree of the polynomial.
    pub fn degree(&self) -> usize {
        self.coefficients.len() - 1
    }

    /// Evaluates the polynomial at `x` (Horner's scheme).
    pub fn evaluate(&self, x: f64) -> f64 {
        self.coefficients
            .iter()
            .rev()
            .fold(0.0, |acc, &c| acc * x + c)
    }

    /// Fits a polynomial of the given degree to `(x, y)` samples by ordinary
    /// least squares.
    ///
    /// # Errors
    ///
    /// Returns [`HebsError::InsufficientData`] when there are fewer samples
    /// than coefficients, and [`HebsError::InvalidFraction`] if the normal
    /// equations are singular (degenerate sample placement).
    pub fn fit(samples: &[(f64, f64)], degree: usize) -> Result<Self> {
        let terms = degree + 1;
        if samples.len() < terms {
            return Err(HebsError::InsufficientData {
                samples: samples.len(),
                required: terms,
            });
        }
        // Build the normal equations A·c = b with
        // A[i][j] = Σ x^(i+j), b[i] = Σ y·x^i.
        let mut a = vec![vec![0.0f64; terms]; terms];
        let mut b = vec![0.0f64; terms];
        for &(x, y) in samples {
            let mut x_pow_i = 1.0;
            for i in 0..terms {
                let mut x_pow_ij = x_pow_i;
                for entry in a[i].iter_mut() {
                    *entry += x_pow_ij;
                    x_pow_ij *= x;
                }
                b[i] += y * x_pow_i;
                x_pow_i *= x;
            }
        }
        let coefficients = solve_linear_system(a, b)?;
        Ok(Polynomial { coefficients })
    }

    /// Root-mean-square residual of the fit over a sample set.
    pub fn rms_residual(&self, samples: &[(f64, f64)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = samples
            .iter()
            .map(|&(x, y)| {
                let d = self.evaluate(x) - y;
                d * d
            })
            .sum();
        (sum / samples.len() as f64).sqrt()
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot: largest magnitude entry in this column.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("matrix entries are finite")
            })
            .expect("non-empty column");
        if a[pivot_row][col].abs() < 1e-12 {
            return Err(HebsError::InsufficientData {
                samples: n,
                required: n + 1,
            });
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        // Eliminate below.
        let pivot = a[col].clone();
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot[col];
            for (entry, &p) in a[row][col..].iter_mut().zip(&pivot[col..]) {
                *entry -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for col in (row + 1)..n {
            sum -= a[row][col] * x[col];
        }
        x[row] = sum / a[row][row];
    }
    Ok(x)
}

/// Fits an *upper envelope* polynomial: a least-squares fit that is then
/// shifted upward so it lies at or above every sample (the paper's
/// "worst-case fit" of Figure 7).
///
/// # Errors
///
/// Propagates the errors of [`Polynomial::fit`].
pub fn fit_upper_envelope(samples: &[(f64, f64)], degree: usize) -> Result<Polynomial> {
    fit_quantile_envelope(samples, degree, 1.0)
}

/// Fits a *quantile envelope* polynomial: the least-squares fit shifted
/// upward by the `quantile`-rank residual (nearest rank), so it lies at or
/// above that fraction of the samples. `quantile = 1.0` reproduces
/// [`fit_upper_envelope`]; intermediate quantiles (e.g. a p95 envelope) sit
/// between the average fit and the worst-case fit — they cover almost every
/// sample without letting a single outlier image dictate the whole curve.
///
/// The shift is clamped to `[0, max shortfall]`, so the result always
/// dominates the base least-squares fit and never exceeds the upper
/// envelope.
///
/// # Errors
///
/// Propagates the errors of [`Polynomial::fit`].
pub fn fit_quantile_envelope(
    samples: &[(f64, f64)],
    degree: usize,
    quantile: f64,
) -> Result<Polynomial> {
    let base = Polynomial::fit(samples, degree)?;
    let mut shortfalls: Vec<f64> = samples.iter().map(|&(x, y)| y - base.evaluate(x)).collect();
    shortfalls.sort_by(|a, b| a.partial_cmp(b).expect("finite residuals"));
    let rank = (quantile.clamp(0.0, 1.0) * (shortfalls.len() - 1) as f64).round() as usize;
    let max_shortfall = shortfalls.last().copied().unwrap_or(0.0).max(0.0);
    let shift = shortfalls[rank].clamp(0.0, max_shortfall);
    let mut coefficients = base.coefficients.clone();
    coefficients[0] += shift;
    Ok(Polynomial::new(coefficients))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_of_a_quadratic() {
        let samples: Vec<(f64, f64)> = (0..10)
            .map(|i| {
                let x = f64::from(i);
                (x, 2.0 + 3.0 * x - 0.5 * x * x)
            })
            .collect();
        let poly = Polynomial::fit(&samples, 2).unwrap();
        assert!((poly.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((poly.coefficients()[1] - 3.0).abs() < 1e-9);
        assert!((poly.coefficients()[2] + 0.5).abs() < 1e-9);
        assert!(poly.rms_residual(&samples) < 1e-9);
        assert_eq!(poly.degree(), 2);
    }

    #[test]
    fn linear_fit_of_noisy_line() {
        // y = 10 − 0.03·x with deterministic "noise".
        let samples: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = f64::from(i) * 5.0;
                let noise = if i % 2 == 0 { 0.2 } else { -0.2 };
                (x, 10.0 - 0.03 * x + noise)
            })
            .collect();
        let poly = Polynomial::fit(&samples, 1).unwrap();
        assert!((poly.coefficients()[0] - 10.0).abs() < 0.1);
        assert!((poly.coefficients()[1] + 0.03).abs() < 0.005);
        assert!(poly.rms_residual(&samples) < 0.3);
    }

    #[test]
    fn insufficient_samples_rejected() {
        let samples = vec![(0.0, 1.0), (1.0, 2.0)];
        assert!(matches!(
            Polynomial::fit(&samples, 2),
            Err(HebsError::InsufficientData { .. })
        ));
    }

    #[test]
    fn degenerate_samples_rejected() {
        // All x identical: the normal equations are singular for degree ≥ 1.
        let samples = vec![(1.0, 1.0), (1.0, 2.0), (1.0, 3.0)];
        assert!(Polynomial::fit(&samples, 1).is_err());
    }

    #[test]
    fn degree_zero_fit_is_the_mean() {
        let samples = vec![(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
        let poly = Polynomial::fit(&samples, 0).unwrap();
        assert!((poly.evaluate(10.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn horner_evaluation() {
        let poly = Polynomial::new(vec![1.0, -2.0, 0.5]);
        // 1 − 2·3 + 0.5·9 = −0.5.
        assert!((poly.evaluate(3.0) + 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "polynomial needs coefficients")]
    fn empty_polynomial_panics() {
        let _ = Polynomial::new(vec![]);
    }

    #[test]
    fn quantile_envelope_sits_between_average_and_worst_case() {
        // A decreasing line with one extreme outlier at i == 7 and mild
        // alternating noise elsewhere: the p95 envelope must cover the bulk
        // of the samples without being dragged all the way up to the
        // outlier the way the upper envelope is.
        let samples: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = f64::from(i) * 10.0;
                let bump = if i == 7 {
                    5.0
                } else if i % 2 == 0 {
                    0.2
                } else {
                    -0.2
                };
                (x, 30.0 - 0.1 * x + bump)
            })
            .collect();
        let base = Polynomial::fit(&samples, 1).unwrap();
        let p95 = fit_quantile_envelope(&samples, 1, 0.95).unwrap();
        let worst = fit_upper_envelope(&samples, 1).unwrap();
        for x in [0.0, 50.0, 100.0, 150.0] {
            assert!(p95.evaluate(x) >= base.evaluate(x) - 1e-9);
            assert!(p95.evaluate(x) <= worst.evaluate(x) + 1e-9);
        }
        // The envelope covers at least 95% of the samples...
        let covered = samples
            .iter()
            .filter(|&&(x, y)| p95.evaluate(x) >= y - 1e-9)
            .count();
        assert!(covered >= 19, "only {covered}/20 samples covered");
        // ...but is strictly below the outlier-dominated worst case.
        assert!(p95.evaluate(70.0) < worst.evaluate(70.0) - 1.0);
        // Quantile 1.0 reproduces the upper envelope exactly.
        let q1 = fit_quantile_envelope(&samples, 1, 1.0).unwrap();
        assert_eq!(q1.coefficients(), worst.coefficients());
    }

    #[test]
    fn upper_envelope_dominates_all_samples() {
        let samples: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = f64::from(i) * 10.0;
                let bump = if i == 7 { 3.0 } else { 0.0 };
                (x, 30.0 - 0.1 * x + bump)
            })
            .collect();
        let envelope = fit_upper_envelope(&samples, 1).unwrap();
        for &(x, y) in &samples {
            assert!(
                envelope.evaluate(x) >= y - 1e-9,
                "envelope below sample at x = {x}"
            );
        }
        // And it should not be wildly above the mean fit.
        let base = Polynomial::fit(&samples, 1).unwrap();
        assert!(envelope.evaluate(50.0) - base.evaluate(50.0) <= 3.0 + 1e-9);
    }
}
