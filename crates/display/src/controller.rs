//! LCD controller and frame-buffer simulation.
//!
//! The video controller writes incoming frames into a frame buffer; the LCD
//! controller reads them out scanline by scanline every refresh period,
//! pushes the pixel values through the programmed reference-driver lookup
//! table, and drives the panel (Section 2, Figure 1 of the paper). This
//! module provides a small cycle-less model of that path. It tracks two
//! quantities that matter for the video use case:
//!
//! * **Bus activity** — the number of bit transitions on the video interface
//!   per refresh, the quantity targeted by the encoding techniques of the
//!   paper's references \[2\] and \[3\]. It is reported so users can see that
//!   HEBS (which changes pixel values) does not blow up interface power.
//! * **Backlight transitions** — how often and by how much the backlight
//!   setting changes between frames, which the temporal-smoothing policy in
//!   `hebs-core` is designed to bound (visible flicker).

use hebs_imaging::GrayImage;
use hebs_transform::LookupTable;

use crate::error::{DisplayError, Result};

/// Statistics accumulated by the controller over the frames it has shown.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControllerStats {
    /// Number of frames displayed.
    pub frames: u64,
    /// Total Hamming distance (bit transitions) on the pixel bus between
    /// consecutively transmitted pixels, summed over all frames.
    pub bus_transitions: u64,
    /// Sum over frames of the absolute change in backlight factor relative
    /// to the previous frame.
    pub backlight_travel: f64,
    /// Largest single-frame backlight change seen.
    pub max_backlight_step: f64,
}

/// Frame-buffer plus LCD-controller model.
#[derive(Debug, Clone)]
pub struct LcdController {
    width: u32,
    height: u32,
    frame_buffer: Option<GrayImage>,
    lut: LookupTable,
    backlight: f64,
    stats: ControllerStats,
}

impl LcdController {
    /// Creates a controller for a panel of the given resolution, initialized
    /// with an identity lookup table and full backlight.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if either dimension is 0.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(DisplayError::InvalidParameter {
                name: "resolution",
                value: 0.0,
            });
        }
        Ok(LcdController {
            width,
            height,
            frame_buffer: None,
            lut: LookupTable::identity(),
            backlight: 1.0,
            stats: ControllerStats::default(),
        })
    }

    /// Panel width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Panel height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Currently programmed backlight factor.
    pub fn backlight(&self) -> f64 {
        self.backlight
    }

    /// Currently programmed lookup table.
    pub fn lut(&self) -> &LookupTable {
        &self.lut
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Programs a new lookup table (reference-driver state) and backlight
    /// factor, to take effect from the next frame.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn program(&mut self, lut: LookupTable, beta: f64) -> Result<()> {
        if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        let step = (beta - self.backlight).abs();
        if self.stats.frames > 0 {
            self.stats.backlight_travel += step;
            self.stats.max_backlight_step = self.stats.max_backlight_step.max(step);
        }
        self.lut = lut;
        self.backlight = beta;
        Ok(())
    }

    /// Submits a frame: stores it in the frame buffer, refreshes the panel
    /// through the programmed lookup table, and returns the luminance image
    /// the panel emits (normalized against the full-backlight white point).
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if the frame's resolution
    /// does not match the panel.
    pub fn submit_frame(&mut self, frame: &GrayImage) -> Result<GrayImage> {
        if frame.width() != self.width || frame.height() != self.height {
            return Err(DisplayError::InvalidParameter {
                name: "frame_resolution",
                value: f64::from(frame.width()),
            });
        }
        // Bus activity: Hamming distance between consecutively transmitted
        // (transformed) pixel values in scan order.
        let transformed = self.lut.apply(frame);
        let mut transitions = 0u64;
        let mut previous = 0u8;
        for value in transformed.pixels() {
            transitions += u64::from((value ^ previous).count_ones());
            previous = value;
        }
        self.stats.bus_transitions += transitions;
        self.stats.frames += 1;
        self.frame_buffer = Some(frame.clone());

        // Emitted luminance: β · t(transformed level).
        let beta = self.backlight;
        Ok(transformed.map(|v| (f64::from(v) * beta).round().clamp(0.0, 255.0) as u8))
    }

    /// The frame currently held in the frame buffer, if any.
    pub fn frame_buffer(&self) -> Option<&GrayImage> {
        self.frame_buffer.as_ref()
    }

    /// Mean bus transitions per pixel over all submitted frames.
    pub fn mean_bus_transitions_per_pixel(&self) -> f64 {
        if self.stats.frames == 0 {
            return 0.0;
        }
        let pixels = self.stats.frames * u64::from(self.width) * u64::from(self.height);
        self.stats.bus_transitions as f64 / pixels as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    #[test]
    fn controller_requires_nonzero_resolution() {
        assert!(LcdController::new(0, 10).is_err());
        assert!(LcdController::new(10, 0).is_err());
        assert!(LcdController::new(10, 10).is_ok());
    }

    #[test]
    fn identity_programming_displays_frame_unchanged_at_full_backlight() {
        let mut controller = LcdController::new(32, 32).unwrap();
        let frame = synthetic::portrait(32, 32, 1);
        let shown = controller.submit_frame(&frame).unwrap();
        assert_eq!(shown, frame);
        assert_eq!(controller.frame_buffer(), Some(&frame));
        assert_eq!(controller.stats().frames, 1);
    }

    #[test]
    fn programming_changes_output() {
        let mut controller = LcdController::new(8, 8).unwrap();
        let frame = GrayImage::filled(8, 8, 100);
        controller
            .program(LookupTable::from_fn(|v| v.saturating_add(50)), 0.5)
            .unwrap();
        let shown = controller.submit_frame(&frame).unwrap();
        // (100 + 50) · 0.5 = 75.
        assert_eq!(shown.get(0, 0), Some(75));
        assert_eq!(controller.backlight(), 0.5);
    }

    #[test]
    fn frame_resolution_mismatch_rejected() {
        let mut controller = LcdController::new(8, 8).unwrap();
        let frame = GrayImage::filled(9, 8, 0);
        assert!(controller.submit_frame(&frame).is_err());
    }

    #[test]
    fn invalid_backlight_rejected() {
        let mut controller = LcdController::new(8, 8).unwrap();
        assert!(controller.program(LookupTable::identity(), 1.2).is_err());
        assert!(controller
            .program(LookupTable::identity(), f64::NAN)
            .is_err());
    }

    #[test]
    fn bus_transitions_depend_on_content() {
        let mut flat = LcdController::new(16, 16).unwrap();
        flat.submit_frame(&GrayImage::filled(16, 16, 128)).unwrap();
        let mut busy = LcdController::new(16, 16).unwrap();
        busy.submit_frame(&synthetic::checkerboard(16, 16, 1, 0, 255))
            .unwrap();
        assert!(busy.stats().bus_transitions > flat.stats().bus_transitions);
        assert!(busy.mean_bus_transitions_per_pixel() > 1.0);
    }

    #[test]
    fn backlight_travel_accumulates_after_first_frame() {
        let mut controller = LcdController::new(8, 8).unwrap();
        let frame = GrayImage::filled(8, 8, 100);
        // Programming before the first frame does not count as flicker.
        controller.program(LookupTable::identity(), 0.8).unwrap();
        controller.submit_frame(&frame).unwrap();
        controller.program(LookupTable::identity(), 0.6).unwrap();
        controller.submit_frame(&frame).unwrap();
        controller.program(LookupTable::identity(), 0.9).unwrap();
        controller.submit_frame(&frame).unwrap();
        let stats = controller.stats();
        assert!((stats.backlight_travel - (0.2 + 0.3)).abs() < 1e-9);
        assert!((stats.max_backlight_step - 0.3).abs() < 1e-9);
    }
}
