//! The precomposed per-level display response.
//!
//! Everything between a source pixel and the luminance the panel emits is a
//! deterministic per-level function: the programmed driver LUT (which
//! already contains the `1/β` contrast spreading of Eq. 10 and the DAC
//! quantization), the linear grayscale → transmittance mapping and the
//! backlight factor. [`DisplayResponse`] precomposes that chain into one
//! 256-entry table, so
//!
//! * "what does the panel show for source level `p`?" is a single lookup,
//! * applying a fitted transformation to a frame is one fused LUT pass (no
//!   intermediate drive image), and
//! * every *global* distortion and power statistic becomes computable from
//!   the source histogram alone — the basis of the histogram-domain
//!   evaluation engine in `hebs-core`.

use hebs_imaging::GrayImage;
use hebs_transform::LookupTable;

use crate::error::{DisplayError, Result};
use crate::panel::TftPanelModel;

/// A precomposed `source level → displayed level` table for one programmed
/// LUT, panel model and backlight factor.
///
/// The entries are exactly what [`TftPanelModel::displayed_image`] would
/// produce for each drive level, so applying the response to a frame is
/// bit-identical to the two-stage path (LUT apply, then displayed-image
/// simulation) while touching every pixel only once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplayResponse {
    levels: [u8; 256],
}

impl DisplayResponse {
    /// Composes driver LUT ∘ transmittance ∘ backlight into one table.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn compose(lut: &LookupTable, panel: &TftPanelModel, beta: f64) -> Result<Self> {
        if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        let mut levels = [0u8; 256];
        for (source, slot) in levels.iter_mut().enumerate() {
            *slot = panel.displayed_level(lut.map(source as u8), beta);
        }
        Ok(DisplayResponse { levels })
    }

    /// The displayed level for one source level.
    pub fn map(&self, level: u8) -> u8 {
        self.levels[level as usize]
    }

    /// Borrow of the raw 256-entry `source → displayed` table, the level
    /// map consumed by histogram-domain distortion measures.
    pub fn levels(&self) -> &[u8; 256] {
        &self.levels
    }

    /// Applies the fused response to a frame, producing the displayed
    /// luminance image in one pass.
    pub fn apply(&self, image: &GrayImage) -> GrayImage {
        hebs_imaging::apply_lut(image, &self.levels)
    }

    /// Applies the fused response into a caller-provided scratch image,
    /// reshaping it to the source dimensions. Performs no allocation once
    /// the scratch has grown to the frame size. Strip-vectorized via
    /// [`hebs_imaging::apply_lut_into`].
    pub fn apply_into(&self, image: &GrayImage, out: &mut GrayImage) {
        hebs_imaging::apply_lut_into(image, &self.levels, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composed_response_matches_the_two_stage_path() {
        let panel = TftPanelModel::lp064v1();
        let lut = LookupTable::from_fn(|v| v.saturating_add(40));
        for beta in [1.0, 0.73, 0.5, 0.12] {
            let response = DisplayResponse::compose(&lut, &panel, beta).unwrap();
            let img = GrayImage::from_fn(16, 16, |x, y| (x * 16 + y) as u8);
            let two_stage = panel.displayed_image(&lut.apply(&img), beta).unwrap();
            assert_eq!(response.apply(&img), two_stage, "beta {beta}");
        }
    }

    #[test]
    fn apply_into_reuses_the_scratch() {
        let panel = TftPanelModel::lp064v1();
        let response = DisplayResponse::compose(&LookupTable::identity(), &panel, 0.5).unwrap();
        let img = GrayImage::from_fn(8, 4, |x, _| (x * 30) as u8);
        let mut scratch = GrayImage::filled(1, 1, 0);
        response.apply_into(&img, &mut scratch);
        assert_eq!(scratch, response.apply(&img));
        // A second apply of the same shape must not grow the buffer.
        let other = GrayImage::filled(8, 4, 200);
        response.apply_into(&other, &mut scratch);
        assert_eq!(scratch.get(0, 0), Some(100));
    }

    #[test]
    fn invalid_beta_is_rejected() {
        let panel = TftPanelModel::lp064v1();
        let lut = LookupTable::identity();
        assert!(DisplayResponse::compose(&lut, &panel, 1.5).is_err());
        assert!(DisplayResponse::compose(&lut, &panel, -0.1).is_err());
        assert!(DisplayResponse::compose(&lut, &panel, f64::NAN).is_err());
    }

    #[test]
    fn identity_at_full_backlight_is_identity() {
        let panel = TftPanelModel::lp064v1();
        let response = DisplayResponse::compose(&LookupTable::identity(), &panel, 1.0).unwrap();
        for level in [0u8, 1, 127, 254, 255] {
            assert_eq!(response.map(level), level);
        }
        assert_eq!(response.levels()[200], 200);
    }
}
