//! Cold Cathode Fluorescent Lamp (CCFL) backlight power model.
//!
//! Section 5.1a of the paper models the CCFL driver power as a two-piece
//! linear function of the (normalized) backlight factor `β`:
//!
//! ```text
//! P(β) = A_lin · β + C_lin      0 ≤ β ≤ C_s      (linear region)
//! P(β) = A_sat · β + C_sat      C_s ≤ β ≤ 1      (saturation region)
//! ```
//!
//! Above the saturation knee `C_s` the lamp's luminous efficacy drops (the
//! tube heats up), so squeezing out the last 20 % of brightness costs
//! disproportionately much power — which is exactly why backlight dimming is
//! so effective. The default coefficients are the LG Philips LP064V1 values
//! fitted in the paper.

use crate::error::{DisplayError, Result};

/// Two-piece-linear CCFL power model (Eq. 11 of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CcflModel {
    /// Slope of the linear region.
    pub a_lin: f64,
    /// Intercept of the linear region.
    pub c_lin: f64,
    /// Slope of the saturation region.
    pub a_sat: f64,
    /// Intercept of the saturation region.
    pub c_sat: f64,
    /// Backlight factor at which saturation begins (`C_s`).
    pub saturation_knee: f64,
}

impl Default for CcflModel {
    fn default() -> Self {
        Self::lp064v1()
    }
}

impl CcflModel {
    /// The LG Philips LP064V1 coefficients reported in the paper:
    /// `C_s = 0.8234`, `A_lin = 1.9600`, `C_lin = −0.2372`,
    /// `A_sat = 6.9440`, `C_sat = −4.3240`.
    ///
    /// (The paper lists the magnitudes; the saturated-region intercept must
    /// be negative for the two pieces to meet at the knee.)
    pub fn lp064v1() -> Self {
        CcflModel {
            a_lin: 1.9600,
            c_lin: -0.2372,
            a_sat: 6.9440,
            c_sat: -4.3240,
            saturation_knee: 0.8234,
        }
    }

    /// Creates a custom model.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if the knee is outside
    /// `(0, 1]`, a slope is non-positive, or any coefficient is not finite.
    pub fn new(
        a_lin: f64,
        c_lin: f64,
        a_sat: f64,
        c_sat: f64,
        saturation_knee: f64,
    ) -> Result<Self> {
        for (name, value) in [
            ("a_lin", a_lin),
            ("c_lin", c_lin),
            ("a_sat", a_sat),
            ("c_sat", c_sat),
            ("saturation_knee", saturation_knee),
        ] {
            if !value.is_finite() {
                return Err(DisplayError::InvalidParameter { name, value });
            }
        }
        if a_lin <= 0.0 {
            return Err(DisplayError::InvalidParameter {
                name: "a_lin",
                value: a_lin,
            });
        }
        if a_sat <= 0.0 {
            return Err(DisplayError::InvalidParameter {
                name: "a_sat",
                value: a_sat,
            });
        }
        if !(0.0 < saturation_knee && saturation_knee <= 1.0) {
            return Err(DisplayError::InvalidParameter {
                name: "saturation_knee",
                value: saturation_knee,
            });
        }
        Ok(CcflModel {
            a_lin,
            c_lin,
            a_sat,
            c_sat,
            saturation_knee,
        })
    }

    /// Driver power (in the paper's normalized watt units) needed to produce
    /// backlight factor `beta`.
    ///
    /// Power is clamped to be non-negative (the fitted linear region has a
    /// slightly negative intercept which would otherwise produce a small
    /// negative power near `β = 0`).
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn power(&self, beta: f64) -> Result<f64> {
        if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        let power = if beta <= self.saturation_knee {
            self.a_lin * beta + self.c_lin
        } else {
            self.a_sat * beta + self.c_sat
        };
        Ok(power.max(0.0))
    }

    /// Power at full backlight (`β = 1`), the denominator of every
    /// power-saving percentage.
    pub fn full_power(&self) -> f64 {
        self.power(1.0).expect("beta = 1 is always valid")
    }

    /// Fractional power saving of running at `beta` instead of full
    /// backlight: `1 − P(β)/P(1)`.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn power_saving(&self, beta: f64) -> Result<f64> {
        Ok(1.0 - self.power(beta)? / self.full_power())
    }

    /// The largest backlight factor whose driver power does not exceed
    /// `budget` (normalized watts). Useful for power-capped operating modes.
    pub fn max_backlight_for_power(&self, budget: f64) -> f64 {
        if budget <= 0.0 {
            return 0.0;
        }
        // Invert the saturated segment first (it covers the high end).
        let beta_sat = (budget - self.c_sat) / self.a_sat;
        if beta_sat >= self.saturation_knee {
            return beta_sat.min(1.0);
        }
        let beta_lin = (budget - self.c_lin) / self.a_lin;
        beta_lin.clamp(0.0, self.saturation_knee)
    }

    /// Samples the illuminance-versus-power curve of Figure 6a: returns
    /// `(β, P(β))` pairs for `samples` evenly spaced backlight factors over
    /// `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2` or the range is not inside `[0, 1]`.
    pub fn characteristic_curve(&self, lo: f64, hi: f64, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples >= 2, "need at least two samples");
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo < hi);
        (0..samples)
            .map(|i| {
                let beta = lo + (hi - lo) * i as f64 / (samples - 1) as f64;
                let power = self.power(beta).expect("beta in range by construction");
                (beta, power)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp064v1_matches_paper_coefficients() {
        let model = CcflModel::lp064v1();
        assert_eq!(model.a_lin, 1.96);
        assert_eq!(model.saturation_knee, 0.8234);
        // Full power: 6.944 · 1 − 4.324 = 2.62.
        assert!((model.full_power() - 2.62).abs() < 1e-9);
    }

    #[test]
    fn pieces_meet_near_the_knee() {
        let model = CcflModel::lp064v1();
        let knee = model.saturation_knee;
        let linear_side = model.a_lin * knee + model.c_lin;
        let sat_side = model.a_sat * knee + model.c_sat;
        // The paper's fitted coefficients are not exactly continuous, but the
        // mismatch at the knee is small (< 0.05 normalized watts).
        assert!((linear_side - sat_side).abs() < 0.05);
    }

    #[test]
    fn power_is_monotone_in_beta() {
        let model = CcflModel::lp064v1();
        let mut prev = -1.0;
        for i in 0..=100 {
            let beta = f64::from(i) / 100.0;
            let p = model.power(beta).unwrap();
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn saturation_region_is_steeper() {
        let model = CcflModel::lp064v1();
        let below = model.power(0.80).unwrap();
        let at = model.power(0.85).unwrap();
        let above = model.power(0.90).unwrap();
        let slope_low = (at - below) / 0.05;
        let slope_high = (above - at) / 0.05;
        assert!(slope_high > slope_low);
    }

    #[test]
    fn power_never_negative() {
        let model = CcflModel::lp064v1();
        assert_eq!(model.power(0.0).unwrap(), 0.0);
        assert!(model.power(0.05).unwrap() >= 0.0);
    }

    #[test]
    fn invalid_beta_rejected() {
        let model = CcflModel::lp064v1();
        assert!(model.power(-0.1).is_err());
        assert!(model.power(1.1).is_err());
        assert!(model.power(f64::NAN).is_err());
    }

    #[test]
    fn power_saving_at_half_backlight() {
        let model = CcflModel::lp064v1();
        // P(0.5) = 1.96·0.5 − 0.2372 = 0.7428; saving = 1 − 0.7428/2.62 ≈ 71.6 %.
        let saving = model.power_saving(0.5).unwrap();
        assert!((saving - 0.7165).abs() < 1e-3);
        assert_eq!(model.power_saving(1.0).unwrap(), 0.0);
    }

    #[test]
    fn max_backlight_for_power_inverts_power() {
        let model = CcflModel::lp064v1();
        for &beta in &[0.2, 0.5, 0.8234, 0.9, 1.0] {
            let p = model.power(beta).unwrap();
            let recovered = model.max_backlight_for_power(p);
            assert!(
                (recovered - beta).abs() < 1e-9,
                "beta {beta} recovered as {recovered}"
            );
        }
        assert_eq!(model.max_backlight_for_power(0.0), 0.0);
        assert_eq!(model.max_backlight_for_power(100.0), 1.0);
    }

    #[test]
    fn characteristic_curve_shape() {
        let model = CcflModel::lp064v1();
        let curve = model.characteristic_curve(0.4, 1.0, 13);
        assert_eq!(curve.len(), 13);
        assert!((curve[0].0 - 0.4).abs() < 1e-12);
        assert!((curve[12].0 - 1.0).abs() < 1e-12);
        // Monotone increasing power along the curve.
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
    }

    #[test]
    fn custom_model_validation() {
        assert!(CcflModel::new(1.0, 0.0, 2.0, -1.0, 0.8).is_ok());
        assert!(CcflModel::new(-1.0, 0.0, 2.0, -1.0, 0.8).is_err());
        assert!(CcflModel::new(1.0, 0.0, 0.0, -1.0, 0.8).is_err());
        assert!(CcflModel::new(1.0, 0.0, 2.0, -1.0, 0.0).is_err());
        assert!(CcflModel::new(1.0, 0.0, 2.0, -1.0, 1.5).is_err());
        assert!(CcflModel::new(1.0, f64::INFINITY, 2.0, -1.0, 0.8).is_err());
    }

    #[test]
    fn default_is_lp064v1() {
        assert_eq!(CcflModel::default(), CcflModel::lp064v1());
    }
}
