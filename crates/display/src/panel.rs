//! a-Si:H TFT-LCD panel model: transmittance and power.
//!
//! Section 5.1b of the paper measures the LP064V1 panel and fits its power
//! consumption as a quadratic function of the (normalized) pixel value:
//!
//! ```text
//! P_panel(x) = a·x² + b·x + c        x ∈ [0, 1]
//! ```
//!
//! with `a = 0.02449`, `b = 0.04984`, `c = 0.993` for the normally-white
//! LP064V1. The variation with transmittance is tiny compared with the CCFL
//! power — the paper notes it "can be ignored" — but the subsystem model
//! keeps it so the reproduction's totals have the same composition as the
//! paper's.
//!
//! The panel also defines the grayscale → transmittance mapping `t(X)`,
//! which the paper takes to be linear from `[0, 255]` to `[0, 1]`.

use crate::error::{DisplayError, Result};
use hebs_imaging::{GrayImage, Histogram};

/// Quadratic panel power model and linear transmittance mapping (Eq. 12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TftPanelModel {
    /// Quadratic coefficient of the power fit.
    pub a: f64,
    /// Linear coefficient of the power fit.
    pub b: f64,
    /// Constant coefficient of the power fit.
    pub c: f64,
}

impl Default for TftPanelModel {
    fn default() -> Self {
        Self::lp064v1()
    }
}

impl TftPanelModel {
    /// The LG Philips LP064V1 coefficients measured in the paper:
    /// `a = 0.02449`, `b = 0.04984`, `c = 0.993`.
    ///
    /// Note the paper's Figure 6b shows the normally-white panel's power
    /// *decreasing* slightly as transmittance increases; with the published
    /// regression coefficients the fitted curve is mildly increasing instead.
    /// The reproduction uses the published coefficients verbatim — the
    /// effect on totals is below one percent either way.
    pub fn lp064v1() -> Self {
        TftPanelModel {
            a: 0.02449,
            b: 0.04984,
            c: 0.993,
        }
    }

    /// Creates a custom quadratic model.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if any coefficient is not
    /// finite or the constant term is negative (panel power cannot be
    /// negative at zero transmittance).
    pub fn new(a: f64, b: f64, c: f64) -> Result<Self> {
        for (name, value) in [("a", a), ("b", b), ("c", c)] {
            if !value.is_finite() {
                return Err(DisplayError::InvalidParameter { name, value });
            }
        }
        if c < 0.0 {
            return Err(DisplayError::InvalidParameter {
                name: "c",
                value: c,
            });
        }
        Ok(TftPanelModel { a, b, c })
    }

    /// Linear transmittance of a pixel with 8-bit value `level`:
    /// `t(X) = X / 255 ∈ [0, 1]`.
    pub fn transmittance(&self, level: u8) -> f64 {
        f64::from(level) / 255.0
    }

    /// Panel power for a single pixel at normalized transmittance `x`.
    ///
    /// The input is clamped to `[0, 1]`.
    pub fn pixel_power(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        (self.a * x * x + self.b * x + self.c).max(0.0)
    }

    /// Mean panel power for displaying an image (average of the per-pixel
    /// power over all pixels).
    pub fn image_power(&self, image: &GrayImage) -> f64 {
        let n = image.pixel_count() as f64;
        if n == 0.0 {
            return self.c;
        }
        image
            .pixels()
            .map(|level| self.pixel_power(self.transmittance(level)))
            .sum::<f64>()
            / n
    }

    /// Mean panel power computed from a *source-level* histogram and the
    /// per-level drive map the driver applies: exactly [`Self::image_power`]
    /// of the drive image, but in O(levels) instead of O(pixels).
    ///
    /// An empty histogram reports the constant term, like an empty image.
    pub fn histogram_power(&self, histogram: &Histogram, drive_map: &[u8; 256]) -> f64 {
        let total = histogram.total();
        if total == 0 {
            return self.c;
        }
        let mut sum = 0.0;
        for (level, &count) in histogram.counts().iter().enumerate() {
            if count == 0 {
                continue;
            }
            sum += count as f64 * self.pixel_power(self.transmittance(drive_map[level]));
        }
        sum / total as f64
    }

    /// Samples the transmittance-versus-power curve of Figure 6b: `(t, P(t))`
    /// pairs for `samples` evenly spaced transmittance values over
    /// `[lo, hi] ⊆ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2` or the range is invalid.
    pub fn characteristic_curve(&self, lo: f64, hi: f64, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples >= 2, "need at least two samples");
        assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo < hi);
        (0..samples)
            .map(|i| {
                let t = lo + (hi - lo) * i as f64 / (samples - 1) as f64;
                (t, self.pixel_power(t))
            })
            .collect()
    }

    /// Luminance emitted by a pixel: `I(X) = β · t(X)` (Eq. 1a of the
    /// paper), for backlight factor `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn luminance(&self, level: u8, beta: f64) -> Result<f64> {
        if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        Ok(beta * self.transmittance(level))
    }

    /// The 8-bit level an observer records for one *drive* level at
    /// backlight factor `beta`, quantized against the full-backlight white
    /// point. `beta` is assumed already validated (see
    /// [`Self::displayed_image`] for the checked entry point).
    pub fn displayed_level(&self, level: u8, beta: f64) -> u8 {
        let luminance = beta * self.transmittance(level);
        (luminance * 255.0).round().clamp(0.0, 255.0) as u8
    }

    /// The displayed luminance image (normalized to `[0, 1]`) of `image`
    /// shown at backlight factor `beta`, quantized back to 8 bits against
    /// the *full-backlight* white point.
    ///
    /// This is what an external observer (or a camera) would record; the
    /// distortion pipeline uses it when comparing "what is shown" against
    /// the original.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn displayed_image(&self, image: &GrayImage, beta: f64) -> Result<GrayImage> {
        if !(beta.is_finite() && (0.0..=1.0).contains(&beta)) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        Ok(image.map(|level| self.displayed_level(level, beta)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp064v1_coefficients() {
        let panel = TftPanelModel::lp064v1();
        assert_eq!(panel.a, 0.02449);
        assert_eq!(panel.b, 0.04984);
        assert_eq!(panel.c, 0.993);
        assert_eq!(TftPanelModel::default(), panel);
    }

    #[test]
    fn transmittance_is_linear() {
        let panel = TftPanelModel::lp064v1();
        assert_eq!(panel.transmittance(0), 0.0);
        assert_eq!(panel.transmittance(255), 1.0);
        assert!((panel.transmittance(128) - 128.0 / 255.0).abs() < 1e-12);
    }

    #[test]
    fn pixel_power_matches_fit() {
        let panel = TftPanelModel::lp064v1();
        // P(1) = 0.02449 + 0.04984 + 0.993 = 1.06733.
        assert!((panel.pixel_power(1.0) - 1.06733).abs() < 1e-9);
        assert!((panel.pixel_power(0.0) - 0.993).abs() < 1e-12);
        // Inputs are clamped.
        assert_eq!(panel.pixel_power(2.0), panel.pixel_power(1.0));
        assert_eq!(panel.pixel_power(-1.0), panel.pixel_power(0.0));
    }

    #[test]
    fn panel_power_variation_is_small() {
        // The paper: panel power varies by only a few percent over the full
        // transmittance range — tiny compared to the CCFL.
        let panel = TftPanelModel::lp064v1();
        let ratio = panel.pixel_power(1.0) / panel.pixel_power(0.0);
        assert!(ratio < 1.10);
        assert!(ratio > 1.0);
    }

    #[test]
    fn image_power_of_uniform_images() {
        let panel = TftPanelModel::lp064v1();
        let black = GrayImage::filled(8, 8, 0);
        let white = GrayImage::filled(8, 8, 255);
        assert!((panel.image_power(&black) - 0.993).abs() < 1e-12);
        assert!((panel.image_power(&white) - 1.06733).abs() < 1e-9);
        let ramp = GrayImage::from_fn(256, 1, |x, _| x as u8);
        let p = panel.image_power(&ramp);
        assert!(p > 0.993 && p < 1.06733);
    }

    #[test]
    fn histogram_power_matches_image_power_of_the_drive_image() {
        let panel = TftPanelModel::lp064v1();
        let img = GrayImage::from_fn(32, 32, |x, y| ((x * 7 + y * 13) % 256) as u8);
        let mut drive_map = [0u8; 256];
        for (i, e) in drive_map.iter_mut().enumerate() {
            *e = ((i * 3) / 4) as u8;
        }
        let hist = Histogram::of(&img);
        let drive = img.map(|v| drive_map[v as usize]);
        let from_pixels = panel.image_power(&drive);
        let from_histogram = panel.histogram_power(&hist, &drive_map);
        assert!((from_pixels - from_histogram).abs() < 1e-9);
        // Empty histogram degenerates to the constant term.
        assert_eq!(panel.histogram_power(&Histogram::new(), &drive_map), 0.993);
    }

    #[test]
    fn luminance_follows_eq_1a() {
        let panel = TftPanelModel::lp064v1();
        assert_eq!(panel.luminance(255, 1.0).unwrap(), 1.0);
        assert_eq!(panel.luminance(255, 0.5).unwrap(), 0.5);
        assert_eq!(panel.luminance(0, 0.7).unwrap(), 0.0);
        assert!(panel.luminance(100, 1.5).is_err());
    }

    #[test]
    fn displayed_image_dims_with_backlight() {
        let panel = TftPanelModel::lp064v1();
        let img = GrayImage::from_fn(4, 1, |x, _| (x * 85) as u8);
        let full = panel.displayed_image(&img, 1.0).unwrap();
        assert_eq!(full, img);
        let half = panel.displayed_image(&img, 0.5).unwrap();
        assert_eq!(half.get(3, 0), Some(128));
        assert!(panel.displayed_image(&img, -0.1).is_err());
    }

    #[test]
    fn characteristic_curve_covers_figure_6b_range() {
        let panel = TftPanelModel::lp064v1();
        let curve = panel.characteristic_curve(0.1, 1.0, 10);
        assert_eq!(curve.len(), 10);
        assert!(curve.windows(2).all(|w| w[1].1 >= w[0].1));
        assert!(curve.iter().all(|&(_, p)| (0.9..=1.1).contains(&p)));
    }

    #[test]
    fn custom_model_validation() {
        assert!(TftPanelModel::new(0.1, 0.1, 1.0).is_ok());
        assert!(TftPanelModel::new(f64::NAN, 0.1, 1.0).is_err());
        assert!(TftPanelModel::new(0.1, 0.1, -1.0).is_err());
    }
}
