//! TFT-LCD display-subsystem substrate for the HEBS reproduction.
//!
//! The HEBS paper evaluates backlight-scaling policies on a transmissive
//! TFT-LCD (the LG Philips LP064V1) driven by a CCFL backlight. This crate
//! models every piece of that hardware that the algorithm touches:
//!
//! * [`CcflModel`] — the two-piece-linear power model of the Cold Cathode
//!   Fluorescent Lamp backlight (Eq. 11, Figure 6a).
//! * [`TftPanelModel`] — the quadratic a-Si:H TFT panel power model
//!   (Eq. 12, Figure 6b) and the linear grayscale → transmittance mapping.
//! * [`grayscale`] — the grayscale-voltage transfer function of the source
//!   drivers and the reference-voltage ladder maths behind it.
//! * [`plrd`] — register-level simulation of the Programmable LCD Reference
//!   Driver: the conventional clamp-switch circuit of the CBCS baseline
//!   (Figure 5a) and the hierarchical k-band circuit proposed by HEBS
//!   (Figure 5b), both of which compile a requested transfer curve into the
//!   quantized lookup table the hardware can actually realize.
//! * [`LcdSubsystem`] — whole-subsystem power accounting (backlight +
//!   panel + controller) and displayed-image simulation, the quantity every
//!   benchmark reports. Power is computable either from pixels or, in
//!   O(levels), from a source histogram plus the programmed drive map.
//! * [`DisplayResponse`] — the fused `driver LUT ∘ transmittance ∘
//!   backlight` per-level table: one lookup answers "what does the panel
//!   emit for source level p", one pass applies a fitted transformation to
//!   a frame, and the same table feeds the histogram-domain evaluation
//!   engine.
//! * [`controller`] — a small frame-buffer / refresh model used by the video
//!   examples.
//!
//! # Example
//!
//! ```
//! use hebs_display::{CcflModel, LcdSubsystem, TftPanelModel};
//! use hebs_imaging::GrayImage;
//!
//! let lcd = LcdSubsystem::lp064v1();
//! let image = GrayImage::from_fn(32, 32, |x, _| (x * 8) as u8);
//! let full = lcd.power(&image, 1.0)?;
//! let dimmed = lcd.power(&image, 0.5)?;
//! assert!(dimmed.total() < full.total());
//! # Ok::<(), hebs_display::DisplayError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ccfl;
pub mod controller;
mod error;
pub mod grayscale;
mod panel;
pub mod plrd;
mod response;
mod subsystem;

pub use ccfl::CcflModel;
pub use error::{DisplayError, Result};
pub use panel::TftPanelModel;
pub use response::DisplayResponse;
pub use subsystem::{LcdSubsystem, PowerBreakdown};
