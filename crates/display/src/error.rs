//! Error type for the display substrate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DisplayError>;

/// Error raised when a display model is constructed or driven with invalid
/// parameters.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DisplayError {
    /// The backlight factor must lie in `[0, 1]`.
    InvalidBacklightFactor {
        /// The offending value.
        beta: f64,
    },
    /// A model coefficient or configuration value was not finite or outside
    /// its admissible range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The reference-voltage driver cannot realize the requested curve.
    UnrealizableCurve {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for DisplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DisplayError::InvalidBacklightFactor { beta } => {
                write!(f, "backlight factor {beta} is outside of [0, 1]")
            }
            DisplayError::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter {name}")
            }
            DisplayError::UnrealizableCurve { reason } => {
                write!(f, "reference driver cannot realize curve: {reason}")
            }
        }
    }
}

impl std::error::Error for DisplayError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DisplayError::InvalidBacklightFactor { beta: 2.0 }
            .to_string()
            .contains('2'));
        assert!(DisplayError::InvalidParameter {
            name: "supply_voltage",
            value: -1.0
        }
        .to_string()
        .contains("supply_voltage"));
        assert!(DisplayError::UnrealizableCurve {
            reason: "too many segments".to_string()
        }
        .to_string()
        .contains("too many segments"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DisplayError>();
    }
}
