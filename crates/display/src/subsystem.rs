//! Whole LCD-subsystem power accounting.
//!
//! The power numbers the paper reports (Table 1, Figure 8) are savings of
//! the *display subsystem*: the CCFL backlight plus the TFT panel (the LCD
//! controller's own consumption is constant and small). The two fitted
//! models of Section 5.1 share the same normalized-watt unit, so the
//! subsystem total is simply their sum:
//!
//! ```text
//! P(F', β) = P_ccfl(β) + mean_pixels P_panel(t(Φ(x))) + P_controller
//! ```
//!
//! With the LP064V1 coefficients the CCFL draws ≈ 2.62 units at full
//! backlight and the panel ≈ 1.0 unit, which reproduces the paper's headline
//! numbers: dimming to β ≈ 0.39 (dynamic range 100) saves ≈ 55 % of the
//! subsystem total, and β ≈ 0.86 (range 220) saves ≈ 26 %.

use hebs_imaging::{GrayImage, Histogram};
use hebs_transform::LookupTable;

use crate::ccfl::CcflModel;
use crate::error::{DisplayError, Result};
use crate::panel::TftPanelModel;
use crate::response::DisplayResponse;

/// Per-component power figures for displaying one image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBreakdown {
    /// CCFL backlight driver power.
    pub ccfl: f64,
    /// TFT panel power (averaged over the pixels of the displayed image).
    pub panel: f64,
    /// Constant LCD controller / timing power.
    pub controller: f64,
    /// Backlight factor the figures were computed for.
    pub beta: f64,
}

impl PowerBreakdown {
    /// Total subsystem power.
    pub fn total(&self) -> f64 {
        self.ccfl + self.panel + self.controller
    }

    /// Fraction of the total drawn by the backlight.
    pub fn backlight_share(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            self.ccfl / self.total()
        }
    }
}

/// The display subsystem: backlight model + panel model + controller
/// overhead.
///
/// ```
/// use hebs_display::LcdSubsystem;
/// use hebs_imaging::GrayImage;
///
/// let lcd = LcdSubsystem::lp064v1();
/// let img = GrayImage::filled(16, 16, 180);
/// let saving = lcd.power_saving(&img, &img, 0.5)?;
/// assert!(saving > 0.3 && saving < 0.8);
/// # Ok::<(), hebs_display::DisplayError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LcdSubsystem {
    ccfl: CcflModel,
    panel: TftPanelModel,
    controller_power: f64,
}

impl Default for LcdSubsystem {
    fn default() -> Self {
        Self::lp064v1()
    }
}

impl LcdSubsystem {
    /// The LG Philips LP064V1 display used throughout the paper, with a
    /// small constant controller overhead.
    pub fn lp064v1() -> Self {
        LcdSubsystem {
            ccfl: CcflModel::lp064v1(),
            panel: TftPanelModel::lp064v1(),
            controller_power: 0.05,
        }
    }

    /// Builds a subsystem from custom component models.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if the controller power is
    /// negative or not finite.
    pub fn new(ccfl: CcflModel, panel: TftPanelModel, controller_power: f64) -> Result<Self> {
        if !controller_power.is_finite() || controller_power < 0.0 {
            return Err(DisplayError::InvalidParameter {
                name: "controller_power",
                value: controller_power,
            });
        }
        Ok(LcdSubsystem {
            ccfl,
            panel,
            controller_power,
        })
    }

    /// The backlight model.
    pub fn ccfl(&self) -> &CcflModel {
        &self.ccfl
    }

    /// The panel model.
    pub fn panel(&self) -> &TftPanelModel {
        &self.panel
    }

    /// Power breakdown for displaying `image` (already transformed, i.e. the
    /// pixel values the panel will be driven with) at backlight factor
    /// `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn power(&self, image: &GrayImage, beta: f64) -> Result<PowerBreakdown> {
        let ccfl = self.ccfl.power(beta)?;
        let panel = self.panel.image_power(image);
        Ok(PowerBreakdown {
            ccfl,
            panel,
            controller: self.controller_power,
            beta,
        })
    }

    /// Power saving (fraction in `[0, 1]`) of displaying `transformed` at
    /// `beta` instead of `original` at full backlight.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn power_saving(
        &self,
        original: &GrayImage,
        transformed: &GrayImage,
        beta: f64,
    ) -> Result<f64> {
        let baseline = self.power(original, 1.0)?.total();
        let scaled = self.power(transformed, beta)?.total();
        Ok((1.0 - scaled / baseline).max(0.0))
    }

    /// The luminance image an observer sees: `I(X) = β · t(X)` per pixel,
    /// quantized against the full-backlight white point.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn displayed_image(&self, image: &GrayImage, beta: f64) -> Result<GrayImage> {
        self.panel.displayed_image(image, beta)
    }

    /// Precomposes a programmed driver LUT with this subsystem's panel and
    /// backlight into a fused per-level [`DisplayResponse`].
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn response(&self, lut: &LookupTable, beta: f64) -> Result<DisplayResponse> {
        DisplayResponse::compose(lut, &self.panel, beta)
    }

    /// Power breakdown computed from a *source-level* histogram and the
    /// per-level drive map: exactly [`Self::power`] of the drive image, in
    /// O(levels) instead of O(pixels). Pass the identity map with
    /// `beta = 1.0` for the undimmed baseline.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidBacklightFactor`] unless
    /// `beta ∈ [0, 1]`.
    pub fn power_from_histogram(
        &self,
        histogram: &Histogram,
        drive_map: &[u8; 256],
        beta: f64,
    ) -> Result<PowerBreakdown> {
        let ccfl = self.ccfl.power(beta)?;
        let panel = self.panel.histogram_power(histogram, drive_map);
        Ok(PowerBreakdown {
            ccfl,
            panel,
            controller: self.controller_power,
            beta,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_imaging::synthetic;

    #[test]
    fn full_backlight_baseline_magnitude() {
        let lcd = LcdSubsystem::lp064v1();
        let img = synthetic::still_life(64, 64, 1);
        let breakdown = lcd.power(&img, 1.0).unwrap();
        // CCFL ≈ 2.62, panel ≈ 1.0, controller 0.05.
        assert!((breakdown.ccfl - 2.62).abs() < 1e-9);
        assert!(breakdown.panel > 0.99 && breakdown.panel < 1.07);
        assert!((breakdown.total() - 3.67).abs() < 0.06);
        assert!(breakdown.backlight_share() > 0.6);
    }

    #[test]
    fn dimming_saves_power_monotonically() {
        let lcd = LcdSubsystem::lp064v1();
        let img = synthetic::portrait(64, 64, 2);
        let mut prev_saving = -1.0;
        for beta in [1.0, 0.9, 0.8, 0.6, 0.4, 0.2] {
            let saving = lcd.power_saving(&img, &img, beta).unwrap();
            assert!(saving >= prev_saving, "saving not monotone at beta {beta}");
            prev_saving = saving;
        }
    }

    #[test]
    fn headline_savings_match_paper_magnitudes() {
        // The paper's Figure 8: dynamic range 220 (β ≈ 0.86) saves ≈ 26-30 %,
        // dynamic range 100 (β ≈ 0.39) saves ≈ 42-61 %.
        let lcd = LcdSubsystem::lp064v1();
        let img = synthetic::landscape(64, 64, 3);
        let saving_220 = lcd.power_saving(&img, &img, 220.0 / 255.0).unwrap();
        let saving_100 = lcd.power_saving(&img, &img, 100.0 / 255.0).unwrap();
        assert!(
            (0.20..=0.36).contains(&saving_220),
            "range-220 saving {saving_220}"
        );
        assert!(
            (0.40..=0.65).contains(&saving_100),
            "range-100 saving {saving_100}"
        );
    }

    #[test]
    fn power_saving_is_zero_at_full_backlight() {
        let lcd = LcdSubsystem::lp064v1();
        let img = synthetic::portrait(32, 32, 4);
        let saving = lcd.power_saving(&img, &img, 1.0).unwrap();
        assert!(saving.abs() < 1e-12);
    }

    #[test]
    fn brighter_transformed_image_costs_slightly_more_panel_power() {
        let lcd = LcdSubsystem::lp064v1();
        let dark = GrayImage::filled(16, 16, 20);
        let bright = GrayImage::filled(16, 16, 240);
        let p_dark = lcd.power(&dark, 0.5).unwrap();
        let p_bright = lcd.power(&bright, 0.5).unwrap();
        assert!(p_bright.panel > p_dark.panel);
        // But the difference is tiny relative to the CCFL term.
        assert!((p_bright.total() - p_dark.total()) / p_dark.total() < 0.05);
    }

    #[test]
    fn invalid_beta_is_rejected() {
        let lcd = LcdSubsystem::lp064v1();
        let img = GrayImage::filled(4, 4, 0);
        assert!(lcd.power(&img, 1.0001).is_err());
        assert!(lcd.power_saving(&img, &img, -0.1).is_err());
    }

    #[test]
    fn displayed_image_uses_panel_model() {
        let lcd = LcdSubsystem::lp064v1();
        let img = GrayImage::filled(4, 4, 200);
        let shown = lcd.displayed_image(&img, 0.5).unwrap();
        assert_eq!(shown.get(0, 0), Some(100));
    }

    #[test]
    fn histogram_power_matches_pixel_power_of_the_drive_image() {
        let lcd = LcdSubsystem::lp064v1();
        let img = synthetic::portrait(48, 48, 6);
        let lut = LookupTable::from_fn(|v| v / 2 + 30);
        let drive = lut.apply(&img);
        let hist = Histogram::of(&img);
        for beta in [1.0, 0.6, 0.3] {
            let from_pixels = lcd.power(&drive, beta).unwrap();
            let from_hist = lcd
                .power_from_histogram(&hist, lut.entries(), beta)
                .unwrap();
            assert!((from_pixels.total() - from_hist.total()).abs() < 1e-9);
            assert_eq!(from_pixels.ccfl, from_hist.ccfl);
            assert_eq!(from_pixels.beta, from_hist.beta);
        }
        assert!(lcd.power_from_histogram(&hist, lut.entries(), 1.2).is_err());
    }

    #[test]
    fn subsystem_response_matches_displayed_image() {
        let lcd = LcdSubsystem::lp064v1();
        let lut = LookupTable::from_fn(|v| v.saturating_add(15));
        let img = synthetic::landscape(24, 24, 7);
        let response = lcd.response(&lut, 0.7).unwrap();
        let expected = lcd.displayed_image(&lut.apply(&img), 0.7).unwrap();
        assert_eq!(response.apply(&img), expected);
    }

    #[test]
    fn custom_subsystem_validation() {
        let ccfl = CcflModel::lp064v1();
        let panel = TftPanelModel::lp064v1();
        assert!(LcdSubsystem::new(ccfl, panel, 0.1).is_ok());
        assert!(LcdSubsystem::new(ccfl, panel, -0.1).is_err());
        assert!(LcdSubsystem::new(ccfl, panel, f64::NAN).is_err());
    }
}
