//! Programmable LCD Reference Driver (PLRD) simulation.
//!
//! The backlight-scaling hardware of both the CBCS baseline and HEBS lives
//! in the reference-voltage divider that feeds the source drivers
//! (Figure 5 of the paper):
//!
//! * The **conventional** circuit (Figure 5a) is a plain resistor ladder
//!   with controllable clamp switches added at both ends. It can clamp the
//!   low and high grayscale regions to the rails and steepen the single
//!   linear region in between — i.e. it can only realize the *single-band
//!   grayscale spreading* transfer function with one slope.
//! * The **hierarchical** circuit proposed by HEBS (Figure 5b) replaces the
//!   ladder with `k` controllable voltage sources plus switches between
//!   grayscale groups, so the grayscale-voltage curve can have up to `k`
//!   linear regions with different slopes, including flat bands in the
//!   middle of the range.
//!
//! Both simulators accept the transfer curve the algorithm wants, check that
//! the hardware can realize it, apply the finite DAC resolution of the
//! voltage sources, and hand back the quantized 256-entry lookup table that
//! the panel will actually apply — which is what the power/distortion
//! evaluation must use if the reproduction is to account for hardware
//! quantization error the way the real system would.

use hebs_transform::{LookupTable, PiecewiseLinear, PixelTransform, SingleBandSpreading};

use crate::error::{DisplayError, Result};
use crate::grayscale::ReferenceLadder;

/// Result of programming a reference driver: the realized hardware state and
/// the effective pixel mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgrammedDriver {
    /// Normalized reference voltages actually latched into the driver
    /// (after DAC quantization), from the darkest to the brightest tap.
    pub reference_voltages: Vec<f64>,
    /// The effective level-to-level mapping the panel applies.
    pub lut: LookupTable,
    /// Root-mean-square deviation (in normalized output units) between the
    /// requested curve and what the hardware realizes.
    pub realization_error: f64,
}

/// The conventional 10-tap reference driver with end clamp switches
/// (Figure 5a) — the hardware assumed by the CBCS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConventionalPlrd {
    tap_count: usize,
    dac_bits: u8,
}

impl Default for ConventionalPlrd {
    fn default() -> Self {
        // The paper cites an Analog Devices reference driver with a 10-way
        // divider; 8-bit DACs are typical for the programmable variant.
        ConventionalPlrd {
            tap_count: 10,
            dac_bits: 8,
        }
    }
}

impl ConventionalPlrd {
    /// Creates a driver with a custom number of ladder taps and DAC
    /// resolution.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if `tap_count < 2` or
    /// `dac_bits` is 0 or above 16.
    pub fn new(tap_count: usize, dac_bits: u8) -> Result<Self> {
        if tap_count < 2 {
            return Err(DisplayError::InvalidParameter {
                name: "tap_count",
                value: tap_count as f64,
            });
        }
        if dac_bits == 0 || dac_bits > 16 {
            return Err(DisplayError::InvalidParameter {
                name: "dac_bits",
                value: f64::from(dac_bits),
            });
        }
        Ok(ConventionalPlrd {
            tap_count,
            dac_bits,
        })
    }

    /// Number of ladder taps.
    pub fn tap_count(&self) -> usize {
        self.tap_count
    }

    /// Programs the clamp switches to realize a single-band spreading
    /// function: inputs at or below `spreading.lower()` clamp to 0, inputs
    /// at or above `spreading.upper()` clamp to full scale, and the band in
    /// between is spread linearly.
    ///
    /// # Errors
    ///
    /// This driver can realize any single-band curve, so the only errors are
    /// parameter errors propagated from the ladder construction.
    pub fn program(&self, spreading: &SingleBandSpreading) -> Result<ProgrammedDriver> {
        let requested = |x: f64| spreading.evaluate(x);
        let taps: Vec<f64> = (0..self.tap_count)
            .map(|i| {
                let x = i as f64 / (self.tap_count - 1) as f64;
                quantize(requested(x), self.dac_bits)
            })
            .collect();
        let ladder = ReferenceLadder::from_taps(taps)?;
        let realization_error = ladder.rms_error_against(requested);
        Ok(ProgrammedDriver {
            reference_voltages: ladder.taps().to_vec(),
            lut: LookupTable::from_entries(ladder.to_lut()),
            realization_error,
        })
    }
}

/// The hierarchical k-source reference driver proposed by HEBS (Figure 5b).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchicalPlrd {
    source_count: usize,
    dac_bits: u8,
}

impl Default for HierarchicalPlrd {
    fn default() -> Self {
        // The paper's example uses a small number of controllable sources;
        // 8 sources with 8-bit DACs is a representative configuration.
        HierarchicalPlrd {
            source_count: 8,
            dac_bits: 8,
        }
    }
}

impl HierarchicalPlrd {
    /// Creates a driver with `source_count` controllable voltage sources and
    /// the given DAC resolution.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if `source_count < 2` or
    /// `dac_bits` is 0 or above 16.
    pub fn new(source_count: usize, dac_bits: u8) -> Result<Self> {
        if source_count < 2 {
            return Err(DisplayError::InvalidParameter {
                name: "source_count",
                value: source_count as f64,
            });
        }
        if dac_bits == 0 || dac_bits > 16 {
            return Err(DisplayError::InvalidParameter {
                name: "dac_bits",
                value: f64::from(dac_bits),
            });
        }
        Ok(HierarchicalPlrd {
            source_count,
            dac_bits,
        })
    }

    /// Number of controllable voltage sources `k`.
    pub fn source_count(&self) -> usize {
        self.source_count
    }

    /// Maximum number of linear segments the driver can realize
    /// (`source_count − 1`).
    pub fn max_segments(&self) -> usize {
        self.source_count - 1
    }

    /// Programs the voltage sources to realize a coarsened transfer curve
    /// `Λ`, applying the backlight compensation of Eq. 10:
    /// `V_i = V_dd · Y_{q_i} / β`.
    ///
    /// The curve's breakpoints become the source tap positions; outputs that
    /// would exceed the supply rail after the `1/β` spreading are clamped to
    /// `V_dd` (they saturate to full white), exactly as in the real circuit.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::UnrealizableCurve`] when the curve has more
    /// segments than the driver has sources to realize, and
    /// [`DisplayError::InvalidBacklightFactor`] for `beta` outside `(0, 1]`.
    pub fn program(&self, curve: &PiecewiseLinear, beta: f64) -> Result<ProgrammedDriver> {
        if !(beta.is_finite() && beta > 0.0 && beta <= 1.0) {
            return Err(DisplayError::InvalidBacklightFactor { beta });
        }
        if curve.segment_count() > self.max_segments() {
            return Err(DisplayError::UnrealizableCurve {
                reason: format!(
                    "curve has {} segments but the driver supports at most {}",
                    curve.segment_count(),
                    self.max_segments()
                ),
            });
        }
        // Eq. 10: spread the curve's outputs by 1/β so the dimmer backlight
        // is compensated by higher transmittance, then quantize to the DAC.
        let voltages: Vec<f64> = curve
            .points()
            .iter()
            .map(|p| quantize((p.y / beta).min(1.0), self.dac_bits))
            .collect();
        let requested = |x: f64| (curve.evaluate(x) / beta).min(1.0);
        // Build the effective LUT by interpolating between breakpoints at
        // the curve's own abscissas (the switches route each grayscale group
        // to its source).
        let points = curve.points();
        let lut = LookupTable::from_normalized(|x| {
            // Find surrounding breakpoints.
            let mut lo = 0;
            let mut hi = points.len() - 1;
            if x <= points[0].x {
                return voltages[0];
            }
            if x >= points[hi].x {
                return voltages[hi];
            }
            while hi - lo > 1 {
                let mid = (lo + hi) / 2;
                if points[mid].x <= x {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let t = (x - points[lo].x) / (points[hi].x - points[lo].x);
            voltages[lo] + t * (voltages[hi] - voltages[lo])
        });
        // Measure realization error against the ideal (unquantized) request.
        let mut sum = 0.0;
        for level in 0..=255u16 {
            let x = f64::from(level) / 255.0;
            let realized = f64::from(lut.map(level as u8)) / 255.0;
            let d = realized - requested(x);
            sum += d * d;
        }
        let realization_error = (sum / 256.0).sqrt();
        Ok(ProgrammedDriver {
            reference_voltages: voltages,
            lut,
            realization_error,
        })
    }
}

/// Quantizes a normalized voltage to the resolution of a `bits`-bit DAC.
fn quantize(value: f64, bits: u8) -> f64 {
    let steps = f64::from((1u32 << bits) - 1);
    (value.clamp(0.0, 1.0) * steps).round() / steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_transform::{coarsen, ControlPoint};

    #[test]
    fn conventional_driver_realizes_single_band() {
        let driver = ConventionalPlrd::default();
        let spread = SingleBandSpreading::new(0.2, 0.8, 0.6).unwrap();
        let programmed = driver.program(&spread).unwrap();
        assert!(programmed.lut.is_monotone());
        // Below the band: black. Above: white. Middle: roughly half.
        assert_eq!(programmed.lut.map(0), 0);
        assert_eq!(programmed.lut.map(255), 255);
        let mid = programmed.lut.map(128);
        assert!((120..=136).contains(&mid), "mid level {mid}");
        assert!(programmed.realization_error < 0.05);
    }

    #[test]
    fn conventional_driver_parameter_validation() {
        assert!(ConventionalPlrd::new(1, 8).is_err());
        assert!(ConventionalPlrd::new(10, 0).is_err());
        assert!(ConventionalPlrd::new(10, 17).is_err());
        assert!(ConventionalPlrd::new(12, 10).is_ok());
    }

    #[test]
    fn hierarchical_driver_rejects_too_many_segments() {
        let driver = HierarchicalPlrd::new(4, 8).unwrap();
        assert_eq!(driver.max_segments(), 3);
        let curve = PiecewiseLinear::from_samples(16, |x| x);
        assert!(matches!(
            driver.program(&curve, 0.8),
            Err(DisplayError::UnrealizableCurve { .. })
        ));
    }

    #[test]
    fn hierarchical_driver_rejects_bad_beta() {
        let driver = HierarchicalPlrd::default();
        let curve = PiecewiseLinear::identity();
        assert!(driver.program(&curve, 0.0).is_err());
        assert!(driver.program(&curve, 1.5).is_err());
    }

    #[test]
    fn identity_curve_with_full_backlight_is_identity_lut() {
        let driver = HierarchicalPlrd::default();
        let programmed = driver.program(&PiecewiseLinear::identity(), 1.0).unwrap();
        for level in [0u8, 50, 128, 200, 255] {
            let out = programmed.lut.map(level);
            assert!((i16::from(out) - i16::from(level)).abs() <= 1);
        }
        assert!(programmed.realization_error < 0.01);
    }

    #[test]
    fn eq_10_spreads_outputs_by_one_over_beta() {
        // A curve that compresses the image into [0, 0.5], displayed with
        // β = 0.5: the driver should spread it back to the full range.
        let driver = HierarchicalPlrd::default();
        let curve = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.0),
            ControlPoint::new(1.0, 0.5),
        ])
        .unwrap();
        let programmed = driver.program(&curve, 0.5).unwrap();
        assert_eq!(programmed.lut.map(0), 0);
        assert_eq!(programmed.lut.map(255), 255);
        let mid = programmed.lut.map(128);
        assert!((125..=131).contains(&mid));
        // Reference voltages follow Eq. 10.
        assert!((programmed.reference_voltages[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn outputs_clamp_at_the_supply_rail() {
        // y/β would exceed 1 for the top of this curve; it must clamp.
        let driver = HierarchicalPlrd::default();
        let curve = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.0),
            ControlPoint::new(1.0, 0.9),
        ])
        .unwrap();
        let programmed = driver.program(&curve, 0.5).unwrap();
        assert_eq!(programmed.lut.map(255), 255);
        assert!(programmed
            .reference_voltages
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn coarsened_ghe_curve_round_trips_through_the_driver() {
        // End-to-end: build a curved transfer function, coarsen it to the
        // driver's segment budget, program, and check fidelity.
        let exact = PiecewiseLinear::from_samples(256, |x| x.powf(0.6));
        let driver = HierarchicalPlrd::new(8, 10).unwrap();
        let coarse = coarsen(&exact, driver.max_segments()).unwrap();
        let programmed = driver.program(&coarse.curve, 1.0).unwrap();
        assert!(programmed.lut.is_monotone());
        assert!(
            programmed.realization_error < 0.02,
            "error {}",
            programmed.realization_error
        );
    }

    #[test]
    fn dac_resolution_limits_fidelity() {
        let curve = PiecewiseLinear::from_samples(5, |x| x.powf(0.7));
        let coarse_dac = HierarchicalPlrd::new(8, 3).unwrap();
        let fine_dac = HierarchicalPlrd::new(8, 12).unwrap();
        let low = coarse_dac.program(&curve, 1.0).unwrap();
        let high = fine_dac.program(&curve, 1.0).unwrap();
        assert!(high.realization_error <= low.realization_error + 1e-12);
    }

    #[test]
    fn quantize_respects_bit_depth() {
        assert_eq!(quantize(0.5, 1), 1.0); // 1-bit DAC rounds 0.5 up.
        assert!((quantize(0.5, 8) - 0.5).abs() < 1.0 / 255.0);
        assert_eq!(quantize(-0.5, 8), 0.0);
        assert_eq!(quantize(1.5, 8), 1.0);
    }
}
