//! The grayscale-voltage transfer function of the LCD source drivers.
//!
//! The source drivers convert each pixel value into an analog *grayscale
//! voltage* which sets the liquid-crystal cell's transmittance (Section 2 of
//! the paper). The drivers can only output voltages obtained by mixing a
//! small set of *reference voltages* provided by a resistor ladder (voltage
//! divider); between two adjacent reference taps the output is linear in the
//! pixel value. The backlight-scaling hardware of both CBCS and HEBS works
//! by reprogramming those reference voltages, which is why every realizable
//! pixel transformation is piecewise linear with as many segments as there
//! are reference taps.

use crate::error::{DisplayError, Result};

/// A bank of reference voltages (the output of the voltage-divider ladder),
/// normalized to the supply voltage `V_dd = 1.0`.
///
/// Tap `i` of `k` taps corresponds to the input pixel value
/// `x_i = i / (k − 1)`; the grayscale voltage for intermediate pixel values
/// is obtained by linear interpolation between adjacent taps — exactly what
/// the resistor string inside the source driver does.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceLadder {
    taps: Vec<f64>,
}

impl ReferenceLadder {
    /// The default ladder: `tap_count` evenly spaced voltages from 0 to 1,
    /// which realizes the identity grayscale-voltage function (slope 1).
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::InvalidParameter`] if `tap_count < 2`.
    pub fn uniform(tap_count: usize) -> Result<Self> {
        if tap_count < 2 {
            return Err(DisplayError::InvalidParameter {
                name: "tap_count",
                value: tap_count as f64,
            });
        }
        let taps = (0..tap_count)
            .map(|i| i as f64 / (tap_count - 1) as f64)
            .collect();
        Ok(ReferenceLadder { taps })
    }

    /// Creates a ladder from explicit normalized tap voltages.
    ///
    /// # Errors
    ///
    /// Returns [`DisplayError::UnrealizableCurve`] if fewer than two taps are
    /// given, a tap is outside `[0, 1]`, or the taps are not non-decreasing
    /// (a resistor string cannot produce a decreasing voltage profile).
    pub fn from_taps(taps: Vec<f64>) -> Result<Self> {
        if taps.len() < 2 {
            return Err(DisplayError::UnrealizableCurve {
                reason: format!("need at least 2 reference taps, got {}", taps.len()),
            });
        }
        for (i, &v) in taps.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(DisplayError::UnrealizableCurve {
                    reason: format!("tap {i} voltage {v} outside of [0, V_dd]"),
                });
            }
            if i > 0 && v < taps[i - 1] {
                return Err(DisplayError::UnrealizableCurve {
                    reason: format!("tap {i} voltage {v} below tap {}", i - 1),
                });
            }
        }
        Ok(ReferenceLadder { taps })
    }

    /// Number of reference taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Borrow of the normalized tap voltages.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// The grayscale voltage (normalized to `V_dd`) produced for an input
    /// pixel value `level`, by interpolating between the two adjacent taps.
    pub fn grayscale_voltage(&self, level: u8) -> f64 {
        let k = self.taps.len();
        let x = f64::from(level) / 255.0;
        let position = x * (k - 1) as f64;
        let lower = position.floor() as usize;
        let upper = (lower + 1).min(k - 1);
        let t = position - lower as f64;
        self.taps[lower] + t * (self.taps[upper] - self.taps[lower])
    }

    /// Compiles the ladder into the effective 256-entry level mapping that
    /// the panel sees: input level → output level (`voltage / V_dd · 255`,
    /// rounded). This is the hardware-quantized version of the requested
    /// transfer curve.
    pub fn to_lut(&self) -> [u8; 256] {
        let mut lut = [0u8; 256];
        for (level, entry) in lut.iter_mut().enumerate() {
            let v = self.grayscale_voltage(level as u8);
            *entry = (v * 255.0).round().clamp(0.0, 255.0) as u8;
        }
        lut
    }

    /// Root-mean-square deviation between the voltage curve this ladder
    /// realizes and a requested normalized transfer function, sampled at all
    /// 256 levels. Used to verify how faithfully a driver realizes the curve
    /// the algorithm asked for.
    pub fn rms_error_against<F>(&self, mut requested: F) -> f64
    where
        F: FnMut(f64) -> f64,
    {
        let mut sum = 0.0;
        for level in 0..=255u8 {
            let x = f64::from(level) / 255.0;
            let d = self.grayscale_voltage(level) - requested(x).clamp(0.0, 1.0);
            sum += d * d;
        }
        (sum / 256.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ladder_is_identity() {
        let ladder = ReferenceLadder::uniform(10).unwrap();
        assert_eq!(ladder.tap_count(), 10);
        for level in [0u8, 63, 127, 200, 255] {
            let expected = f64::from(level) / 255.0;
            assert!((ladder.grayscale_voltage(level) - expected).abs() < 1e-12);
        }
        let lut = ladder.to_lut();
        for (level, &entry) in lut.iter().enumerate() {
            assert_eq!(entry, level as u8);
        }
    }

    #[test]
    fn uniform_requires_two_taps() {
        assert!(ReferenceLadder::uniform(1).is_err());
        assert!(ReferenceLadder::uniform(2).is_ok());
    }

    #[test]
    fn from_taps_validation() {
        assert!(ReferenceLadder::from_taps(vec![0.0]).is_err());
        assert!(ReferenceLadder::from_taps(vec![0.0, 1.2]).is_err());
        assert!(ReferenceLadder::from_taps(vec![0.5, 0.4]).is_err());
        assert!(ReferenceLadder::from_taps(vec![0.0, f64::NAN]).is_err());
        assert!(ReferenceLadder::from_taps(vec![0.0, 0.5, 0.5, 1.0]).is_ok());
    }

    #[test]
    fn clamped_ladder_saturates_output() {
        // All taps at the extremes: a hard threshold between dark and bright.
        let ladder = ReferenceLadder::from_taps(vec![0.0, 0.0, 1.0, 1.0]).unwrap();
        assert_eq!(ladder.grayscale_voltage(0), 0.0);
        assert_eq!(ladder.grayscale_voltage(255), 1.0);
        // Level 85 (one third): position = 1.0 → exactly at tap 1 = 0.
        assert!(ladder.grayscale_voltage(85) < 0.01);
        // Level 170 (two thirds): position = 2.0 → tap 2 = 1.
        assert!(ladder.grayscale_voltage(170) > 0.99);
    }

    #[test]
    fn voltage_is_monotone_for_valid_ladders() {
        let ladder = ReferenceLadder::from_taps(vec![0.0, 0.1, 0.5, 0.55, 0.9, 1.0]).unwrap();
        let lut = ladder.to_lut();
        assert!(lut.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rms_error_of_exact_match_is_zero() {
        let ladder = ReferenceLadder::uniform(11).unwrap();
        assert!(ladder.rms_error_against(|x| x) < 1e-12);
        // A very different curve has visible error.
        assert!(ladder.rms_error_against(|x| x * x) > 0.05);
    }

    #[test]
    fn more_taps_realize_a_curve_more_faithfully() {
        let requested = |x: f64| x.sqrt();
        let coarse =
            ReferenceLadder::from_taps((0..4).map(|i| requested(f64::from(i) / 3.0)).collect())
                .unwrap();
        let fine =
            ReferenceLadder::from_taps((0..16).map(|i| requested(f64::from(i) / 15.0)).collect())
                .unwrap();
        assert!(fine.rms_error_against(requested) < coarse.rms_error_against(requested));
    }
}
