//! Compiled 256-entry lookup tables.
//!
//! The LCD source driver ultimately applies the pixel transformation as a
//! mapping from each of the 256 input grayscale levels to an output level
//! (realized through the reference voltages). [`LookupTable`] is that
//! compiled form; it is what gets applied to images and what the hardware
//! model in `hebs-display` consumes.

use std::sync::Arc;

use hebs_imaging::{apply_lut, apply_lut_into, GrayImage, RgbImage};

/// A compiled level-to-level mapping for 8-bit pixels.
///
/// The table is immutable once built and stores its entries behind an
/// [`Arc`], so cloning is a reference-count bump: the runtime's
/// transformation cache and worker threads share one programmed table
/// without copying it per frame.
///
/// ```
/// use hebs_transform::LookupTable;
///
/// let lut = LookupTable::from_fn(|level| level.saturating_add(10));
/// assert_eq!(lut.map(0), 10);
/// assert_eq!(lut.map(250), 255);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LookupTable {
    entries: Arc<[u8; 256]>,
}

impl Default for LookupTable {
    fn default() -> Self {
        Self::identity()
    }
}

impl LookupTable {
    /// The identity mapping: every level maps to itself.
    pub fn identity() -> Self {
        Self::from_fn(|level| level)
    }

    /// Builds a table by evaluating `f` at every input level.
    pub fn from_fn<F>(mut f: F) -> Self
    where
        F: FnMut(u8) -> u8,
    {
        let mut entries = [0u8; 256];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = f(i as u8);
        }
        LookupTable {
            entries: Arc::new(entries),
        }
    }

    /// Builds a table from a normalized transfer function `φ: [0,1] → [0,1]`.
    ///
    /// Out-of-range outputs are clamped, mirroring what the display hardware
    /// does when a requested grayscale voltage exceeds the supply rails.
    pub fn from_normalized<F>(mut phi: F) -> Self
    where
        F: FnMut(f64) -> f64,
    {
        Self::from_fn(|level| {
            let x = f64::from(level) / 255.0;
            (phi(x).clamp(0.0, 1.0) * 255.0).round() as u8
        })
    }

    /// Wraps an explicit entry array.
    pub fn from_entries(entries: [u8; 256]) -> Self {
        LookupTable {
            entries: Arc::new(entries),
        }
    }

    /// Whether two tables share the same underlying storage (a clone, not a
    /// recomputation). Used by cache tests to prove reuse.
    pub fn shares_storage_with(&self, other: &LookupTable) -> bool {
        Arc::ptr_eq(&self.entries, &other.entries)
    }

    /// Maps one input level to its output level.
    pub fn map(&self, level: u8) -> u8 {
        self.entries[level as usize]
    }

    /// Borrow of the raw 256-entry table.
    pub fn entries(&self) -> &[u8; 256] {
        &self.entries
    }

    /// Whether the table is non-decreasing (a valid grayscale mapping: the
    /// hardware voltage ladder cannot produce a decreasing curve).
    pub fn is_monotone(&self) -> bool {
        self.entries.windows(2).all(|w| w[0] <= w[1])
    }

    /// Composes two tables: the result maps `level` to `outer.map(self.map(level))`.
    pub fn then(&self, outer: &LookupTable) -> LookupTable {
        LookupTable::from_fn(|level| outer.map(self.map(level)))
    }

    /// Applies the table to a grayscale image.
    ///
    /// Allocates the output; serve paths with a reusable buffer should use
    /// [`LookupTable::apply_into`].
    pub fn apply(&self, image: &GrayImage) -> GrayImage {
        apply_lut(image, &self.entries)
    }

    /// Applies the table into a caller-provided output image, reshaping it
    /// to the source dimensions and reusing its allocation when the
    /// capacity suffices. Every pixel of `out` is overwritten.
    pub fn apply_into(&self, image: &GrayImage, out: &mut GrayImage) {
        apply_lut_into(image, &self.entries, out);
    }

    /// Applies the table to every channel of an RGB image.
    pub fn apply_rgb(&self, image: &RgbImage) -> RgbImage {
        image.map_channels(|v| self.map(v))
    }

    /// Maximum output level produced by the table.
    pub fn max_output(&self) -> u8 {
        *self.entries.iter().max().expect("table has 256 entries")
    }

    /// Minimum output level produced by the table.
    pub fn min_output(&self) -> u8 {
        *self.entries.iter().min().expect("table has 256 entries")
    }

    /// Dynamic range of the output: `max_output − min_output + 1`.
    pub fn output_dynamic_range(&self) -> u32 {
        u32::from(self.max_output()) - u32::from(self.min_output()) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_maps_every_level_to_itself() {
        let lut = LookupTable::identity();
        for level in 0..=255u8 {
            assert_eq!(lut.map(level), level);
        }
        assert!(lut.is_monotone());
        assert_eq!(lut.output_dynamic_range(), 256);
        assert_eq!(LookupTable::default(), lut);
    }

    #[test]
    fn from_normalized_clamps() {
        let lut = LookupTable::from_normalized(|x| x * 2.0);
        assert_eq!(lut.map(0), 0);
        assert_eq!(lut.map(127), 254);
        assert_eq!(lut.map(200), 255);
        assert!(lut.is_monotone());
    }

    #[test]
    fn monotonicity_detection() {
        let mut entries = [0u8; 256];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = i as u8;
        }
        entries[100] = 50;
        assert!(!LookupTable::from_entries(entries).is_monotone());
    }

    #[test]
    fn composition_order() {
        let add_ten = LookupTable::from_fn(|v| v.saturating_add(10));
        let halve = LookupTable::from_fn(|v| v / 2);
        let composed = add_ten.then(&halve);
        // First add ten, then halve.
        assert_eq!(composed.map(10), 10);
        assert_eq!(composed.map(0), 5);
    }

    #[test]
    fn apply_to_images() {
        let lut = LookupTable::from_fn(|v| 255 - v);
        let img = GrayImage::from_fn(4, 4, |x, _| (x * 50) as u8);
        let inverted = lut.apply(&img);
        assert_eq!(inverted.get(0, 0), Some(255));
        assert_eq!(inverted.get(3, 0), Some(105));

        let rgb = RgbImage::from_fn(2, 2, |_, _| hebs_imaging::Rgb::new(0, 100, 255));
        let inv_rgb = lut.apply_rgb(&rgb);
        assert_eq!(inv_rgb.get(0, 0), Some(hebs_imaging::Rgb::new(255, 155, 0)));
    }

    #[test]
    fn apply_rgb_is_channel_independent_and_shape_preserving() {
        let lut = LookupTable::from_fn(|v| v / 2 + 40);
        let rgb = RgbImage::from_fn(5, 3, |x, y| {
            hebs_imaging::Rgb::new((x * 50) as u8, (y * 80) as u8, (x * y * 20) as u8)
        });
        let mapped = lut.apply_rgb(&rgb);
        assert_eq!((mapped.width(), mapped.height()), (5, 3));
        for (before, after) in rgb.pixels().zip(mapped.pixels()) {
            assert_eq!(after.r, lut.map(before.r));
            assert_eq!(after.g, lut.map(before.g));
            assert_eq!(after.b, lut.map(before.b));
        }
        // The identity table is a no-op on color images too.
        assert_eq!(LookupTable::identity().apply_rgb(&rgb), rgb);
    }

    #[test]
    fn apply_rgb_on_gray_pixels_matches_the_grayscale_path() {
        // A gray RGB image pushed through the LUT per channel must agree
        // with converting to luminance first and applying the LUT there:
        // the luminance round-trip the color pipeline relies on.
        let lut = LookupTable::from_fn(|v| v.saturating_add(25));
        let rgb = RgbImage::from_fn(8, 8, |x, y| hebs_imaging::Rgb::gray((x * 31 + y * 3) as u8));
        let gray_then_lut = lut.apply(&rgb.to_luminance());
        let lut_then_gray = lut.apply_rgb(&rgb).to_luminance();
        assert_eq!(gray_then_lut, lut_then_gray);
        // Rec. 601 luma of a gray pixel is the gray level itself.
        for level in [0u8, 1, 100, 254, 255] {
            assert_eq!(hebs_imaging::Rgb::gray(level).luminance(), level);
        }
    }

    #[test]
    fn output_range_of_compressive_table() {
        let lut = LookupTable::from_fn(|v| 100 + v / 4);
        assert_eq!(lut.min_output(), 100);
        assert_eq!(lut.max_output(), 163);
        assert_eq!(lut.output_dynamic_range(), 64);
    }
}
