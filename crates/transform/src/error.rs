//! Error type for transformation construction.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TransformError>;

/// Error raised when a pixel transformation function cannot be constructed.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TransformError {
    /// The backlight scaling factor must lie in `(0, 1]`.
    InvalidBacklightFactor {
        /// The offending value.
        beta: f64,
    },
    /// A band boundary was outside `[0, 1]` or inverted (`lower > upper`).
    InvalidBand {
        /// Lower bound that was supplied.
        lower: f64,
        /// Upper bound that was supplied.
        upper: f64,
    },
    /// A piecewise-linear curve needs at least two control points.
    TooFewControlPoints {
        /// Number of points supplied.
        count: usize,
    },
    /// Control point abscissas must be strictly increasing and ordinates
    /// non-decreasing (the curve must be a monotone function).
    NotMonotone {
        /// Index of the first offending control point.
        index: usize,
    },
    /// A control point coordinate was outside `[0, 1]` or not finite.
    PointOutOfRange {
        /// Index of the offending control point.
        index: usize,
    },
    /// The requested number of segments for coarsening is invalid (zero, or
    /// larger than the number of input segments).
    InvalidSegmentCount {
        /// Segments requested.
        requested: usize,
        /// Segments available in the input curve.
        available: usize,
    },
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::InvalidBacklightFactor { beta } => {
                write!(f, "backlight factor {beta} is outside of (0, 1]")
            }
            TransformError::InvalidBand { lower, upper } => {
                write!(f, "invalid band [{lower}, {upper}]")
            }
            TransformError::TooFewControlPoints { count } => {
                write!(
                    f,
                    "piecewise-linear curve needs at least 2 points, got {count}"
                )
            }
            TransformError::NotMonotone { index } => {
                write!(f, "control points are not monotone at index {index}")
            }
            TransformError::PointOutOfRange { index } => {
                write!(
                    f,
                    "control point {index} is outside of [0, 1] or not finite"
                )
            }
            TransformError::InvalidSegmentCount {
                requested,
                available,
            } => write!(
                f,
                "cannot coarsen to {requested} segments (input has {available})"
            ),
        }
    }
}

impl std::error::Error for TransformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_values() {
        let err = TransformError::InvalidBacklightFactor { beta: 1.5 };
        assert!(err.to_string().contains("1.5"));
        let err = TransformError::InvalidSegmentCount {
            requested: 10,
            available: 4,
        };
        assert!(err.to_string().contains("10"));
        assert!(err.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TransformError>();
    }
}
