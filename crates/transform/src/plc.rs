//! Piecewise Linear Coarsening (PLC).
//!
//! The exact GHE transformation has up to `O(|G|)` linear segments — far too
//! many for the reference-voltage hardware, which only offers `k`
//! controllable voltage sources. The PLC problem (Section 4.1 of the paper)
//! asks for the best approximation of the exact curve by a piecewise-linear
//! curve with a given, small number of segments `m`, where the endpoints of
//! the coarse segments must be a subset of the endpoints of the exact curve
//! and the mean squared error between the two curves is minimized.
//!
//! The dynamic program below implements the recurrence of Eq. 9:
//!
//! ```text
//! E(n, m) = min_{j}  E(j, m − 1) + e(j)
//! ```
//!
//! where `e(j)` is the squared error incurred by replacing all exact
//! segments between point `j` and point `n` with the single chord from `j`
//! to `n`. The implementation runs in `O(m·n²)` time after an `O(n²)`
//! chord-error precomputation, matching the complexity stated in the paper.

use crate::error::{Result, TransformError};
use crate::piecewise::{ControlPoint, PiecewiseLinear};

/// Outcome of a coarsening run.
#[derive(Debug, Clone, PartialEq)]
pub struct CoarseningResult {
    /// The coarse curve `Λ` with at most the requested number of segments.
    pub curve: PiecewiseLinear,
    /// Indices into the original control-point list that were kept.
    pub kept_indices: Vec<usize>,
    /// Total squared error between the kept chords and the skipped original
    /// control points (the DP objective).
    pub squared_error: f64,
}

impl CoarseningResult {
    /// Mean squared error per original control point.
    pub fn mse(&self, original_point_count: usize) -> f64 {
        if original_point_count == 0 {
            0.0
        } else {
            self.squared_error / original_point_count as f64
        }
    }
}

/// Approximates `curve` by a piecewise-linear curve with at most
/// `max_segments` segments using dynamic programming.
///
/// The first and last control points of the input are always kept, so the
/// coarse curve covers the same input range and hits the same extreme output
/// values — exactly what the reference-voltage ladder needs.
///
/// # Errors
///
/// Returns [`TransformError::InvalidSegmentCount`] when `max_segments` is 0.
///
/// # Examples
///
/// ```
/// use hebs_transform::{coarsen, PiecewiseLinear, PixelTransform};
///
/// let exact = PiecewiseLinear::from_samples(256, |x| x.sqrt());
/// let coarse = coarsen(&exact, 6)?;
/// assert!(coarse.curve.segment_count() <= 6);
/// // The coarse curve still tracks the exact curve closely.
/// assert!(exact.mse_against(&coarse.curve, 512) < 1e-3);
/// # Ok::<(), hebs_transform::TransformError>(())
/// ```
pub fn coarsen(curve: &PiecewiseLinear, max_segments: usize) -> Result<CoarseningResult> {
    let points = curve.points();
    let n = points.len();
    if max_segments == 0 {
        return Err(TransformError::InvalidSegmentCount {
            requested: max_segments,
            available: n - 1,
        });
    }
    // Nothing to do: the curve already has few enough segments.
    if max_segments >= n - 1 {
        return Ok(CoarseningResult {
            curve: curve.clone(),
            kept_indices: (0..n).collect(),
            squared_error: 0.0,
        });
    }

    // chord_error[i][j] = squared error of replacing points i..=j by the
    // chord from point i to point j (summed over the interior points).
    let chord_error = chord_errors(points);

    // dp[s][j] = minimum error of approximating points 0..=j with s segments
    // that end exactly at point j.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n]; max_segments + 1];
    let mut parent = vec![vec![usize::MAX; n]; max_segments + 1];
    dp[0][0] = 0.0;
    for s in 1..=max_segments {
        for j in 1..n {
            for i in (s - 1)..j {
                let prev = dp[s - 1][i];
                if prev.is_finite() {
                    let cost = prev + chord_error[i][j];
                    if cost < dp[s][j] {
                        dp[s][j] = cost;
                        parent[s][j] = i;
                    }
                }
            }
        }
    }

    // The best solution may use fewer than max_segments segments.
    let mut best_s = 1;
    let mut best_err = dp[1][n - 1];
    for (s, row) in dp.iter().enumerate().take(max_segments + 1).skip(1) {
        if row[n - 1] < best_err {
            best_err = row[n - 1];
            best_s = s;
        }
    }

    // Backtrack the kept indices.
    let mut kept = Vec::with_capacity(best_s + 1);
    let mut j = n - 1;
    let mut s = best_s;
    kept.push(j);
    while s > 0 {
        j = parent[s][j];
        kept.push(j);
        s -= 1;
    }
    kept.reverse();
    debug_assert_eq!(kept[0], 0);

    let coarse_points: Vec<ControlPoint> = kept.iter().map(|&i| points[i]).collect();
    let coarse = PiecewiseLinear::new(coarse_points)?;
    Ok(CoarseningResult {
        curve: coarse,
        kept_indices: kept,
        squared_error: best_err,
    })
}

/// Precomputes, for every pair `i < j`, the squared error of replacing the
/// original points strictly between `i` and `j` with the chord `i → j`.
///
/// Runs in O(n²) (the complexity the DP above assumes): the deviation of an
/// interior point from the chord is `Δy − s·Δx` with `Δx`, `Δy` measured
/// from the chord start and `s` the chord slope, so its square expands into
/// `Δy² − 2s·ΔxΔy + s²Δx²`. For a fixed start the three sums over interior
/// points grow by one term as the chord end advances, making each pair O(1)
/// instead of O(n).
fn chord_errors(points: &[ControlPoint]) -> Vec<Vec<f64>> {
    let n = points.len();
    let mut errors = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        let a = points[i];
        let (mut sum_dy2, mut sum_dxdy, mut sum_dx2) = (0.0f64, 0.0f64, 0.0f64);
        for j in (i + 2)..n {
            // Point j−1 was the previous chord end and is now interior.
            let p = points[j - 1];
            let dx = p.x - a.x;
            let dy = p.y - a.y;
            sum_dy2 += dy * dy;
            sum_dxdy += dx * dy;
            sum_dx2 += dx * dx;
            let b = points[j];
            let slope = (b.y - a.y) / (b.x - a.x);
            errors[i][j] = (sum_dy2 - 2.0 * slope * sum_dxdy + slope * slope * sum_dx2).max(0.0);
        }
    }
    errors
}

#[cfg(test)]
mod tests_chord_errors {
    use super::*;

    /// The O(n³) reference the fast precomputation must agree with.
    fn naive_chord_errors(points: &[ControlPoint]) -> Vec<Vec<f64>> {
        let n = points.len();
        let mut errors = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let a = points[i];
                let b = points[j];
                let dx = b.x - a.x;
                let mut sum = 0.0;
                for p in &points[i + 1..j] {
                    let t = (p.x - a.x) / dx;
                    let chord_y = a.y + t * (b.y - a.y);
                    let d = p.y - chord_y;
                    sum += d * d;
                }
                errors[i][j] = sum;
            }
        }
        errors
    }

    #[test]
    fn incremental_chord_errors_match_the_naive_sum() {
        let curve = PiecewiseLinear::from_samples(48, |x| (x * 2.2).sin().abs() * 0.5 + x * 0.4);
        let points = curve.points();
        let fast = chord_errors(points);
        let slow = naive_chord_errors(points);
        for i in 0..points.len() {
            for j in 0..points.len() {
                assert!(
                    (fast[i][j] - slow[i][j]).abs() < 1e-9,
                    "chord ({i}, {j}): fast {} vs naive {}",
                    fast[i][j],
                    slow[i][j]
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::PixelTransform;

    #[test]
    fn coarsening_a_line_is_exact_with_one_segment() {
        let exact = PiecewiseLinear::from_samples(64, |x| x);
        let result = coarsen(&exact, 1).unwrap();
        assert_eq!(result.curve.segment_count(), 1);
        assert!(result.squared_error < 1e-18);
        assert!(exact.mse_against(&result.curve, 256) < 1e-18);
    }

    #[test]
    fn coarsening_keeps_endpoints() {
        let exact = PiecewiseLinear::from_samples(100, |x| x.powf(0.3));
        let result = coarsen(&exact, 5).unwrap();
        let pts = result.curve.points();
        assert_eq!(pts[0].x, 0.0);
        assert_eq!(pts[pts.len() - 1].x, 1.0);
        assert_eq!(result.kept_indices[0], 0);
        assert_eq!(*result.kept_indices.last().unwrap(), 99);
    }

    #[test]
    fn more_segments_never_increase_error() {
        let exact = PiecewiseLinear::from_samples(80, |x| x * x);
        let mut previous = f64::INFINITY;
        for m in 1..=10 {
            let result = coarsen(&exact, m).unwrap();
            assert!(
                result.squared_error <= previous + 1e-12,
                "error increased going to {m} segments"
            );
            previous = result.squared_error;
        }
    }

    #[test]
    fn requesting_enough_segments_returns_original() {
        let exact = PiecewiseLinear::from_samples(16, |x| x.sqrt());
        let result = coarsen(&exact, 15).unwrap();
        assert_eq!(result.curve, exact);
        assert_eq!(result.squared_error, 0.0);
        let more = coarsen(&exact, 100).unwrap();
        assert_eq!(more.curve, exact);
    }

    #[test]
    fn zero_segments_is_rejected() {
        let exact = PiecewiseLinear::identity();
        assert!(matches!(
            coarsen(&exact, 0),
            Err(TransformError::InvalidSegmentCount { requested: 0, .. })
        ));
    }

    #[test]
    fn coarse_curve_has_at_most_requested_segments() {
        let exact = PiecewiseLinear::from_samples(200, |x| (x * 6.0).sin().abs() * 0.3 + x * 0.7);
        for m in [2usize, 4, 8, 12] {
            let result = coarsen(&exact, m).unwrap();
            assert!(result.curve.segment_count() <= m);
        }
    }

    #[test]
    fn coarsening_a_step_like_curve_places_breakpoint_at_the_step() {
        // A curve that is flat, then rises steeply, then is flat again: the
        // two interior breakpoints should land near the corners of the step.
        let exact = PiecewiseLinear::from_samples(101, |x| {
            if x < 0.45 {
                0.0
            } else if x > 0.55 {
                1.0
            } else {
                (x - 0.45) / 0.10
            }
        });
        let result = coarsen(&exact, 3).unwrap();
        let xs: Vec<f64> = result.curve.points().iter().map(|p| p.x).collect();
        assert!(xs.iter().any(|&x| (x - 0.45).abs() < 0.03));
        assert!(xs.iter().any(|&x| (x - 0.55).abs() < 0.03));
        assert!(result.squared_error < 1e-3);
    }

    #[test]
    fn dp_error_matches_recomputed_error() {
        let exact = PiecewiseLinear::from_samples(60, |x| x.powf(2.5));
        let result = coarsen(&exact, 4).unwrap();
        // Recompute the objective directly from the kept indices.
        let pts = exact.points();
        let mut recomputed = 0.0;
        for w in result.kept_indices.windows(2) {
            let (i, j) = (w[0], w[1]);
            let a = pts[i];
            let b = pts[j];
            for p in &pts[i + 1..j] {
                let t = (p.x - a.x) / (b.x - a.x);
                let chord = a.y + t * (b.y - a.y);
                recomputed += (p.y - chord) * (p.y - chord);
            }
        }
        assert!((recomputed - result.squared_error).abs() < 1e-12);
    }

    #[test]
    fn mse_normalization() {
        let exact = PiecewiseLinear::from_samples(50, |x| x.sqrt());
        let result = coarsen(&exact, 3).unwrap();
        assert!((result.mse(50) - result.squared_error / 50.0).abs() < 1e-15);
        assert_eq!(result.mse(0), 0.0);
    }

    #[test]
    fn coarse_curve_is_monotone_and_valid_transform() {
        let exact = PiecewiseLinear::from_samples(128, |x| 0.2 + 0.8 * x.powf(0.5));
        let result = coarsen(&exact, 6).unwrap();
        assert!(result.curve.to_lut().is_monotone());
        assert!(result.curve.evaluate(0.5) >= result.curve.evaluate(0.4));
    }
}
