//! k-window (k-band) grayscale spreading functions (Figure 3 of the paper).
//!
//! The hierarchical reference-voltage driver proposed by HEBS can hold the
//! grayscale-voltage curve *flat* not only at the two ends of the histogram
//! (as the CBCS hardware does) but also in the middle. The resulting pixel
//! transformation consists of `k` "windows" of input levels that are spread
//! over the output range, separated by flat regions whose input levels are
//! collapsed. Pixels inside the windows keep (and gain) contrast; pixels in
//! the flat gaps lose their distinction — which is acceptable when the gaps
//! correspond to sparsely populated histogram regions.

use crate::error::{Result, TransformError};
use crate::functions::PixelTransform;
use crate::piecewise::{ControlPoint, PiecewiseLinear};

/// One input window `[lower, upper]` (normalized) that will be preserved and
/// spread by a [`KBandSpreading`] transformation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// Lower edge of the window, `0 ≤ lower < upper`.
    pub lower: f64,
    /// Upper edge of the window, `lower < upper ≤ 1`.
    pub upper: f64,
}

impl Band {
    /// Creates a band after validating `0 ≤ lower < upper ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidBand`] for inverted, degenerate or
    /// out-of-range bands.
    pub fn new(lower: f64, upper: f64) -> Result<Self> {
        if !(lower.is_finite() && upper.is_finite()) || lower < 0.0 || upper > 1.0 || lower >= upper
        {
            return Err(TransformError::InvalidBand { lower, upper });
        }
        Ok(Band { lower, upper })
    }

    /// Width of the band.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `x` lies inside the band (inclusive).
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lower && x <= self.upper
    }
}

/// A k-window grayscale spreading transformation.
///
/// Input values inside the windows are mapped with a common slope
/// `1 / Σ width_i` so that the windows together cover the whole output range
/// `[0, 1]`; input values between windows map to a constant (the output level
/// reached at the end of the previous window). The total window width equals
/// the effective dynamic-range fraction kept by the transformation and is
/// therefore the natural backlight factor `β` associated with it.
///
/// ```
/// use hebs_transform::{Band, KBandSpreading, PixelTransform};
///
/// let spread = KBandSpreading::new(vec![
///     Band::new(0.0, 0.2)?,
///     Band::new(0.6, 0.8)?,
/// ])?;
/// // Total window width 0.4 → slope 2.5 inside windows.
/// assert!((spread.backlight_factor() - 0.4).abs() < 1e-12);
/// assert!((spread.evaluate(0.1) - 0.25).abs() < 1e-12);
/// // The gap between the windows is flat.
/// assert_eq!(spread.evaluate(0.3), spread.evaluate(0.5));
/// # Ok::<(), hebs_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KBandSpreading {
    bands: Vec<Band>,
    total_width: f64,
}

impl KBandSpreading {
    /// Creates a spreading function from a set of non-overlapping bands.
    ///
    /// Bands are sorted by their lower edge; they must not overlap (touching
    /// edges are allowed).
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::TooFewControlPoints`] when no band is given
    /// and [`TransformError::InvalidBand`] when two bands overlap.
    pub fn new(mut bands: Vec<Band>) -> Result<Self> {
        if bands.is_empty() {
            return Err(TransformError::TooFewControlPoints { count: 0 });
        }
        bands.sort_by(|a, b| {
            a.lower
                .partial_cmp(&b.lower)
                .expect("band edges are finite")
        });
        for pair in bands.windows(2) {
            if pair[1].lower < pair[0].upper {
                return Err(TransformError::InvalidBand {
                    lower: pair[1].lower,
                    upper: pair[0].upper,
                });
            }
        }
        let total_width: f64 = bands.iter().map(Band::width).sum();
        Ok(KBandSpreading { bands, total_width })
    }

    /// The bands, sorted by lower edge.
    pub fn bands(&self) -> &[Band] {
        &self.bands
    }

    /// Number of windows `k`.
    pub fn band_count(&self) -> usize {
        self.bands.len()
    }

    /// Total width of all windows — the fraction of the input dynamic range
    /// that is preserved, and the natural backlight scaling factor for this
    /// transformation.
    pub fn total_width(&self) -> f64 {
        self.total_width
    }

    /// Converts the transformation into an explicit piecewise-linear curve.
    ///
    /// The curve has a control point at every band edge (plus the domain
    /// endpoints), which is the form consumed by the PLC step and the
    /// reference-voltage programmer.
    pub fn to_piecewise(&self) -> PiecewiseLinear {
        let mut points = Vec::with_capacity(self.bands.len() * 2 + 2);
        let mut accumulated = 0.0f64;
        if self.bands[0].lower > 0.0 {
            points.push(ControlPoint::new(0.0, 0.0));
        }
        for band in &self.bands {
            let y_start = accumulated / self.total_width;
            accumulated += band.width();
            let y_end = accumulated / self.total_width;
            points.push(ControlPoint::new(band.lower, y_start));
            points.push(ControlPoint::new(band.upper, y_end));
        }
        if self.bands[self.bands.len() - 1].upper < 1.0 {
            points.push(ControlPoint::new(1.0, 1.0));
        }
        // Deduplicate abscissas that coincide (touching bands or bands that
        // start exactly at 0 / end exactly at 1).
        points.dedup_by(|b, a| {
            (a.x - b.x).abs() < 1e-12 && {
                a.y = a.y.max(b.y);
                true
            }
        });
        PiecewiseLinear::new(points).expect("band construction yields a valid monotone curve")
    }
}

impl PixelTransform for KBandSpreading {
    fn evaluate(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        let mut accumulated = 0.0f64;
        for band in &self.bands {
            if x < band.lower {
                break;
            }
            if x <= band.upper {
                accumulated += x - band.lower;
                return (accumulated / self.total_width).clamp(0.0, 1.0);
            }
            accumulated += band.width();
        }
        (accumulated / self.total_width).clamp(0.0, 1.0)
    }

    fn backlight_factor(&self) -> f64 {
        self.total_width.clamp(f64::MIN_POSITIVE, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_band() -> KBandSpreading {
        KBandSpreading::new(vec![
            Band::new(0.1, 0.3).unwrap(),
            Band::new(0.6, 0.9).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn band_validation() {
        assert!(Band::new(0.2, 0.1).is_err());
        assert!(Band::new(0.5, 0.5).is_err());
        assert!(Band::new(-0.1, 0.5).is_err());
        assert!(Band::new(0.1, 1.1).is_err());
        let b = Band::new(0.25, 0.75).unwrap();
        assert!((b.width() - 0.5).abs() < 1e-12);
        assert!(b.contains(0.5));
        assert!(!b.contains(0.8));
    }

    #[test]
    fn empty_band_list_rejected() {
        assert!(KBandSpreading::new(vec![]).is_err());
    }

    #[test]
    fn overlapping_bands_rejected() {
        assert!(KBandSpreading::new(vec![
            Band::new(0.1, 0.5).unwrap(),
            Band::new(0.4, 0.8).unwrap(),
        ])
        .is_err());
    }

    #[test]
    fn touching_bands_are_accepted() {
        let spread = KBandSpreading::new(vec![
            Band::new(0.0, 0.5).unwrap(),
            Band::new(0.5, 1.0).unwrap(),
        ])
        .unwrap();
        // Two touching bands covering everything behave like the identity.
        for i in 0..=10 {
            let x = f64::from(i) / 10.0;
            assert!((spread.evaluate(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn bands_are_sorted_on_construction() {
        let spread = KBandSpreading::new(vec![
            Band::new(0.6, 0.9).unwrap(),
            Band::new(0.1, 0.3).unwrap(),
        ])
        .unwrap();
        assert!(spread.bands()[0].lower < spread.bands()[1].lower);
        assert_eq!(spread.band_count(), 2);
    }

    #[test]
    fn evaluation_inside_and_between_bands() {
        let spread = two_band();
        // Total width 0.5, slope 2 inside bands.
        assert!((spread.total_width() - 0.5).abs() < 1e-12);
        assert_eq!(spread.evaluate(0.0), 0.0);
        assert_eq!(spread.evaluate(0.1), 0.0);
        assert!((spread.evaluate(0.2) - 0.2).abs() < 1e-12);
        assert!((spread.evaluate(0.3) - 0.4).abs() < 1e-12);
        // Flat gap between the bands.
        assert!((spread.evaluate(0.45) - 0.4).abs() < 1e-12);
        assert!((spread.evaluate(0.6) - 0.4).abs() < 1e-12);
        // Second band rises to 1.
        assert!((spread.evaluate(0.75) - 0.7).abs() < 1e-12);
        assert!((spread.evaluate(0.9) - 1.0).abs() < 1e-12);
        assert_eq!(spread.evaluate(1.0), 1.0);
    }

    #[test]
    fn backlight_factor_is_total_width() {
        let spread = two_band();
        assert!((spread.backlight_factor() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_band_matches_single_band_spreading() {
        use crate::functions::SingleBandSpreading;
        let kband = KBandSpreading::new(vec![Band::new(0.2, 0.7).unwrap()]).unwrap();
        let single = SingleBandSpreading::new(0.2, 0.7, 0.5).unwrap();
        for i in 0..=20 {
            let x = f64::from(i) / 20.0;
            assert!(
                (kband.evaluate(x) - single.evaluate(x)).abs() < 1e-12,
                "mismatch at x = {x}"
            );
        }
    }

    #[test]
    fn piecewise_conversion_matches_direct_evaluation() {
        let spread = two_band();
        let curve = spread.to_piecewise();
        for i in 0..=100 {
            let x = f64::from(i) / 100.0;
            assert!(
                (spread.evaluate(x) - curve.evaluate(x)).abs() < 1e-9,
                "mismatch at x = {x}"
            );
        }
        assert!(curve.to_lut().is_monotone());
    }

    #[test]
    fn piecewise_conversion_with_bands_at_domain_edges() {
        let spread = KBandSpreading::new(vec![
            Band::new(0.0, 0.25).unwrap(),
            Band::new(0.75, 1.0).unwrap(),
        ])
        .unwrap();
        let curve = spread.to_piecewise();
        assert_eq!(curve.points()[0].x, 0.0);
        assert_eq!(curve.points()[curve.points().len() - 1].x, 1.0);
        for i in 0..=50 {
            let x = f64::from(i) / 50.0;
            assert!((spread.evaluate(x) - curve.evaluate(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn monotone_lut() {
        assert!(two_band().to_lut().is_monotone());
    }
}
