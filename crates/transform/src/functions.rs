//! The classical backlight-compensation transformation families (Figure 2 of
//! the paper).

use crate::error::{Result, TransformError};
use crate::lut::LookupTable;

/// A pixel transformation function `Φ(x)` on normalized values `x ∈ [0, 1]`.
///
/// Implementors must be monotone non-decreasing on `[0, 1]` and map into
/// `[0, 1]`; [`PixelTransform::to_lut`] relies on this when compiling the
/// 256-entry table that the display hardware applies.
pub trait PixelTransform {
    /// Evaluates the transformation at a normalized pixel value.
    ///
    /// Inputs outside `[0, 1]` are clamped by convention.
    fn evaluate(&self, x: f64) -> f64;

    /// The backlight scaling factor `β ∈ (0, 1]` this transformation was
    /// designed for (1.0 when no dimming is associated with it).
    fn backlight_factor(&self) -> f64 {
        1.0
    }

    /// Compiles the transformation into a 256-entry lookup table.
    fn to_lut(&self) -> LookupTable {
        LookupTable::from_normalized(|x| self.evaluate(x))
    }
}

/// Validates that a backlight factor lies in `(0, 1]`.
fn check_beta(beta: f64) -> Result<f64> {
    if beta.is_finite() && beta > 0.0 && beta <= 1.0 {
        Ok(beta)
    } else {
        Err(TransformError::InvalidBacklightFactor { beta })
    }
}

/// The identity transformation `Φ(x, β) = x` (Figure 2a).
///
/// Displaying an unmodified image on a dimmed backlight simply darkens it;
/// this is the "no compensation" reference point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Identity;

impl Identity {
    /// Creates the identity transformation.
    pub fn new() -> Self {
        Identity
    }
}

impl PixelTransform for Identity {
    fn evaluate(&self, x: f64) -> f64 {
        x.clamp(0.0, 1.0)
    }
}

/// Backlight luminance dimming with *brightness compensation* (Figure 2b):
/// `Φ(x, β) = min(1, x + 1 − β)`, from reference \[4\] of the paper (DLS).
///
/// Every pixel is shifted up by the amount of backlight lost; bright pixels
/// saturate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrightnessCompensation {
    beta: f64,
}

impl BrightnessCompensation {
    /// Creates the transformation for backlight factor `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidBacklightFactor`] unless
    /// `beta ∈ (0, 1]`.
    pub fn new(beta: f64) -> Result<Self> {
        Ok(BrightnessCompensation {
            beta: check_beta(beta)?,
        })
    }

    /// The backlight factor this transformation compensates for.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Fraction of the 256 levels that saturate to full white under this
    /// transformation (levels with `x + 1 − β ≥ 1`, i.e. `x ≥ β`).
    pub fn saturated_fraction(&self) -> f64 {
        1.0 - self.beta
    }
}

impl PixelTransform for BrightnessCompensation {
    fn evaluate(&self, x: f64) -> f64 {
        (x.clamp(0.0, 1.0) + 1.0 - self.beta).min(1.0)
    }

    fn backlight_factor(&self) -> f64 {
        self.beta
    }
}

/// Backlight luminance dimming with *contrast enhancement* (Figure 2c):
/// `Φ(x, β) = min(1, x / β)`, from reference \[4\] of the paper (DLS).
///
/// The transmissivity of every pixel is scaled up by `1/β`, which preserves
/// the luminance `β · t(x/β) ≈ t(x)` exactly for all non-saturating pixels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContrastEnhancement {
    beta: f64,
}

impl ContrastEnhancement {
    /// Creates the transformation for backlight factor `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidBacklightFactor`] unless
    /// `beta ∈ (0, 1]`.
    pub fn new(beta: f64) -> Result<Self> {
        Ok(ContrastEnhancement {
            beta: check_beta(beta)?,
        })
    }

    /// The backlight factor this transformation compensates for.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Fraction of the normalized input range that saturates to full white
    /// (inputs `x ≥ β`).
    pub fn saturated_fraction(&self) -> f64 {
        1.0 - self.beta
    }
}

impl PixelTransform for ContrastEnhancement {
    fn evaluate(&self, x: f64) -> f64 {
        (x.clamp(0.0, 1.0) / self.beta).min(1.0)
    }

    fn backlight_factor(&self) -> f64 {
        self.beta
    }
}

/// Single-band grayscale spreading (Figure 2d, Eq. 3): the affine map
/// `Φ(x, β) = c·x + d` clamped to `[0, 1]`, which truncates the histogram at
/// `g_l` (mapped to 0) and `g_u` (mapped to 1) and stretches the band in
/// between. This is the transformation family of the CBCS baseline
/// (Cheng & Pedram, reference \[5\]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleBandSpreading {
    lower: f64,
    upper: f64,
    beta: f64,
}

impl SingleBandSpreading {
    /// Creates the spreading function for the band `[lower, upper]` and an
    /// associated backlight factor `beta`.
    ///
    /// Pixels at or below `lower` map to 0, pixels at or above `upper` map to
    /// 1, and the band in between is stretched linearly.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidBand`] when the band is inverted,
    /// degenerate or out of `[0, 1]`, and
    /// [`TransformError::InvalidBacklightFactor`] for an invalid `beta`.
    pub fn new(lower: f64, upper: f64, beta: f64) -> Result<Self> {
        if !(lower.is_finite() && upper.is_finite()) || lower < 0.0 || upper > 1.0 || lower >= upper
        {
            return Err(TransformError::InvalidBand { lower, upper });
        }
        Ok(SingleBandSpreading {
            lower,
            upper,
            beta: check_beta(beta)?,
        })
    }

    /// Creates the spreading function whose band is exactly wide enough to
    /// compensate a backlight factor `beta`, centred on `centre`.
    ///
    /// The band width is `beta` (so the slope is `1/β`, matching the
    /// luminance-preserving contrast compensation), shifted if necessary so
    /// it fits inside `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InvalidBacklightFactor`] for an invalid
    /// `beta`.
    pub fn centred(centre: f64, beta: f64) -> Result<Self> {
        let beta = check_beta(beta)?;
        let centre = centre.clamp(0.0, 1.0);
        let half = beta / 2.0;
        let mut lower = centre - half;
        let mut upper = centre + half;
        if lower < 0.0 {
            upper -= lower;
            lower = 0.0;
        }
        if upper > 1.0 {
            lower -= upper - 1.0;
            upper = 1.0;
        }
        SingleBandSpreading::new(lower.max(0.0), upper.min(1.0), beta)
    }

    /// Lower band boundary `g_l` (normalized).
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// Upper band boundary `g_u` (normalized).
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Slope `c = 1 / (g_u − g_l)` of the linear region.
    pub fn slope(&self) -> f64 {
        1.0 / (self.upper - self.lower)
    }

    /// The backlight factor this transformation compensates for.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl PixelTransform for SingleBandSpreading {
    fn evaluate(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        ((x - self.lower) / (self.upper - self.lower)).clamp(0.0, 1.0)
    }

    fn backlight_factor(&self) -> f64 {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let id = Identity::new();
        for i in 0..=10 {
            let x = f64::from(i) / 10.0;
            assert_eq!(id.evaluate(x), x);
        }
        assert_eq!(id.backlight_factor(), 1.0);
        assert_eq!(id.to_lut(), LookupTable::identity());
    }

    #[test]
    fn identity_clamps_out_of_range_inputs() {
        let id = Identity::new();
        assert_eq!(id.evaluate(-0.5), 0.0);
        assert_eq!(id.evaluate(1.5), 1.0);
    }

    #[test]
    fn brightness_compensation_shifts_up() {
        let phi = BrightnessCompensation::new(0.7).unwrap();
        assert!((phi.evaluate(0.0) - 0.3).abs() < 1e-12);
        assert!((phi.evaluate(0.5) - 0.8).abs() < 1e-12);
        assert_eq!(phi.evaluate(0.8), 1.0);
        assert_eq!(phi.backlight_factor(), 0.7);
        assert!((phi.saturated_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn brightness_compensation_at_full_backlight_is_identity() {
        let phi = BrightnessCompensation::new(1.0).unwrap();
        for i in 0..=10 {
            let x = f64::from(i) / 10.0;
            assert!((phi.evaluate(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn contrast_enhancement_scales() {
        let phi = ContrastEnhancement::new(0.5).unwrap();
        assert_eq!(phi.evaluate(0.0), 0.0);
        assert!((phi.evaluate(0.25) - 0.5).abs() < 1e-12);
        assert_eq!(phi.evaluate(0.5), 1.0);
        assert_eq!(phi.evaluate(0.9), 1.0);
        assert_eq!(phi.backlight_factor(), 0.5);
    }

    #[test]
    fn contrast_enhancement_preserves_luminance_of_unsaturated_pixels() {
        // β · Φ(x) should equal x when Φ(x) < 1.
        let beta = 0.6;
        let phi = ContrastEnhancement::new(beta).unwrap();
        for i in 0..=5 {
            let x = f64::from(i) * 0.1;
            assert!((beta * phi.evaluate(x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_beta_rejected() {
        assert!(BrightnessCompensation::new(0.0).is_err());
        assert!(BrightnessCompensation::new(1.1).is_err());
        assert!(ContrastEnhancement::new(-0.2).is_err());
        assert!(ContrastEnhancement::new(f64::NAN).is_err());
        assert!(SingleBandSpreading::new(0.2, 0.8, 2.0).is_err());
    }

    #[test]
    fn single_band_maps_band_to_full_range() {
        let phi = SingleBandSpreading::new(0.25, 0.75, 0.5).unwrap();
        assert_eq!(phi.evaluate(0.0), 0.0);
        assert_eq!(phi.evaluate(0.25), 0.0);
        assert!((phi.evaluate(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(phi.evaluate(0.75), 1.0);
        assert_eq!(phi.evaluate(1.0), 1.0);
        assert!((phi.slope() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_band_rejects_bad_bands() {
        assert!(SingleBandSpreading::new(0.5, 0.5, 0.5).is_err());
        assert!(SingleBandSpreading::new(0.7, 0.3, 0.5).is_err());
        assert!(SingleBandSpreading::new(-0.1, 0.5, 0.5).is_err());
        assert!(SingleBandSpreading::new(0.1, 1.5, 0.5).is_err());
    }

    #[test]
    fn centred_band_fits_in_unit_interval() {
        let near_edge = SingleBandSpreading::centred(0.05, 0.4).unwrap();
        assert!(near_edge.lower() >= 0.0);
        assert!(near_edge.upper() <= 1.0);
        assert!((near_edge.upper() - near_edge.lower() - 0.4).abs() < 1e-9);

        let near_top = SingleBandSpreading::centred(0.98, 0.5).unwrap();
        assert!(near_top.upper() <= 1.0 + 1e-12);
        assert!((near_top.upper() - near_top.lower() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn all_functions_are_monotone_as_luts() {
        let transforms: Vec<Box<dyn PixelTransform>> = vec![
            Box::new(Identity::new()),
            Box::new(BrightnessCompensation::new(0.6).unwrap()),
            Box::new(ContrastEnhancement::new(0.6).unwrap()),
            Box::new(SingleBandSpreading::new(0.2, 0.7, 0.5).unwrap()),
        ];
        for t in &transforms {
            assert!(t.to_lut().is_monotone());
        }
    }

    #[test]
    fn trait_is_object_safe() {
        fn takes_object(t: &dyn PixelTransform) -> f64 {
            t.evaluate(0.5)
        }
        assert!(takes_object(&Identity::new()) > 0.0);
    }
}
