//! Pixel transformation functions for backlight-scaled displays.
//!
//! When the backlight of a transmissive TFT-LCD is dimmed by a factor `β`,
//! the displayed luminance of a pixel with (normalized) value `x` becomes
//! `I = β · t(Φ(x, β))`. The *pixel transformation function* `Φ` raises the
//! panel transmittance to compensate for the dimmer backlight. This crate
//! implements every transformation family that appears in the HEBS paper
//! (Iranli, Fatemi, Pedram — DATE 2005) and its baselines:
//!
//! * [`Identity`] — no compensation (Figure 2a).
//! * [`BrightnessCompensation`] — `Φ(x,β) = min(1, x + 1 − β)` (Figure 2b,
//!   from the DLS work of Chang et al.).
//! * [`ContrastEnhancement`] — `Φ(x,β) = min(1, x/β)` (Figure 2c).
//! * [`SingleBandSpreading`] — truncate-and-stretch of one band
//!   (Figure 2d, the CBCS approach of Cheng & Pedram).
//! * [`KBandSpreading`] — the k-window grayscale spreading function that the
//!   HEBS hierarchical reference driver can realize (Figure 3).
//! * [`PiecewiseLinear`] — arbitrary monotone piecewise-linear curves, the
//!   form produced by the Global Histogram Equalization step.
//! * [`plc`] — the Piecewise Linear Coarsening dynamic program that
//!   approximates an arbitrary curve with a small number of segments
//!   (Section 4.1, Eq. 9).
//!
//! All transformations operate on normalized pixel values `x ∈ [0, 1]` and
//! can be compiled to a 256-entry [`LookupTable`] for application to 8-bit
//! images.
//!
//! # Example
//!
//! ```
//! use hebs_transform::{BrightnessCompensation, PixelTransform};
//!
//! let phi = BrightnessCompensation::new(0.6)?;
//! assert!((phi.evaluate(0.0) - 0.4).abs() < 1e-12);
//! assert_eq!(phi.evaluate(0.9), 1.0);
//! # Ok::<(), hebs_transform::TransformError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod functions;
mod kband;
mod lut;
mod piecewise;
pub mod plc;

pub use error::{Result, TransformError};
pub use functions::{
    BrightnessCompensation, ContrastEnhancement, Identity, PixelTransform, SingleBandSpreading,
};
pub use kband::{Band, KBandSpreading};
pub use lut::LookupTable;
pub use piecewise::{ControlPoint, PiecewiseLinear};
pub use plc::{coarsen, CoarseningResult};
