//! Monotone piecewise-linear transformation curves.
//!
//! The exact Global Histogram Equalization transformation of the paper
//! (Eq. 7) is itself piecewise linear with up to `|G| = 256` segments; the
//! Piecewise Linear Coarsening step then reduces it to the handful of
//! segments the hardware can realize. [`PiecewiseLinear`] is the common
//! representation for both.

use crate::error::{Result, TransformError};
use crate::functions::PixelTransform;

/// One control point `(x, y)` of a piecewise-linear curve, in normalized
/// coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ControlPoint {
    /// Input (original pixel value), `x ∈ [0, 1]`.
    pub x: f64,
    /// Output (transformed pixel value), `y ∈ [0, 1]`.
    pub y: f64,
}

impl ControlPoint {
    /// Creates a control point.
    pub const fn new(x: f64, y: f64) -> Self {
        ControlPoint { x, y }
    }
}

impl From<(f64, f64)> for ControlPoint {
    fn from(value: (f64, f64)) -> Self {
        ControlPoint::new(value.0, value.1)
    }
}

/// A monotone piecewise-linear function on `[0, 1]` defined by its ordered
/// control points.
///
/// Invariants enforced at construction:
///
/// * at least two control points,
/// * all coordinates finite and inside `[0, 1]`,
/// * abscissas strictly increasing, ordinates non-decreasing,
/// * the first abscissa is 0 and the last is 1 (the curve covers the whole
///   input range).
///
/// ```
/// use hebs_transform::{ControlPoint, PiecewiseLinear, PixelTransform};
///
/// let curve = PiecewiseLinear::new(vec![
///     ControlPoint::new(0.0, 0.2),
///     ControlPoint::new(0.5, 0.9),
///     ControlPoint::new(1.0, 1.0),
/// ])?;
/// assert!((curve.evaluate(0.25) - 0.55).abs() < 1e-12);
/// # Ok::<(), hebs_transform::TransformError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    points: Vec<ControlPoint>,
}

impl PiecewiseLinear {
    /// Creates a curve from ordered control points.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::TooFewControlPoints`],
    /// [`TransformError::PointOutOfRange`] or [`TransformError::NotMonotone`]
    /// when the invariants described on the type are violated.
    pub fn new(points: Vec<ControlPoint>) -> Result<Self> {
        if points.len() < 2 {
            return Err(TransformError::TooFewControlPoints {
                count: points.len(),
            });
        }
        for (index, p) in points.iter().enumerate() {
            let finite = p.x.is_finite() && p.y.is_finite();
            if !finite || !(0.0..=1.0).contains(&p.x) || !(0.0..=1.0).contains(&p.y) {
                return Err(TransformError::PointOutOfRange { index });
            }
        }
        for index in 1..points.len() {
            if points[index].x <= points[index - 1].x || points[index].y < points[index - 1].y {
                return Err(TransformError::NotMonotone { index });
            }
        }
        // Require full coverage of the input domain so evaluation never
        // needs to extrapolate.
        if points[0].x != 0.0 || points[points.len() - 1].x != 1.0 {
            return Err(TransformError::PointOutOfRange {
                index: if points[0].x != 0.0 {
                    0
                } else {
                    points.len() - 1
                },
            });
        }
        Ok(PiecewiseLinear { points })
    }

    /// The identity curve with two control points.
    pub fn identity() -> Self {
        PiecewiseLinear {
            points: vec![ControlPoint::new(0.0, 0.0), ControlPoint::new(1.0, 1.0)],
        }
    }

    /// Builds the curve by sampling a monotone function at `samples` evenly
    /// spaced abscissas (including both endpoints).
    ///
    /// Outputs are clamped to `[0, 1]` and forced to be non-decreasing so a
    /// valid curve is always produced.
    ///
    /// # Panics
    ///
    /// Panics if `samples < 2`.
    pub fn from_samples<F>(samples: usize, mut f: F) -> Self
    where
        F: FnMut(f64) -> f64,
    {
        assert!(samples >= 2, "need at least two samples");
        let mut points = Vec::with_capacity(samples);
        let mut previous_y = 0.0f64;
        for i in 0..samples {
            let x = i as f64 / (samples - 1) as f64;
            let mut y = f(x).clamp(0.0, 1.0);
            if i > 0 {
                y = y.max(previous_y);
            }
            previous_y = y;
            points.push(ControlPoint::new(x, y));
        }
        PiecewiseLinear { points }
    }

    /// Ordered control points of the curve.
    pub fn points(&self) -> &[ControlPoint] {
        &self.points
    }

    /// Number of linear segments (`points − 1`).
    pub fn segment_count(&self) -> usize {
        self.points.len() - 1
    }

    /// The output value at `x = 0`.
    pub fn y_min(&self) -> f64 {
        self.points[0].y
    }

    /// The output value at `x = 1`.
    pub fn y_max(&self) -> f64 {
        self.points[self.points.len() - 1].y
    }

    /// Output dynamic range `y_max − y_min` (normalized).
    pub fn output_range(&self) -> f64 {
        self.y_max() - self.y_min()
    }

    /// Mean squared error between this curve and another, estimated by
    /// sampling both at `samples` evenly spaced abscissas.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is 0.
    pub fn mse_against(&self, other: &PiecewiseLinear, samples: usize) -> f64 {
        assert!(samples > 0, "need at least one sample");
        let mut sum = 0.0;
        for i in 0..samples {
            let x = if samples == 1 {
                0.0
            } else {
                i as f64 / (samples - 1) as f64
            };
            let d = self.evaluate(x) - other.evaluate(x);
            sum += d * d;
        }
        sum / samples as f64
    }

    /// Largest slope of any segment. The reference-voltage hardware has a
    /// bounded voltage swing, so the realizable slope is limited; the HEBS
    /// flow checks this before programming the driver.
    pub fn max_slope(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].y - w[0].y) / (w[1].x - w[0].x))
            .fold(0.0, f64::max)
    }
}

impl PixelTransform for PiecewiseLinear {
    fn evaluate(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        // Find the segment containing x by binary search on the abscissas.
        let points = &self.points;
        if x <= points[0].x {
            return points[0].y;
        }
        if x >= points[points.len() - 1].x {
            return points[points.len() - 1].y;
        }
        let mut lo = 0;
        let mut hi = points.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if points[mid].x <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let a = points[lo];
        let b = points[hi];
        let t = (x - a.x) / (b.x - a.x);
        a.y + t * (b.y - a.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_curve_evaluates_to_input() {
        let id = PiecewiseLinear::identity();
        for i in 0..=20 {
            let x = f64::from(i) / 20.0;
            assert!((id.evaluate(x) - x).abs() < 1e-12);
        }
        assert_eq!(id.segment_count(), 1);
        assert_eq!(id.output_range(), 1.0);
    }

    #[test]
    fn interpolation_between_points() {
        let curve = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.0),
            ControlPoint::new(0.4, 0.8),
            ControlPoint::new(1.0, 1.0),
        ])
        .unwrap();
        assert!((curve.evaluate(0.2) - 0.4).abs() < 1e-12);
        assert!((curve.evaluate(0.7) - 0.9).abs() < 1e-12);
        assert_eq!(curve.evaluate(0.0), 0.0);
        assert_eq!(curve.evaluate(1.0), 1.0);
        assert!((curve.max_slope() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn construction_rejects_bad_input() {
        assert!(matches!(
            PiecewiseLinear::new(vec![ControlPoint::new(0.0, 0.0)]),
            Err(TransformError::TooFewControlPoints { count: 1 })
        ));
        // Not starting at x = 0.
        assert!(PiecewiseLinear::new(vec![
            ControlPoint::new(0.1, 0.0),
            ControlPoint::new(1.0, 1.0),
        ])
        .is_err());
        // Decreasing ordinate.
        assert!(matches!(
            PiecewiseLinear::new(vec![
                ControlPoint::new(0.0, 0.5),
                ControlPoint::new(0.5, 0.4),
                ControlPoint::new(1.0, 1.0),
            ]),
            Err(TransformError::NotMonotone { index: 1 })
        ));
        // Duplicate abscissa.
        assert!(PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.0),
            ControlPoint::new(0.5, 0.5),
            ControlPoint::new(0.5, 0.6),
            ControlPoint::new(1.0, 1.0),
        ])
        .is_err());
        // Out of range coordinate.
        assert!(matches!(
            PiecewiseLinear::new(vec![
                ControlPoint::new(0.0, -0.1),
                ControlPoint::new(1.0, 1.0),
            ]),
            Err(TransformError::PointOutOfRange { index: 0 })
        ));
        // NaN coordinate.
        assert!(PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, f64::NAN),
            ControlPoint::new(1.0, 1.0),
        ])
        .is_err());
    }

    #[test]
    fn from_samples_forces_monotonicity() {
        // A slightly decreasing function gets clamped into a monotone curve.
        let curve = PiecewiseLinear::from_samples(11, |x| if x < 0.5 { 0.6 } else { 0.5 });
        let mut prev = 0.0;
        for p in curve.points() {
            assert!(p.y >= prev);
            prev = p.y;
        }
    }

    #[test]
    fn from_samples_matches_function() {
        let curve = PiecewiseLinear::from_samples(101, |x| x * x);
        // Piecewise-linear interpolation of x² on 101 samples is accurate to
        // about (Δx)²/8 ≈ 1.25e-5.
        for i in 0..=50 {
            let x = f64::from(i) / 50.0;
            assert!((curve.evaluate(x) - x * x).abs() < 1e-4);
        }
    }

    #[test]
    fn mse_between_identical_curves_is_zero() {
        let a = PiecewiseLinear::from_samples(17, |x| x.sqrt());
        assert_eq!(a.mse_against(&a, 100), 0.0);
    }

    #[test]
    fn mse_between_identity_and_constant_half() {
        let id = PiecewiseLinear::identity();
        let flat = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.5),
            ControlPoint::new(1.0, 0.5),
        ])
        .unwrap();
        // ∫ (x - 1/2)² dx = 1/12 ≈ 0.0833.
        let mse = id.mse_against(&flat, 10_001);
        assert!((mse - 1.0 / 12.0).abs() < 1e-3);
    }

    #[test]
    fn evaluate_clamps_inputs() {
        let curve = PiecewiseLinear::identity();
        assert_eq!(curve.evaluate(-3.0), 0.0);
        assert_eq!(curve.evaluate(42.0), 1.0);
    }

    #[test]
    fn lut_compilation_is_monotone() {
        let curve = PiecewiseLinear::from_samples(32, |x| x.powf(0.4));
        assert!(curve.to_lut().is_monotone());
    }

    #[test]
    fn output_range_of_compressive_curve() {
        let curve = PiecewiseLinear::new(vec![
            ControlPoint::new(0.0, 0.3),
            ControlPoint::new(1.0, 0.7),
        ])
        .unwrap();
        assert!((curve.output_range() - 0.4).abs() < 1e-12);
        assert_eq!(curve.y_min(), 0.3);
        assert_eq!(curve.y_max(), 0.7);
    }

    #[test]
    fn control_point_from_tuple() {
        let p: ControlPoint = (0.25, 0.5).into();
        assert_eq!(p.x, 0.25);
        assert_eq!(p.y, 0.5);
    }
}
