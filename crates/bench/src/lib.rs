//! Shared infrastructure for the HEBS benchmark harness.
//!
//! Every table and figure of the paper's evaluation section has a dedicated
//! binary under `src/bin/` (see `DESIGN.md` for the experiment index); this
//! library hosts the pieces they share: the benchmark suite wrapper, the
//! experiment runners, the paper's reference numbers and a small text-table
//! formatter so all harnesses print in the same style.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod loadgen;
pub mod regression;
pub mod table;

pub use experiments::{
    characterize_workload, run_baseline_comparison, run_characterization, run_figure8,
    run_fit_scaling, run_frame_scaling, run_mixed_suite, run_runtime_throughput, run_table1,
    run_warm_start, verify_cache_invariants, warm_start_engine, BaselineComparison, Figure8Row,
    FitScalingRow, FrameScalingRow, MixedSuiteReport, RuntimeThroughputRow, Table1Report,
    Table1Row, WarmStartNode, WarmStartReport, FRAME_SCALING_SIZES,
};
pub use json::{
    fit_scaling_json, frame_scaling_json, multi_tenant_json, runtime_throughput_json,
    warm_start_json,
};
pub use loadgen::{
    bursty_scenario, diurnal_scenario, run_overload_isolation, run_scenario, CountExpectation,
    IsolationReport, LoadScenario, ScenarioReport, TenantLoad, TenantLoadReport,
};
pub use regression::{
    check_fit_scaling, check_frame_scaling, check_multi_tenant, check_throughput, check_warm_start,
    CheckConfig, CheckReport, JsonValue,
};
pub use table::TextTable;

/// The per-image power savings (%) the paper reports in Table 1, in suite
/// order, for distortion budgets of 5 %, 10 % and 20 %.
pub const PAPER_TABLE1: [(&str, [f64; 3]); 19] = [
    ("Lena", [47.53, 58.18, 69.52]),
    ("Autumn", [45.56, 59.20, 71.53]),
    ("football", [46.62, 55.25, 65.57]),
    ("Peppers", [44.60, 54.24, 66.55]),
    ("Greens", [45.63, 55.26, 63.58]),
    ("Pears", [47.51, 57.16, 64.49]),
    ("Onion", [44.56, 58.21, 70.53]),
    ("Trees", [46.69, 54.31, 64.62]),
    ("West", [48.52, 61.18, 67.50]),
    ("Pout", [42.57, 53.22, 59.54]),
    ("Sail", [42.53, 49.18, 56.51]),
    ("Splash", [46.55, 57.20, 63.53]),
    ("Girl", [46.55, 55.20, 62.52]),
    ("Baboon", [49.52, 56.10, 62.51]),
    ("TreeA", [41.53, 50.18, 59.52]),
    ("HouseA", [45.49, 58.15, 63.48]),
    ("GirlB", [45.65, 61.28, 62.59]),
    ("Testpat", [47.53, 58.22, 63.54]),
    ("Elaine", [46.53, 55.18, 65.50]),
];

/// The average power savings (%) the paper reports for the three distortion
/// budgets of Table 1.
pub const PAPER_TABLE1_AVERAGE: [f64; 3] = [45.88, 56.16, 64.38];

/// The distortion budgets used by Table 1, as fractions.
pub const TABLE1_BUDGETS: [f64; 3] = [0.05, 0.10, 0.20];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_is_complete() {
        assert_eq!(PAPER_TABLE1.len(), 19);
        // The published per-image savings should average to the published
        // averages (within rounding of the paper's table).
        for budget in 0..3 {
            let mean: f64 = PAPER_TABLE1.iter().map(|(_, row)| row[budget]).sum::<f64>() / 19.0;
            assert!(
                (mean - PAPER_TABLE1_AVERAGE[budget]).abs() < 0.25,
                "budget {budget}: recomputed {mean} vs published {}",
                PAPER_TABLE1_AVERAGE[budget]
            );
        }
    }

    #[test]
    fn budgets_are_increasing_fractions() {
        assert!(TABLE1_BUDGETS.windows(2).all(|w| w[0] < w[1]));
        assert!(TABLE1_BUDGETS.iter().all(|b| (0.0..=1.0).contains(b)));
    }
}
