//! Reusable experiment runners.
//!
//! Each runner reproduces one experiment of the paper's evaluation section
//! and returns plain data; the `src/bin/*` harnesses only format and print
//! it. Keeping the logic here lets the Criterion benches and the integration
//! tests reuse exactly the same code paths.

use std::time::{Duration, Instant};

use hebs_core::{
    pipeline::{evaluate_at_range_scratch, evaluate_range_from_histogram, FitScratch},
    BacklightPolicy, CbcsPolicy, CharacteristicBank, CurveFit, DistortionCharacteristic, DlsPolicy,
    DlsVariant, HebsPolicy, PipelineConfig, TargetRange, DEFAULT_RANGES,
};
use hebs_imaging::{
    synthetic, FrameSequence, GrayImage, Histogram, SceneKind, SipiImage, SipiSuite,
};
use hebs_quality::{DistortionMeasure, GlobalUiqiDistortion};
use hebs_runtime::{
    CacheConfig, Engine, EngineConfig, RecharacterizePolicy, ServeOptions, ServingMode,
    TenantRegistry, TenantSpec,
};

/// One row of the Table 1 reproduction: the savings and measured distortions
/// for a single image at each distortion budget.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark image name.
    pub image: String,
    /// Fractional power saving per budget.
    pub savings: Vec<f64>,
    /// Measured distortion per budget.
    pub distortions: Vec<f64>,
    /// Chosen backlight factor per budget.
    pub betas: Vec<f64>,
}

/// The full Table 1 reproduction.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// The distortion budgets (fractions) the columns correspond to.
    pub budgets: Vec<f64>,
    /// Per-image rows in suite order.
    pub rows: Vec<Table1Row>,
}

impl Table1Report {
    /// Mean fractional saving per budget over all rows.
    pub fn average_savings(&self) -> Vec<f64> {
        if self.rows.is_empty() {
            return vec![0.0; self.budgets.len()];
        }
        let mut sums = vec![0.0f64; self.budgets.len()];
        for row in &self.rows {
            for (i, &s) in row.savings.iter().enumerate() {
                sums[i] += s;
            }
        }
        sums.iter().map(|s| s / self.rows.len() as f64).collect()
    }
}

/// Runs the Table 1 experiment: for every suite image and distortion budget,
/// the closed-loop HEBS policy picks the dimmest admissible setting.
///
/// # Errors
///
/// Propagates pipeline errors from the HEBS policy.
pub fn run_table1(
    suite: &SipiSuite,
    budgets: &[f64],
    config: PipelineConfig,
) -> hebs_core::Result<Table1Report> {
    let policy = HebsPolicy::closed_loop(config);
    let mut rows = Vec::with_capacity(suite.len());
    for (id, image) in suite.iter() {
        let mut savings = Vec::with_capacity(budgets.len());
        let mut distortions = Vec::with_capacity(budgets.len());
        let mut betas = Vec::with_capacity(budgets.len());
        for &budget in budgets {
            let outcome = policy.optimize(image, budget)?;
            savings.push(outcome.power_saving);
            distortions.push(outcome.distortion);
            betas.push(outcome.beta);
        }
        rows.push(Table1Row {
            image: id.name().to_string(),
            savings,
            distortions,
            betas,
        });
    }
    Ok(Table1Report {
        budgets: budgets.to_vec(),
        rows,
    })
}

/// Runs the Figure 7 characterization sweep over the suite and returns the
/// fitted distortion characteristic (the raw scatter is available from the
/// returned value).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn run_characterization(
    suite: &SipiSuite,
    ranges: &[u32],
    config: &PipelineConfig,
) -> hebs_core::Result<DistortionCharacteristic> {
    DistortionCharacteristic::characterize(
        config,
        suite.iter().map(|(id, image)| (id.name(), image)),
        ranges,
    )
}

/// One cell of the Figure 8 reproduction: a sample image evaluated at a
/// fixed target dynamic range.
#[derive(Debug, Clone)]
pub struct Figure8Row {
    /// Benchmark image name.
    pub image: String,
    /// Target dynamic range evaluated.
    pub dynamic_range: u32,
    /// Measured distortion.
    pub distortion: f64,
    /// Fractional power saving.
    pub power_saving: f64,
}

/// Runs the Figure 8 experiment: the six sample images at dynamic ranges 220
/// and 100 (distortion and power saving per cell).
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn run_figure8(
    suite: &SipiSuite,
    config: &PipelineConfig,
) -> hebs_core::Result<Vec<Figure8Row>> {
    let samples = [
        SipiImage::Lena,
        SipiImage::Peppers,
        SipiImage::Splash,
        SipiImage::Trees,
        SipiImage::Girl,
        SipiImage::Baboon,
    ];
    let ranges = [220u32, 100];
    let mut rows = Vec::new();
    for id in samples {
        let image = suite.image(id).expect("suite contains every identifier");
        for range in ranges {
            let target = TargetRange::from_span(range)?;
            let eval = hebs_core::pipeline::evaluate_at_range(config, image, target)?;
            rows.push(Figure8Row {
                image: id.name().to_string(),
                dynamic_range: range,
                distortion: eval.distortion,
                power_saving: eval.power_saving,
            });
        }
    }
    Ok(rows)
}

/// The outcome of comparing all policies on one image.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Benchmark image name.
    pub image: String,
    /// `(policy name, fractional saving, measured distortion)` triples.
    pub results: Vec<(String, f64, f64)>,
}

/// Runs the baseline comparison: HEBS vs CBCS vs both DLS variants at one
/// distortion budget, over the given images.
///
/// # Errors
///
/// Propagates policy errors.
pub fn run_baseline_comparison(
    images: &[(SipiImage, &GrayImage)],
    budget: f64,
    config: PipelineConfig,
) -> hebs_core::Result<Vec<BaselineComparison>> {
    let policies: Vec<Box<dyn BacklightPolicy>> = vec![
        Box::new(HebsPolicy::closed_loop(config)),
        Box::new(CbcsPolicy::new()),
        Box::new(DlsPolicy::new(DlsVariant::ContrastEnhancement)),
        Box::new(DlsPolicy::new(DlsVariant::BrightnessCompensation)),
    ];
    let mut comparisons = Vec::new();
    for (id, image) in images {
        let mut results = Vec::new();
        for policy in &policies {
            let outcome = policy.optimize(image, budget)?;
            results.push((
                policy.name().to_string(),
                outcome.power_saving,
                outcome.distortion,
            ));
        }
        comparisons.push(BaselineComparison {
            image: id.name().to_string(),
            results,
        });
    }
    Ok(comparisons)
}

/// One measured configuration of the runtime throughput comparison.
#[derive(Debug, Clone)]
pub struct RuntimeThroughputRow {
    /// Workload the engine served ("suite" or a video scene kind).
    pub workload: String,
    /// Engine configuration ("single-thread", "pooled", "pooled+cache").
    pub configuration: String,
    /// Worker threads used.
    pub workers: usize,
    /// Number of frames served.
    pub frames: usize,
    /// Wall-clock time for the whole workload.
    pub wall_time: Duration,
    /// Frames per wall-clock second.
    pub throughput_fps: f64,
    /// Mean per-frame serving latency.
    pub mean_latency: Duration,
    /// Median per-frame serving latency.
    pub p50_latency: Duration,
    /// 95th-percentile per-frame serving latency.
    pub p95_latency: Duration,
    /// Fraction of frames served from the transformation cache.
    pub cache_hit_rate: f64,
    /// Bytes resident in the transformation cache after the workload.
    pub cache_bytes: u64,
    /// Misses served by another worker's concurrent fit instead of a
    /// redundant fit (single-flight coalescing).
    pub cache_coalesced: u64,
    /// Cached candidates rejected by verification (distortion recheck or
    /// stored-frame mismatch).
    pub cache_rejected: u64,
    /// Frames that ran a full fit (cache misses, including rejected hits).
    /// `fit_evaluations / cache_misses` is the per-miss fit cost the CI
    /// regression gate enforces (~8 closed-loop, ≤ 1 open-loop).
    pub cache_misses: u64,
    /// Target-range fit evaluations across the workload (cache replays
    /// count zero) — the work the histogram-domain fit path makes
    /// O(levels) and the open-loop mode cuts to one per miss.
    pub fit_evaluations: u64,
    /// Open-loop fits whose measured distortion exceeded the budget and
    /// were re-served through the closed-loop search (0 outside open-loop
    /// mode).
    pub open_loop_fallbacks: u64,
    /// Distortion characteristic rebuilds performed from the rolling
    /// traffic sketch (0 outside open-loop mode).
    pub recharacterizations: u64,
    /// Mean fractional power saving over the workload.
    pub mean_power_saving: f64,
}

impl RuntimeThroughputRow {
    /// Fit evaluations per fitted frame: per cache miss for cached
    /// configurations, per frame for uncached ones (where every frame runs
    /// a fit but no miss is counted). ~8 for the closed-loop search, ≤ 1
    /// for open-loop serving — the ratio the CI regression gate enforces.
    pub fn fit_evaluations_per_miss(&self) -> f64 {
        let denominator = if self.cache_misses > 0 {
            self.cache_misses
        } else {
            self.frames as u64
        };
        if denominator == 0 {
            0.0
        } else {
            self.fit_evaluations as f64 / denominator as f64
        }
    }
}

/// The workloads of the runtime throughput experiment, each paired with the
/// cache configuration a deployment would use for it (exact keying for image
/// traffic with repeats, signature keying for video).
fn runtime_workloads(
    frame_size: u32,
    video_frames: usize,
) -> Vec<(String, CacheConfig, Vec<GrayImage>)> {
    // Heavy image traffic: the whole synthetic SIPI suite, served twice (a
    // production mix always contains repeats — thumbnails, logos, retries).
    let suite = SipiSuite::with_size(frame_size);
    let mut suite_frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    suite_frames.extend(suite.iter().map(|(_, img)| img.clone()));

    // Video traffic: a noisy static scene and a scene cut, the two temporal
    // behaviours that bracket cache behaviour (near-identical frames vs.
    // exact repeats).
    let static_frames: Vec<GrayImage> =
        FrameSequence::new(SceneKind::Static, frame_size, frame_size, video_frames, 17)
            .frames()
            .collect();
    let cut_frames: Vec<GrayImage> = FrameSequence::new(
        SceneKind::SceneCut,
        frame_size,
        frame_size,
        video_frames,
        23,
    )
    .frames()
    .collect();
    vec![
        ("suite x2".to_string(), CacheConfig::exact(), suite_frames),
        (
            "video static".to_string(),
            CacheConfig::approximate(),
            static_frames,
        ),
        (
            "video scene-cut".to_string(),
            CacheConfig::approximate(),
            cut_frames,
        ),
    ]
}

/// The pipeline configuration the open-loop rows serve with: the
/// histogram-capable global UIQI measure, so fits, drift rechecks and
/// re-characterization all run in O(levels).
fn open_loop_pipeline() -> PipelineConfig {
    PipelineConfig::default().with_measure(GlobalUiqiDistortion)
}

/// Characterizes a workload offline (every `stride`-th frame's histogram,
/// swept over the paper's default ranges) — the seed curve an open-loop
/// deployment installs before taking traffic.
///
/// # Errors
///
/// Propagates characterization errors (the measure must be
/// histogram-capable).
pub fn characterize_workload(
    config: &PipelineConfig,
    frames: &[GrayImage],
    stride: usize,
) -> hebs_core::Result<DistortionCharacteristic> {
    let histograms: Vec<Histogram> = frames
        .iter()
        .step_by(stride.max(1))
        .map(Histogram::of)
        .collect();
    DistortionCharacteristic::characterize_from_histograms(config, &histograms, &DEFAULT_RANGES)
}

/// Runs the runtime throughput comparison: single thread vs. a worker pool
/// vs. a worker pool with the transformation cache vs. the histogram-domain
/// fit path vs. open-loop serving, over an image-suite workload and two
/// synthetic video workloads.
///
/// `workers = 0` selects the machine's available parallelism. Video
/// workloads use the approximate (signature-keyed) cache, the image suite
/// the exact one, mirroring how a deployment would configure them. The
/// open-loop engine is seeded with a characteristic of every fourth
/// workload frame, the way a deployment characterizes offline, and keeps
/// the drift-triggered background re-characterization armed.
///
/// # Errors
///
/// Propagates engine construction and serving errors.
pub fn run_runtime_throughput(
    budget: f64,
    frame_size: u32,
    video_frames: usize,
    workers: usize,
) -> hebs_runtime::Result<Vec<RuntimeThroughputRow>> {
    let mut rows = Vec::new();
    for (workload, cache_for_workload, frames) in runtime_workloads(frame_size, video_frames) {
        // Warm-up: a few frames through a throwaway engine take the
        // first-touch costs (page faults, lazy init, CPU ramp-up) off the
        // first timed row, which is what the CI regression gate compares.
        let warmup = Engine::new(
            HebsPolicy::closed_loop(PipelineConfig::default()),
            EngineConfig::sequential(budget),
        )?;
        warmup.process_batch(&frames[..frames.len().min(4)])?;

        // The fourth configuration swaps in a histogram-capable distortion
        // measure (global UIQI): the same pooled, cached engine, but every
        // fit runs in O(levels) instead of O(pixels). The fifth serves
        // open-loop: one fit evaluation per miss instead of a bisection.
        let configurations: Vec<(&str, PipelineConfig, EngineConfig)> = vec![
            (
                "single-thread",
                PipelineConfig::default(),
                EngineConfig::sequential(budget),
            ),
            (
                "pooled",
                PipelineConfig::default(),
                EngineConfig {
                    workers,
                    max_distortion: budget,
                    cache: None,
                    ..EngineConfig::default()
                },
            ),
            (
                "pooled+cache",
                PipelineConfig::default(),
                EngineConfig {
                    workers,
                    max_distortion: budget,
                    cache: Some(cache_for_workload.clone()),
                    ..EngineConfig::default()
                },
            ),
            (
                "histogram-fit",
                open_loop_pipeline(),
                EngineConfig {
                    workers,
                    max_distortion: budget,
                    cache: Some(cache_for_workload.clone()),
                    ..EngineConfig::default()
                },
            ),
            (
                "open-loop",
                open_loop_pipeline(),
                EngineConfig {
                    workers,
                    max_distortion: budget,
                    cache: Some(cache_for_workload.clone()),
                    mode: ServingMode::OpenLoop {
                        recharacterize: RecharacterizePolicy {
                            interval: None,
                            drift_limit: Some(8),
                            ..RecharacterizePolicy::default()
                        },
                    },
                    ..EngineConfig::default()
                },
            ),
        ];
        for (name, pipeline, config) in configurations {
            let open_loop = matches!(config.mode, ServingMode::OpenLoop { .. });
            let engine = Engine::new(HebsPolicy::closed_loop(pipeline), config)?;
            if open_loop {
                let seed = characterize_workload(&open_loop_pipeline(), &frames, 4)
                    .map_err(hebs_runtime::RuntimeError::Core)?;
                engine.install_characteristic(seed)?;
            }
            let report = engine.process_batch(&frames)?;
            let stats = engine.stats();
            rows.push(RuntimeThroughputRow {
                workload: workload.clone(),
                configuration: name.to_string(),
                workers: engine.workers(),
                frames: report.frames(),
                wall_time: report.wall_time,
                throughput_fps: report.throughput_fps(),
                mean_latency: report.mean_latency(),
                p50_latency: report.latency_quantile(0.50),
                p95_latency: report.latency_quantile(0.95),
                cache_hit_rate: report.cache_hit_rate(),
                cache_bytes: stats.cache_bytes,
                cache_coalesced: stats.cache_coalesced,
                cache_rejected: stats.cache_rejected,
                cache_misses: stats.cache_misses,
                fit_evaluations: stats.fit_evaluations,
                open_loop_fallbacks: stats.open_loop_fallbacks,
                recharacterizations: stats.recharacterizations,
                mean_power_saving: report.mean_power_saving(),
            });
        }
    }
    Ok(rows)
}

/// The mixed-suite open-loop savings comparison: how much backlight each
/// open-loop strategy recovers on heterogeneous traffic, against the
/// closed-loop (per-frame search) reference.
///
/// Every quantity is deterministic (synthetic suite, single worker, no
/// background rebuilds), so the savings — unlike latencies — are
/// machine-independent and CI-gateable.
#[derive(Debug, Clone)]
pub struct MixedSuiteReport {
    /// Distortion budget every engine served with.
    pub budget: f64,
    /// Frames in the mixed workload.
    pub frames: usize,
    /// Content classes the characteristic bank actually built (clustering
    /// may collapse duplicates below the requested count).
    pub classes: usize,
    /// Mean fractional saving of the closed-loop search — the ceiling.
    pub closed_loop_saving: f64,
    /// Mean saving of the classic single worst-case curve (refuses to dim
    /// on mixed traffic — the motivating ~0%).
    pub worst_case_saving: f64,
    /// Mean saving of the single p95 envelope curve — the cheap half-step.
    pub envelope_saving: f64,
    /// Mean saving of the per-class bank (p95 envelope fit per class — the
    /// two mechanisms compose: clustering removes the cross-shape veto, the
    /// envelope removes the within-class outlier veto).
    pub per_class_saving: f64,
    /// Drift fallbacks the per-class engine needed to hold the contract.
    pub per_class_fallbacks: u64,
    /// Fit evaluations per cache miss of the per-class engine (the ≤ 1
    /// open-loop economics, fallback searches included).
    pub per_class_evals_per_miss: f64,
}

impl MixedSuiteReport {
    /// Fraction of the closed-loop saving the per-class bank recovers
    /// (0 when the closed loop itself saves nothing).
    pub fn per_class_recovery(&self) -> f64 {
        if self.closed_loop_saving <= 0.0 {
            0.0
        } else {
            self.per_class_saving / self.closed_loop_saving
        }
    }
}

/// Runs the mixed-suite savings comparison: the full (heterogeneous)
/// synthetic SIPI suite served closed-loop, open-loop off a single
/// worst-case curve, off a single p95-envelope curve, and off a
/// signature-clustered per-class bank of up to `classes` worst-case curves.
///
/// All engines run one worker with background re-characterization disabled,
/// so the comparison is a pure function of the curves (the per-serve drift
/// fallback stays armed — the distortion contract holds in every row).
///
/// # Errors
///
/// Propagates engine construction, characterization and serving errors.
pub fn run_mixed_suite(
    budget: f64,
    frame_size: u32,
    classes: usize,
) -> hebs_runtime::Result<MixedSuiteReport> {
    let pipeline = open_loop_pipeline();
    let suite = SipiSuite::with_size(frame_size);
    let frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    let histograms: Vec<Histogram> = frames.iter().map(Histogram::of).collect();

    let closed = Engine::new(
        HebsPolicy::closed_loop(pipeline.clone()),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )?;
    let closed_loop_saving = closed.process_batch(&frames)?.mean_power_saving();

    // One pooled characterization serves both single-curve rows: a
    // DistortionCharacteristic carries all three fits, only the lookup
    // selection differs.
    let pooled = DistortionCharacteristic::characterize_from_histograms(
        &pipeline,
        &histograms,
        &DEFAULT_RANGES,
    )
    .map_err(hebs_runtime::RuntimeError::Core)?;

    let serve_open = |fit: CurveFit,
                      bank: Option<CharacteristicBank>|
     -> hebs_runtime::Result<(f64, hebs_runtime::EngineStats)> {
        let engine = Engine::new(
            HebsPolicy::closed_loop(pipeline.clone()),
            EngineConfig {
                workers: 1,
                max_distortion: budget,
                cache: Some(CacheConfig::exact()),
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: None,
                        fit,
                        classes: bank.as_ref().map_or(1, CharacteristicBank::len),
                        ..RecharacterizePolicy::default()
                    },
                },
                ..EngineConfig::default()
            },
        )?;
        match bank {
            Some(bank) => {
                engine.install_bank(bank)?;
            }
            None => {
                engine.install_characteristic(pooled.clone())?;
            }
        }
        let report = engine.process_batch(&frames)?;
        Ok((report.mean_power_saving(), engine.stats()))
    };

    let (worst_case_saving, _) = serve_open(CurveFit::WorstCase, None)?;
    let (envelope_saving, _) = serve_open(CurveFit::Envelope, None)?;
    let bank = CharacteristicBank::build(&pipeline, &histograms, &DEFAULT_RANGES, classes)
        .map_err(hebs_runtime::RuntimeError::Core)?;
    let built_classes = bank.len();
    let (per_class_saving, per_class_stats) = serve_open(CurveFit::Envelope, Some(bank))?;
    let per_class_evals_per_miss = if per_class_stats.cache_misses == 0 {
        0.0
    } else {
        per_class_stats.fit_evaluations as f64 / per_class_stats.cache_misses as f64
    };

    Ok(MixedSuiteReport {
        budget,
        frames: frames.len(),
        classes: built_classes,
        closed_loop_saving,
        worst_case_saving,
        envelope_saving,
        per_class_saving,
        per_class_fallbacks: per_class_stats.open_loop_fallbacks,
        per_class_evals_per_miss,
    })
}

/// One row of the fit-latency-versus-frame-size experiment.
#[derive(Debug, Clone)]
pub struct FitScalingRow {
    /// Linear scale factor over the base frame edge (pixels scale with its
    /// square: 1x, 4x, 9x, 16x …).
    pub scale: u32,
    /// Frame edge in pixels (frames are square).
    pub width: u32,
    /// Total pixels per frame.
    pub pixels: usize,
    /// Mean latency of one histogram-domain fit (level space, O(levels)).
    pub histogram_fit: Duration,
    /// Mean latency of the same global measure forced down the pixel path
    /// (the pre-refactor behaviour, O(pixels)).
    pub pixel_fit: Duration,
    /// Mean latency of a fit under the paper's windowed HVS + SSIM measure
    /// (inherently pixel-bound).
    pub windowed_fit: Duration,
}

/// Global UIQI forced down the pixel path: identical numbers to
/// [`GlobalUiqiDistortion`], but it declines the histogram-domain entry
/// point — the "old path" comparator of the fit-scaling experiment.
#[derive(Debug, Clone, Copy)]
struct PixelPathUiqi;

impl DistortionMeasure for PixelPathUiqi {
    fn distortion(&self, original: &GrayImage, transformed: &GrayImage) -> f64 {
        GlobalUiqiDistortion.distortion(original, transformed)
    }

    fn name(&self) -> &'static str {
        "uiqi-global-pixel"
    }
}

/// Measures fit latency against frame size: the histogram-domain path
/// (flat — it never reads a pixel), the same measure through the pixel
/// path, and the windowed default (both scaling with the pixel count).
///
/// Each row times `repeats` fits at each of three target ranges on a
/// synthetic frame of edge `base × scale` and reports the mean per-fit
/// latency.
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn run_fit_scaling(
    base: u32,
    scales: &[u32],
    repeats: usize,
) -> hebs_core::Result<Vec<FitScalingRow>> {
    let spans = [220u32, 160, 100];
    let histogram_config = PipelineConfig::default().with_measure(GlobalUiqiDistortion);
    let pixel_config = PipelineConfig::default().with_measure(PixelPathUiqi);
    let windowed_config = PipelineConfig::default();
    let mut rows = Vec::new();
    for &scale in scales {
        let width = base * scale;
        let image = synthetic::still_life(width, width, 7);
        let histogram = Histogram::of(&image);
        let mut scratch = FitScratch::default();

        // Warm every path once so first-touch effects are off the clock.
        for &span in &spans {
            let target = TargetRange::from_span(span)?;
            evaluate_range_from_histogram(&histogram_config, &histogram, target)?
                .expect("global UIQI is histogram-capable");
            evaluate_at_range_scratch(&pixel_config, &image, &histogram, target, &mut scratch)?;
            evaluate_at_range_scratch(&windowed_config, &image, &histogram, target, &mut scratch)?;
        }

        let fits = (repeats.max(1) * spans.len()) as u32;
        let started = Instant::now();
        for _ in 0..repeats.max(1) {
            for &span in &spans {
                let target = TargetRange::from_span(span)?;
                evaluate_range_from_histogram(&histogram_config, &histogram, target)?;
            }
        }
        let histogram_fit = started.elapsed() / fits;

        let started = Instant::now();
        for _ in 0..repeats.max(1) {
            for &span in &spans {
                let target = TargetRange::from_span(span)?;
                evaluate_at_range_scratch(&pixel_config, &image, &histogram, target, &mut scratch)?;
            }
        }
        let pixel_fit = started.elapsed() / fits;

        let started = Instant::now();
        for _ in 0..repeats.max(1) {
            for &span in &spans {
                let target = TargetRange::from_span(span)?;
                evaluate_at_range_scratch(
                    &windowed_config,
                    &image,
                    &histogram,
                    target,
                    &mut scratch,
                )?;
            }
        }
        let windowed_fit = started.elapsed() / fits;

        rows.push(FitScalingRow {
            scale,
            width,
            pixels: width as usize * width as usize,
            histogram_fit,
            pixel_fit,
            windowed_fit,
        });
    }
    Ok(rows)
}

/// One row of the serve-latency-versus-frame-resolution experiment.
#[derive(Debug, Clone)]
pub struct FrameScalingRow {
    /// Human-readable resolution name ("32x32", "480p", "1080p", "4K").
    pub label: &'static str,
    /// Frame width in pixels.
    pub width: u32,
    /// Frame height in pixels.
    pub height: u32,
    /// Total pixels per frame.
    pub pixels: usize,
    /// Mean end-to-end serve latency on an exact-cache **miss** (fused
    /// ingest + histogram-domain fit + one LUT materialize).
    pub serve_miss: Duration,
    /// Mean end-to-end serve latency on an exact-cache **hit** (the fused
    /// ingest is the only per-pixel work left).
    pub serve_hit: Duration,
    /// Mean latency of one serial fused ingest pass.
    pub ingest_serial: Duration,
    /// Mean latency of one fused ingest fanned out across the machine's
    /// available workers (equals the serial pass on a 1-CPU machine).
    pub ingest_parallel: Duration,
    /// Mean latency of one strip-vectorized LUT apply into a reused buffer.
    pub lut_apply: Duration,
}

/// The resolutions the frame-scaling experiment serves, 32×32 to 4K.
pub const FRAME_SCALING_SIZES: [(&str, u32, u32); 4] = [
    ("32x32", 32, 32),
    ("480p", 854, 480),
    ("1080p", 1920, 1080),
    ("4K", 3840, 2160),
];

/// Measures end-to-end serve latency against real frame resolutions.
///
/// The fit itself is histogram-domain (O(candidates × 256), flat — see
/// [`run_fit_scaling`]); what grows with resolution is the per-pixel work
/// around it. This experiment pins how that per-pixel work is spent: one
/// fused ingest pass (histogram + signature + content hash) per serve, one
/// strip-vectorized LUT apply per miss, and nothing else. Each row serves
/// an engine with an exact cache and the histogram-capable global-UIQI
/// measure on the calling thread, timing misses (distinct frames) and hits
/// (repeats of one frame) separately, then times the ingest and apply
/// primitives in isolation — serially and fanned out across
/// [`available_ingest_workers`](hebs_imaging::available_ingest_workers).
///
/// # Errors
///
/// Propagates engine construction and serve errors.
pub fn run_frame_scaling(
    sizes: &[(&'static str, u32, u32)],
    repeats: usize,
) -> hebs_runtime::Result<Vec<FrameScalingRow>> {
    let repeats = repeats.max(1);
    let workers = hebs_imaging::available_ingest_workers();
    let mut rows = Vec::new();
    for &(label, width, height) in sizes {
        let policy =
            HebsPolicy::closed_loop(PipelineConfig::default().with_measure(GlobalUiqiDistortion));
        let engine = Engine::new(
            policy,
            EngineConfig {
                workers: 1,
                // Unbounded bytes: eviction noise is not what this measures.
                cache: Some(CacheConfig::exact().with_byte_budget(None)),
                ..EngineConfig::default()
            },
        )?;
        let base = synthetic::still_life(width, height, 7);

        // Distinct frames for the miss path: flip one pixel per clone so
        // every content hash (and thus every exact key) differs while the
        // per-pixel cost stays identical.
        let misses: Vec<GrayImage> = (0..repeats)
            .map(|i| {
                let mut frame = base.clone();
                let pixels = frame.as_raw_mut();
                pixels[i % pixels.len()] ^= 0x55;
                frame
            })
            .collect();

        // Warm the engine (and the allocator) off the clock.
        engine.process_frame(&base)?;

        let started = Instant::now();
        for frame in &misses {
            let result = engine.process_frame(frame)?;
            debug_assert!(!result.cache_hit);
        }
        let serve_miss = started.elapsed() / repeats as u32;

        let started = Instant::now();
        for _ in 0..repeats {
            let result = engine.process_frame(&base)?;
            debug_assert!(result.cache_hit);
        }
        let serve_hit = started.elapsed() / repeats as u32;

        let seed = 0x5eed;
        let ingest = hebs_imaging::FrameIngest::compute(&base, seed);
        let started = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(hebs_imaging::FrameIngest::compute(&base, seed));
        }
        let ingest_serial = started.elapsed() / repeats as u32;

        let started = Instant::now();
        for _ in 0..repeats {
            std::hint::black_box(hebs_imaging::FrameIngest::compute_parallel(
                &base, seed, workers,
            ));
        }
        let ingest_parallel = started.elapsed() / repeats as u32;

        let lut: [u8; 256] = std::array::from_fn(|i| (i as u8).saturating_add(16));
        let mut out = GrayImage::filled(width, height, 0);
        hebs_imaging::apply_lut_into(&base, &lut, &mut out);
        let started = Instant::now();
        for _ in 0..repeats {
            hebs_imaging::apply_lut_into(&base, &lut, &mut out);
        }
        let lut_apply = started.elapsed() / repeats as u32;
        std::hint::black_box(&out);
        std::hint::black_box(ingest);

        rows.push(FrameScalingRow {
            label,
            width,
            height,
            pixels: width as usize * height as usize,
            serve_miss,
            serve_hit,
            ingest_serial,
            ingest_parallel,
            lut_apply,
        });
    }
    Ok(rows)
}

/// Smoke-checks the transformation cache's contract so regressions fail a
/// CI build instead of only showing up in offline bench numbers:
///
/// * exact-mode repeats are all hits on the second pass and the
///   [`ShardedLru`](hebs_runtime::ShardedLru) counters agree with
///   [`EngineStats`](hebs_runtime::EngineStats) exactly;
/// * resident bytes stay within the configured byte budget (and are
///   nonzero once fits are cached);
/// * a concurrent same-key miss storm runs exactly one fit (single
///   flight);
/// * open-loop serving with a seeded characteristic averages ≤ 1 fit
///   evaluation per cache miss (the closed-loop bisection takes ~8),
///   honours the distortion budget, and invalidates cached fits when the
///   characteristic generation changes;
/// * tenants sharing one cache stay partitioned: tenant-tagged keys are
///   never replayed across tenants, a flooding tenant's residency stays
///   within its weighted byte slice, and a quiet tenant's entries survive
///   the neighbour's flood.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn verify_cache_invariants(frame_size: u32) -> Result<(), String> {
    let fail = |what: &str| Err(what.to_string());

    // Exact-mode repeats: serve the suite twice through a byte-budgeted
    // cache.
    let byte_budget = 8 << 20;
    let engine = Engine::new(
        HebsPolicy::closed_loop(PipelineConfig::default()),
        EngineConfig {
            workers: 2,
            cache: Some(CacheConfig::exact().with_byte_budget(Some(byte_budget))),
            ..EngineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let suite = SipiSuite::with_size(frame_size);
    let frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    engine.process_batch(&frames).map_err(|e| e.to_string())?;
    let warm = engine.process_batch(&frames).map_err(|e| e.to_string())?;
    if warm.cache_hit_rate() < 1.0 {
        return fail("exact cache: second pass over identical frames was not all hits");
    }
    let stats = engine.stats();
    if stats.cache_hits + stats.cache_misses != stats.frames {
        return fail("exact cache: hits + misses != frames served");
    }
    if stats.cache_bytes == 0 {
        return fail("exact cache: no bytes resident after caching fits");
    }
    if stats.cache_bytes > byte_budget as u64 {
        return fail("exact cache: resident bytes exceed the configured byte budget");
    }
    let counters = engine
        .cache_counters()
        .ok_or_else(|| "exact cache: counters unavailable".to_string())?;
    if counters.hits != stats.cache_hits
        || counters.misses != stats.cache_misses
        || counters.rejections != stats.cache_rejected
        || counters.coalesced != stats.cache_coalesced
    {
        return fail("exact cache: ShardedLru counters drifted from EngineStats");
    }

    // Single flight: a barrier-synchronized same-key miss storm must run
    // exactly one fit.
    let engine = Engine::new(
        HebsPolicy::closed_loop(PipelineConfig::default()),
        EngineConfig {
            workers: 1,
            cache: Some(CacheConfig::exact()),
            ..EngineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let frame = frames[0].clone();
    let storm = 4;
    let barrier = std::sync::Barrier::new(storm);
    std::thread::scope(|scope| {
        for _ in 0..storm {
            scope.spawn(|| {
                barrier.wait();
                engine.process_frame(&frame).expect("serve succeeds");
            });
        }
    });
    let stats = engine.stats();
    if stats.cache_misses != 1 {
        return Err(format!(
            "single flight: {} fits ran for one key under a {storm}-thread miss storm",
            stats.cache_misses
        ));
    }
    if stats.cache_hits != storm as u64 - 1 {
        return fail("single flight: waiters were not served from the cache");
    }
    // (Whether a waiter counts as *coalesced* or as a plain hit depends on
    // whether its first probe beat the leader's insert — scheduler-
    // dependent, so not asserted here; the coalesced accounting itself is
    // pinned deterministically by the runtime crate's unit tests.)
    let counters = engine
        .cache_counters()
        .ok_or_else(|| "single flight: counters unavailable".to_string())?;
    if counters.hits != stats.cache_hits
        || counters.misses != stats.cache_misses
        || counters.coalesced != stats.cache_coalesced
    {
        return fail("single flight: ShardedLru counters drifted from EngineStats");
    }

    // Open-loop serving: with a seeded characteristic, every miss must
    // average at most one fit evaluation, the budget must still hold, and
    // a characteristic swap must invalidate previously cached fits.
    let budget = 0.10;
    let engine = Engine::new(
        HebsPolicy::closed_loop(open_loop_pipeline()),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy::default(),
            },
            ..EngineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let seed = characterize_workload(&open_loop_pipeline(), &frames, 1)
        .map_err(|e| format!("open loop: seed characterization failed: {e}"))?;
    engine
        .install_characteristic(seed)
        .map_err(|e| e.to_string())?;
    for frame in &frames {
        let result = engine.process_frame(frame).map_err(|e| e.to_string())?;
        if result.outcome.distortion > budget + 1e-9 {
            return Err(format!(
                "open loop: distortion {} exceeds the {budget} budget",
                result.outcome.distortion
            ));
        }
    }
    let stats = engine.stats();
    if stats.cache_misses == 0 {
        return fail("open loop: a cold pass must miss");
    }
    if stats.fit_evaluations > stats.cache_misses {
        return Err(format!(
            "open loop: {} fit evaluations for {} misses (must average ≤ 1 per miss)",
            stats.fit_evaluations, stats.cache_misses
        ));
    }
    // Swap in a freshly characterized curve: the generation tag must turn
    // previously cached fits into misses instead of replaying stale fits.
    let reseed =
        characterize_workload(&open_loop_pipeline(), &frames, 1).map_err(|e| e.to_string())?;
    engine
        .install_characteristic(reseed)
        .map_err(|e| e.to_string())?;
    let after_swap = engine
        .process_frame(&frames[0])
        .map_err(|e| e.to_string())?;
    if after_swap.cache_hit {
        return fail("open loop: a characteristic swap must invalidate cached fits");
    }

    // Per-class open-loop serving: with a signature-clustered bank built on
    // the suite's own traffic, the ≤ 1 evaluation/miss economics and the
    // distortion contract must both hold — and the bank must recover
    // dimming the single worst-case curve refuses (its saving on this
    // heterogeneous suite is ~0).
    let classes = 6;
    let engine = Engine::new(
        HebsPolicy::closed_loop(open_loop_pipeline()),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    classes,
                    fit: hebs_core::CurveFit::Envelope,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let histograms: Vec<Histogram> = frames.iter().map(Histogram::of).collect();
    let bank = hebs_core::CharacteristicBank::build(
        &open_loop_pipeline(),
        &histograms,
        &hebs_core::DEFAULT_RANGES,
        classes,
    )
    .map_err(|e| format!("per-class bank: characterization failed: {e}"))?;
    engine.install_bank(bank).map_err(|e| e.to_string())?;
    let report = engine.process_batch(&frames).map_err(|e| e.to_string())?;
    for result in &report.results {
        if result.outcome.distortion > budget + 1e-9 {
            return Err(format!(
                "per-class bank: distortion {} exceeds the {budget} budget",
                result.outcome.distortion
            ));
        }
    }
    let stats = engine.stats();
    if stats.cache_misses == 0 {
        return fail("per-class bank: a cold pass must miss");
    }
    if stats.fit_evaluations > stats.cache_misses {
        return Err(format!(
            "per-class bank: {} fit evaluations for {} misses (must average ≤ 1 per miss)",
            stats.fit_evaluations, stats.cache_misses
        ));
    }
    if report.mean_power_saving() <= 0.0 {
        return fail("per-class bank: mixed traffic must recover a nonzero saving");
    }

    // Tenant partition: two tenants sharing one cache must never replay
    // each other's fits, a flooding tenant must stay within its weighted
    // byte slice, and a quiet tenant's cached entries must survive the
    // neighbour's flood.
    let tenant_budget = 64 << 10;
    let registry = TenantRegistry::builder()
        .with_cache(CacheConfig {
            shards: 1,
            ..CacheConfig::exact().with_byte_budget(Some(tenant_budget))
        })
        .tenant(
            HebsPolicy::closed_loop(PipelineConfig::default()),
            TenantSpec::named("quiet"),
        )
        .tenant(
            HebsPolicy::closed_loop(PipelineConfig::default()),
            TenantSpec::named("noisy"),
        )
        .build()
        .map_err(|e| e.to_string())?;
    let ids: Vec<_> = registry.ids().collect();
    let (quiet, noisy) = (ids[0], ids[1]);
    let options = ServeOptions::default();
    // The quiet tenant caches one fit; the noisy tenant serving the same
    // frame must miss (tenant-tagged keys — no cross-tenant replay).
    registry
        .serve(quiet, &frames[0], &options)
        .map_err(|e| e.to_string())?;
    let replayed = registry
        .serve(noisy, &frames[0], &options)
        .map_err(|e| e.to_string())?;
    if replayed.cache_hit {
        return fail("tenant partition: a tenant replayed another tenant's cached fit");
    }
    let quiet_bytes_before = registry
        .stats(quiet)
        .map_err(|e| e.to_string())?
        .cache_bytes;
    // Flood the noisy tenant with distinct frames: its slice of the byte
    // budget (half, at equal weights) caps its residency.
    for seed in 0..256 {
        let frame = synthetic::noise_texture(frame_size, frame_size, 1, 0, 255, 9000 + seed);
        registry
            .serve(noisy, &frame, &options)
            .map_err(|e| e.to_string())?;
    }
    let noisy_bytes = registry
        .stats(noisy)
        .map_err(|e| e.to_string())?
        .cache_bytes;
    if noisy_bytes > (tenant_budget / 2) as u64 {
        return Err(format!(
            "tenant partition: flooding tenant holds {noisy_bytes} bytes, beyond its \
             {}-byte slice",
            tenant_budget / 2
        ));
    }
    let quiet_stats = registry.stats(quiet).map_err(|e| e.to_string())?;
    if quiet_stats.cache_bytes != quiet_bytes_before {
        return fail("tenant partition: a neighbour's flood changed the quiet tenant's bytes");
    }
    let warm = registry
        .serve(quiet, &frames[0], &options)
        .map_err(|e| e.to_string())?;
    if !warm.cache_hit {
        return fail("tenant partition: the quiet tenant's entry did not survive the flood");
    }
    Ok(())
}

/// One node's serve economics in the warm-start experiment.
#[derive(Debug, Clone)]
pub struct WarmStartNode {
    /// Node role: "canary", "cold" or "warm".
    pub node: String,
    /// Frames the node served.
    pub frames: usize,
    /// Fit evaluations charged to the node's *first cache miss* — the
    /// serve-#1 economics the warm-start tier exists to fix (≤ 1 warm,
    /// a full closed-loop search cold).
    pub first_miss_evaluations: u64,
    /// Serves before the first ≤ 1-evaluation miss (0 for a warm node:
    /// its very first miss is already a single characteristic lookup).
    pub recovery_serves: usize,
    /// Total fit evaluations over the node's traffic.
    pub fit_evaluations: u64,
    /// Cache misses over the node's traffic.
    pub cache_misses: u64,
    /// Cache hits over the node's traffic (a warm node replays the
    /// canary's spilled fits; a cold node re-fits them).
    pub cache_hits: u64,
    /// Characteristic (re)builds the node ran from its own traffic sketch
    /// (a cold node bootstraps at least once; a warm node never does).
    pub recharacterizations: u64,
    /// Mean fractional power saving over the node's traffic.
    pub mean_power_saving: f64,
}

/// The warm-start experiment: one canary characterizes and snapshots, a
/// cold node re-learns from scratch, a warm node restores the snapshot.
#[derive(Debug, Clone)]
pub struct WarmStartReport {
    /// Distortion budget every node served with.
    pub budget: f64,
    /// Characteristic classes in the canary's bank.
    pub classes: usize,
    /// Serialized snapshot size in bytes.
    pub snapshot_bytes: usize,
    /// Hot-cache entries the warm node re-admitted from the spill.
    pub cache_restored: usize,
    /// Spilled entries the warm node skipped (shape mismatch, dead
    /// generation).
    pub cache_skipped: usize,
    /// Per-node rows: canary, cold, warm.
    pub nodes: Vec<WarmStartNode>,
}

/// The open-loop engine shape every node of the warm-start experiment
/// runs: one worker, exact cache, multi-class bank slot, p95-envelope
/// curve lookups (the fit the mixed-suite experiment shows recovers real
/// savings on heterogeneous traffic — a single worst-case curve refuses
/// to dim). `interval` arms the periodic rebuild trigger: the cold node
/// keeps it armed (it *needs* the bootstrap recharacterization to become
/// serviceable), the canary and warm nodes disarm it so their counters
/// are a pure function of the installed bank.
/// Builds the single-worker open-loop engine the warm-start experiments
/// (and the CI snapshot round-trip harness) share: exact cache, envelope
/// fit, `classes` content classes, and an optional periodic
/// recharacterization `interval` (None leaves the node entirely dependent
/// on whatever bank it is given — the warm-restore configuration).
///
/// # Errors
///
/// Propagates engine construction failures.
pub fn warm_start_engine(
    budget: f64,
    classes: usize,
    interval: Option<u64>,
) -> hebs_runtime::Result<Engine> {
    Engine::new(
        HebsPolicy::closed_loop(open_loop_pipeline()),
        EngineConfig {
            workers: 1,
            max_distortion: budget,
            cache: Some(CacheConfig::exact()),
            mode: ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval,
                    drift_limit: None,
                    sample_period: 1,
                    fit: CurveFit::Envelope,
                    classes,
                    ..RecharacterizePolicy::default()
                },
            },
            ..EngineConfig::default()
        },
    )
}

/// Serves `frames` one at a time, watching the per-serve fit-evaluation
/// deltas, and summarizes the node's economics.
fn serve_node(
    engine: &Engine,
    node: &str,
    frames: &[GrayImage],
) -> hebs_runtime::Result<WarmStartNode> {
    let mut first_miss_evaluations = None;
    let mut recovery_serves = None;
    let mut savings = 0.0;
    for (index, frame) in frames.iter().enumerate() {
        let before = engine.stats().fit_evaluations;
        let result = engine.process_frame(frame)?;
        let evaluations = engine.stats().fit_evaluations - before;
        savings += result.outcome.power_saving;
        if !result.cache_hit {
            if first_miss_evaluations.is_none() {
                first_miss_evaluations = Some(evaluations);
            }
            if recovery_serves.is_none() && evaluations <= 1 {
                recovery_serves = Some(index);
            }
        }
    }
    let stats = engine.stats();
    Ok(WarmStartNode {
        node: node.to_string(),
        frames: frames.len(),
        first_miss_evaluations: first_miss_evaluations.unwrap_or(0),
        recovery_serves: recovery_serves.unwrap_or(frames.len()),
        fit_evaluations: stats.fit_evaluations,
        cache_misses: stats.cache_misses,
        cache_hits: stats.cache_hits,
        recharacterizations: stats.recharacterizations,
        mean_power_saving: if frames.is_empty() {
            0.0
        } else {
            savings / frames.len() as f64
        },
    })
}

/// Runs the warm-start comparison: a canary node characterizes a
/// multi-class bank offline, serves its own traffic (filling the exact
/// cache) and snapshots bank + hot-cache spill to bytes; a cold fleet
/// node then takes day-2 traffic from scratch (closed-loop fallback until
/// its bootstrap recharacterization lands), while a warm node restores
/// the canary snapshot first and serves the same traffic at open-loop
/// cost from its very first miss. The day-2 stream ends with a replay of
/// canary frames, which the warm node serves from the restored spill.
///
/// Everything gated on this report is machine-independent: counters and
/// savings over deterministic synthetic traffic on single-worker engines.
///
/// # Errors
///
/// Propagates engine construction, characterization, snapshot and serving
/// errors.
pub fn run_warm_start(
    budget: f64,
    frame_size: u32,
    day2_frames: usize,
) -> hebs_runtime::Result<WarmStartReport> {
    const CLASSES: usize = 2;
    const REPLAY_TAIL: usize = 4;
    /// The cold node's periodic rebuild interval: its bootstrap lands
    /// after this many serves (once the sketch holds enough histograms to
    /// cluster), which is exactly the recovery window the warm node skips.
    const COLD_INTERVAL: u64 = 4;

    // Canary traffic: the synthetic suite. Day-2 traffic: the same suite
    // regenerated at shifted sizes — every frame is a distinct exact-cache
    // key, but the histogram *shapes* (and therefore the content classes)
    // match what the canary characterized. The stream ends with a replay
    // of the canary's own first frames, which only a restored spill can
    // serve as hits.
    let suite = SipiSuite::with_size(frame_size);
    let canary_frames: Vec<GrayImage> = suite.iter().map(|(_, img)| img.clone()).collect();
    let mut day2: Vec<GrayImage> = Vec::with_capacity(day2_frames + REPLAY_TAIL);
    let mut shift = 1u32;
    while day2.len() < day2_frames {
        let shifted = SipiSuite::with_size(frame_size + 8 * shift);
        day2.extend(
            shifted
                .iter()
                .map(|(_, img)| img.clone())
                .take(day2_frames - day2.len()),
        );
        shift += 1;
    }
    day2.extend(canary_frames.iter().take(REPLAY_TAIL).cloned());

    // The canary characterizes offline (the documented deployment flow),
    // serves its traffic, and snapshots bank + spill.
    let canary = warm_start_engine(budget, CLASSES, None)?;
    let histograms: Vec<Histogram> = canary_frames.iter().map(Histogram::of).collect();
    let bank =
        CharacteristicBank::build(&open_loop_pipeline(), &histograms, &DEFAULT_RANGES, CLASSES)
            .map_err(hebs_runtime::RuntimeError::Core)?;
    canary.install_bank(bank)?;
    let canary_row = serve_node(&canary, "canary", &canary_frames)?;

    let mut snapshot = Vec::new();
    canary.snapshot_to_writer(&mut snapshot)?;

    // The cold node learns day-2 traffic from nothing: closed-loop
    // fallbacks (and their full fit searches) until its periodic trigger
    // bootstraps a bank from the traffic sketch.
    let cold = warm_start_engine(budget, CLASSES, Some(COLD_INTERVAL))?;
    let cold_row = serve_node(&cold, "cold", &day2)?;

    // The warm node restores the canary's snapshot first and serves the
    // same traffic at open-loop cost from its first miss.
    let warm = warm_start_engine(budget, CLASSES, None)?;
    let report = warm.restore_from_reader(&mut &snapshot[..])?;
    let warm_row = serve_node(&warm, "warm", &day2)?;

    Ok(WarmStartReport {
        budget,
        classes: report.classes,
        snapshot_bytes: snapshot.len(),
        cache_restored: report.cache_restored,
        cache_skipped: report.cache_skipped,
        nodes: vec![canary_row, cold_row, warm_row],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_suite() -> SipiSuite {
        SipiSuite::with_size(48)
    }

    #[test]
    fn cache_invariants_hold() {
        verify_cache_invariants(24).unwrap();
    }

    #[test]
    fn table1_report_has_a_row_per_image_and_budget_columns() {
        let suite = tiny_suite();
        let report = run_table1(&suite, &[0.10], PipelineConfig::default()).unwrap();
        assert_eq!(report.rows.len(), 19);
        assert!(report.rows.iter().all(|r| r.savings.len() == 1));
        let averages = report.average_savings();
        assert_eq!(averages.len(), 1);
        assert!(averages[0] > 0.0);
    }

    #[test]
    fn table1_savings_grow_with_the_budget() {
        let suite = SipiSuite::with_size(48);
        let report = run_table1(&suite, &[0.05, 0.20], PipelineConfig::default()).unwrap();
        let averages = report.average_savings();
        assert!(averages[1] > averages[0]);
    }

    #[test]
    fn figure8_has_two_ranges_for_six_images() {
        let suite = tiny_suite();
        let rows = run_figure8(&suite, &PipelineConfig::default()).unwrap();
        assert_eq!(rows.len(), 12);
        // Range 100 always saves more power than range 220 for the same
        // image (the backlight is dimmer).
        for pair in rows.chunks(2) {
            assert!(pair[1].power_saving > pair[0].power_saving);
        }
    }

    #[test]
    fn baseline_comparison_contains_all_policies() {
        let suite = tiny_suite();
        let images = vec![(
            SipiImage::Lena,
            suite.image(SipiImage::Lena).expect("lena exists"),
        )];
        let comparisons =
            run_baseline_comparison(&images, 0.10, PipelineConfig::default()).unwrap();
        assert_eq!(comparisons.len(), 1);
        assert_eq!(comparisons[0].results.len(), 4);
        let hebs = &comparisons[0].results[0];
        assert_eq!(hebs.0, "hebs");
    }

    #[test]
    fn runtime_throughput_covers_all_workloads_and_configurations() {
        let rows = run_runtime_throughput(0.10, 24, 8, 2).unwrap();
        // 3 workloads x 5 configurations.
        assert_eq!(rows.len(), 15);
        for row in &rows {
            assert!(row.frames > 0);
            assert!(row.throughput_fps > 0.0);
            if row.configuration == "open-loop" {
                // The conservative worst-case curve may refuse to dim at
                // all on heterogeneous traffic (it promises the bound for
                // every characterized image) — saving 0 is legitimate.
                assert!(row.mean_power_saving >= 0.0);
            } else {
                assert!(row.mean_power_saving > 0.0);
            }
            assert!(row.p50_latency <= row.p95_latency);
            assert!(
                row.fit_evaluations > 0,
                "{} {}: every workload runs at least one fit",
                row.workload,
                row.configuration
            );
            match row.configuration.as_str() {
                "single-thread" => assert_eq!(row.workers, 1),
                _ => assert_eq!(row.workers, 2),
            }
        }
        // The headline of the open-loop mode: at most one fit evaluation
        // per cache miss (the drift fallback would push it above 1, and a
        // seeded conservative curve must not drift on its own traffic);
        // the closed-loop rows bisect through several.
        for row in rows.iter().filter(|r| r.configuration == "open-loop") {
            assert!(
                row.cache_misses > 0,
                "{}: cold pass must miss",
                row.workload
            );
            assert!(
                row.fit_evaluations_per_miss() <= 1.0,
                "{}: open-loop averaged {} evaluations per miss",
                row.workload,
                row.fit_evaluations_per_miss()
            );
        }
        for row in rows.iter().filter(|r| r.configuration == "histogram-fit") {
            assert!(
                row.fit_evaluations_per_miss() > 1.5,
                "{}: the closed-loop search should bisect (got {} per miss)",
                row.workload,
                row.fit_evaluations_per_miss()
            );
        }
        // The cached pool sees hits on the workloads with exact repeats
        // (the suite is served twice; the scene cut repeats frames). The
        // noisy static scene only earns hits at realistic frame sizes —
        // at this test's tiny 24x24 frames the sensor noise is large
        // relative to the histogram, so replayed fits fail the engine's
        // distortion guard and are recounted as misses.
        for row in rows
            .iter()
            .filter(|r| r.configuration == "pooled+cache" && r.workload != "video static")
        {
            assert!(
                row.cache_hit_rate > 0.0,
                "{}: expected cache hits, got rate {}",
                row.workload,
                row.cache_hit_rate
            );
        }
        // Uncached configurations never report hits.
        for row in rows
            .iter()
            .filter(|r| r.configuration == "single-thread" || r.configuration == "pooled")
        {
            assert_eq!(row.cache_hit_rate, 0.0);
        }
    }

    #[test]
    fn mixed_suite_per_class_recovers_what_the_worst_case_refuses() {
        let report = run_mixed_suite(0.10, 24, 6).unwrap();
        assert_eq!(report.frames, 19);
        assert!(report.classes >= 2, "the suite clusters into classes");
        assert!(report.closed_loop_saving > 0.2, "closed loop dims");
        // The motivating failure: the single worst-case curve saves almost
        // nothing on heterogeneous traffic...
        assert!(
            report.worst_case_saving < 0.05,
            "worst-case saving {} should be ~0 on mixed traffic",
            report.worst_case_saving
        );
        // ...the single envelope is the half-step above it...
        assert!(report.envelope_saving > report.worst_case_saving);
        // ...and the per-class bank beats both, recovering a real fraction
        // of the closed-loop ceiling at open-loop cost.
        assert!(
            report.per_class_saving > report.envelope_saving,
            "per-class ({}) must beat the single envelope ({})",
            report.per_class_saving,
            report.envelope_saving
        );
        assert!(
            report.per_class_recovery() > 0.4,
            "recovery {} too small",
            report.per_class_recovery()
        );
        assert!(report.per_class_saving <= report.closed_loop_saving + 1e-9);
    }

    #[test]
    fn fit_scaling_rows_cover_the_requested_scales() {
        let rows = run_fit_scaling(16, &[1, 2], 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].width, 16);
        assert_eq!(rows[1].width, 32);
        assert_eq!(rows[1].pixels, 1024);
        for row in &rows {
            assert!(row.histogram_fit > Duration::ZERO);
            assert!(row.pixel_fit > Duration::ZERO);
            assert!(row.windowed_fit > Duration::ZERO);
        }
    }

    #[test]
    fn frame_scaling_rows_cover_the_requested_sizes() {
        let sizes = [("tiny", 16u32, 12u32), ("small", 48, 32)];
        let rows = run_frame_scaling(&sizes, 1).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "tiny");
        assert_eq!(rows[0].pixels, 192);
        assert_eq!(rows[1].pixels, 48 * 32);
        for row in &rows {
            assert!(row.serve_miss > Duration::ZERO);
            assert!(row.serve_hit > Duration::ZERO);
            assert!(row.ingest_serial > Duration::ZERO);
            assert!(row.ingest_parallel > Duration::ZERO);
            assert!(row.lut_apply > Duration::ZERO);
        }
    }

    #[test]
    fn characterization_runs_on_a_subset() {
        let suite = tiny_suite();
        let characteristic =
            run_characterization(&suite, &[80, 160, 240], &PipelineConfig::default()).unwrap();
        assert_eq!(characteristic.samples().len(), 19 * 3);
    }
}
