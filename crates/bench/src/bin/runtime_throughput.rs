//! Runtime throughput bench: single thread vs. worker pool vs. worker pool
//! plus transformation cache.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin runtime_throughput
//! ```
//!
//! Serves the synthetic SIPI suite (with repeats) and two synthetic video
//! sequences through `hebs_runtime::Engine` in three configurations and
//! prints wall-clock throughput, latency, cache hit rates, resident cache
//! bytes and single-flight coalescing counts. Run with `--quick` for a fast
//! smoke-test configuration, and with `--check` to also verify the cache's
//! contract (byte budget respected, single-flight collapses a miss storm
//! into one fit, counters reconcile) and exit nonzero on a violation —
//! CI runs `--quick --check` so cache regressions fail the build.

use hebs_bench::{run_runtime_throughput, verify_cache_invariants, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let check = std::env::args().any(|a| a == "--check");
    let (frame_size, video_frames) = if quick { (32, 16) } else { (96, 96) };
    let budget = 0.10;

    println!(
        "HEBS runtime throughput (distortion budget {:.0}%)",
        budget * 100.0
    );
    println!(
        "frame size {frame_size}x{frame_size}, {video_frames} video frames per sequence, \
         pool = available parallelism\n"
    );

    let rows = run_runtime_throughput(budget, frame_size, video_frames, 0)?;

    let mut table = TextTable::new([
        "workload",
        "configuration",
        "workers",
        "frames",
        "wall [ms]",
        "fps",
        "mean lat [ms]",
        "p95 lat [ms]",
        "hit rate",
        "bytes [KiB]",
        "coalesced",
        "rejected",
        "saving",
    ]);
    for row in &rows {
        table.push_row([
            row.workload.clone(),
            row.configuration.clone(),
            row.workers.to_string(),
            row.frames.to_string(),
            format!("{:.1}", row.wall_time.as_secs_f64() * 1e3),
            format!("{:.1}", row.throughput_fps),
            format!("{:.2}", row.mean_latency.as_secs_f64() * 1e3),
            format!("{:.2}", row.p95_latency.as_secs_f64() * 1e3),
            format!("{:.0}%", row.cache_hit_rate * 100.0),
            format!("{:.1}", row.cache_bytes as f64 / 1024.0),
            row.cache_coalesced.to_string(),
            row.cache_rejected.to_string(),
            format!("{:.1}%", row.mean_power_saving * 100.0),
        ]);
    }
    println!("{table}");

    // Headline speedups per workload: pooled and pooled+cache vs. the
    // single-thread baseline.
    let mut summary = TextTable::new(["workload", "pool speedup", "pool+cache speedup"]);
    for chunk in rows.chunks(3) {
        let [single, pooled, cached] = chunk else {
            continue;
        };
        summary.push_row([
            single.workload.clone(),
            format!("{:.2}x", pooled.throughput_fps / single.throughput_fps),
            format!("{:.2}x", cached.throughput_fps / single.throughput_fps),
        ]);
    }
    println!("{summary}");

    if check {
        verify_cache_invariants(frame_size)?;
        println!("cache invariants OK");
    }
    Ok(())
}
