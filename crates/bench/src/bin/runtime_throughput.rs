//! Runtime throughput bench: single thread vs. worker pool vs. worker pool
//! plus transformation cache vs. the histogram-domain fit path.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin runtime_throughput
//! ```
//!
//! Serves the synthetic SIPI suite (with repeats) and two synthetic video
//! sequences through `hebs_runtime::Engine` in four configurations and
//! prints wall-clock throughput, latency quantiles, cache hit rates,
//! resident cache bytes, single-flight coalescing counts and fit-evaluation
//! counts. Run with `--quick` for a fast smoke-test configuration, with
//! `--check` to also verify the cache's contract (byte budget respected,
//! single-flight collapses a miss storm into one fit, counters reconcile)
//! and exit nonzero on a violation, and with `--json <path>` to write the
//! machine-readable results CI uploads as an artifact so the bench
//! trajectory can be tracked across PRs.

use hebs_bench::{
    run_mixed_suite, run_runtime_throughput, runtime_throughput_json, verify_cache_invariants,
    TextTable,
};

/// Content classes the mixed-suite comparison clusters the suite into.
const MIXED_SUITE_CLASSES: usize = 6;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .cloned()
                .ok_or("--json requires a file path argument")
        })
        .transpose()?;
    let (frame_size, video_frames) = if quick { (32, 16) } else { (96, 96) };
    let budget = 0.10;

    println!(
        "HEBS runtime throughput (distortion budget {:.0}%)",
        budget * 100.0
    );
    println!(
        "frame size {frame_size}x{frame_size}, {video_frames} video frames per sequence, \
         pool = available parallelism\n"
    );

    let rows = run_runtime_throughput(budget, frame_size, video_frames, 0)?;

    let mut table = TextTable::new([
        "workload",
        "configuration",
        "workers",
        "frames",
        "wall [ms]",
        "fps",
        "mean lat [ms]",
        "p50 lat [ms]",
        "p95 lat [ms]",
        "hit rate",
        "bytes [KiB]",
        "coalesced",
        "rejected",
        "fit evals",
        "evals/miss",
        "fallbacks",
        "rechar",
        "saving",
    ]);
    for row in &rows {
        table.push_row([
            row.workload.clone(),
            row.configuration.clone(),
            row.workers.to_string(),
            row.frames.to_string(),
            format!("{:.1}", row.wall_time.as_secs_f64() * 1e3),
            format!("{:.1}", row.throughput_fps),
            format!("{:.2}", row.mean_latency.as_secs_f64() * 1e3),
            format!("{:.2}", row.p50_latency.as_secs_f64() * 1e3),
            format!("{:.2}", row.p95_latency.as_secs_f64() * 1e3),
            format!("{:.0}%", row.cache_hit_rate * 100.0),
            format!("{:.1}", row.cache_bytes as f64 / 1024.0),
            row.cache_coalesced.to_string(),
            row.cache_rejected.to_string(),
            row.fit_evaluations.to_string(),
            format!("{:.2}", row.fit_evaluations_per_miss()),
            row.open_loop_fallbacks.to_string(),
            row.recharacterizations.to_string(),
            format!("{:.1}%", row.mean_power_saving * 100.0),
        ]);
    }
    println!("{table}");

    // Headline speedups per workload: each configuration vs. the
    // single-thread baseline, plus the open-loop fit economics.
    let mut summary = TextTable::new([
        "workload",
        "pool speedup",
        "pool+cache speedup",
        "histogram-fit speedup",
        "open-loop speedup",
        "evals/miss closed->open",
    ]);
    for chunk in rows.chunks(5) {
        let [single, pooled, cached, histogram, open_loop] = chunk else {
            continue;
        };
        summary.push_row([
            single.workload.clone(),
            format!("{:.2}x", pooled.throughput_fps / single.throughput_fps),
            format!("{:.2}x", cached.throughput_fps / single.throughput_fps),
            format!("{:.2}x", histogram.throughput_fps / single.throughput_fps),
            format!("{:.2}x", open_loop.throughput_fps / single.throughput_fps),
            format!(
                "{:.1} -> {:.2}",
                histogram.fit_evaluations_per_miss(),
                open_loop.fit_evaluations_per_miss()
            ),
        ]);
    }
    println!("{summary}");

    // The mixed-suite savings comparison: what each open-loop strategy
    // recovers on heterogeneous traffic. Deterministic, so bench_check
    // gates these numbers directly.
    let mixed = run_mixed_suite(budget, frame_size, MIXED_SUITE_CLASSES)?;
    let mut savings = TextTable::new([
        "mixed suite",
        "closed-loop",
        "worst-case",
        "envelope",
        "per-class",
        "recovery",
        "classes",
        "evals/miss",
    ]);
    savings.push_row([
        format!("{} frames", mixed.frames),
        format!("{:.1}%", mixed.closed_loop_saving * 100.0),
        format!("{:.1}%", mixed.worst_case_saving * 100.0),
        format!("{:.1}%", mixed.envelope_saving * 100.0),
        format!("{:.1}%", mixed.per_class_saving * 100.0),
        format!("{:.0}%", mixed.per_class_recovery() * 100.0),
        mixed.classes.to_string(),
        format!("{:.2}", mixed.per_class_evals_per_miss),
    ]);
    println!("{savings}");

    if let Some(path) = json_path {
        std::fs::write(
            &path,
            runtime_throughput_json(budget, frame_size, video_frames, &rows, Some(&mixed)),
        )?;
        println!("wrote machine-readable results to {path}");
    }

    if check {
        verify_cache_invariants(frame_size)?;
        println!("cache invariants OK");
    }
    Ok(())
}
