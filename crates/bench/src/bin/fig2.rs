//! Reproduces Figure 2 of the paper: the four pixel-transformation-function
//! families (identity, brightness compensation, contrast enhancement and
//! single-band grayscale spreading), tabulated as `Φ(x, β)` series over the
//! normalized input range for β = 0.6.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig2
//! ```

use hebs_bench::TextTable;
use hebs_transform::{
    BrightnessCompensation, ContrastEnhancement, Identity, PixelTransform, SingleBandSpreading,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let beta = 0.6;
    let identity = Identity::new();
    let brightness = BrightnessCompensation::new(beta)?;
    let contrast = ContrastEnhancement::new(beta)?;
    let band = SingleBandSpreading::centred(0.5, beta)?;

    let mut table = TextTable::new([
        "x",
        "a: identity",
        "b: brightness",
        "c: contrast",
        "d: single-band",
    ]);
    for i in 0..=20 {
        let x = f64::from(i) / 20.0;
        table.push_row([
            format!("{x:.2}"),
            format!("{:.3}", identity.evaluate(x)),
            format!("{:.3}", brightness.evaluate(x)),
            format!("{:.3}", contrast.evaluate(x)),
            format!("{:.3}", band.evaluate(x)),
        ]);
    }
    println!("Figure 2 — pixel transformation functions at beta = {beta}");
    println!("{table}");
    println!(
        "Single-band window: [{:.2}, {:.2}] (slope {:.2})",
        band.lower(),
        band.upper(),
        band.slope()
    );
    Ok(())
}
