//! Reproduces Figure 3 of the paper: the k-window grayscale spreading
//! function that the hierarchical reference driver can realize — flat bands
//! separating windows that are spread with a common slope.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig3
//! ```

use hebs_bench::TextTable;
use hebs_transform::{Band, KBandSpreading, PixelTransform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-window example: shadows, midtones and highlights are kept; the
    // sparsely populated gaps between them are flattened.
    let spreading = KBandSpreading::new(vec![
        Band::new(0.05, 0.20)?,
        Band::new(0.35, 0.60)?,
        Band::new(0.80, 0.95)?,
    ])?;

    println!(
        "Figure 3 — k-window grayscale spreading (k = {}, preserved width = {:.2})",
        spreading.band_count(),
        spreading.total_width()
    );
    let mut table = TextTable::new(["x", "Phi(x)", "region"]);
    for i in 0..=40 {
        let x = f64::from(i) / 40.0;
        let region = if spreading.bands().iter().any(|b| b.contains(x)) {
            "window (spread)"
        } else {
            "gap (flat)"
        };
        table.push_row([
            format!("{x:.3}"),
            format!("{:.3}", spreading.evaluate(x)),
            region.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Natural backlight factor of this curve: beta = {:.2}",
        spreading.backlight_factor()
    );
    Ok(())
}
