//! Fit latency versus frame size: the histogram-domain engine's flat curve.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fit_scaling [--quick] [--json <path>]
//! ```
//!
//! HEBS's fit is a function of the histogram, not the frame, so with a
//! histogram-capable distortion measure one fit evaluation costs
//! O(candidates × 256) *regardless of pixel count*. This harness times one
//! blend-search fit at three target ranges on synthetic frames from 1x to
//! 16x the base pixel count, through three paths:
//!
//! * `histogram` — the level-space fit (never reads a pixel): flat.
//! * `pixel` — the *same* global-UIQI measure forced down the pixel path
//!   (the pre-refactor behaviour): scales linearly with pixels.
//! * `windowed` — the paper's HVS + SSIM measure, which is inherently
//!   pixel-bound: scales linearly with a much larger constant.

use hebs_bench::{fit_scaling_json, run_fit_scaling, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .cloned()
                .ok_or("--json requires a file path argument")
        })
        .transpose()?;
    let (base, repeats) = if quick { (32u32, 2usize) } else { (96, 5) };
    let scales = [1u32, 2, 3, 4]; // 1x, 4x, 9x, 16x pixels

    println!("HEBS fit latency vs. frame size (base {base}x{base}, {repeats} repeats)");
    println!("one row per frame scale; columns are mean per-fit latency\n");

    let rows = run_fit_scaling(base, &scales, repeats)?;

    let mut table = TextTable::new([
        "frame",
        "pixels",
        "vs 1x",
        "histogram fit [us]",
        "pixel fit [us]",
        "windowed fit [us]",
    ]);
    let base_pixels = rows.first().map_or(1, |r| r.pixels);
    for row in &rows {
        table.push_row([
            format!("{}x{}", row.width, row.width),
            row.pixels.to_string(),
            format!("{}x", row.pixels / base_pixels.max(1)),
            format!("{:.1}", row.histogram_fit.as_secs_f64() * 1e6),
            format!("{:.1}", row.pixel_fit.as_secs_f64() * 1e6),
            format!("{:.1}", row.windowed_fit.as_secs_f64() * 1e6),
        ]);
    }
    println!("{table}");

    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let growth = |a: std::time::Duration, b: std::time::Duration| {
            b.as_secs_f64() / a.as_secs_f64().max(1e-12)
        };
        println!(
            "1x -> {}x pixels: histogram fit grew {:.2}x (flat within noise), \
             pixel path {:.2}x, windowed path {:.2}x",
            last.pixels / first.pixels.max(1),
            growth(first.histogram_fit, last.histogram_fit),
            growth(first.pixel_fit, last.pixel_fit),
            growth(first.windowed_fit, last.windowed_fit),
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, fit_scaling_json(base, repeats, &rows))?;
        println!("wrote machine-readable results to {path}");
    }
    Ok(())
}
