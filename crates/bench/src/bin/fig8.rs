//! Reproduces Figure 8 of the paper: six sample images shown at target
//! dynamic ranges 220 and 100, with the measured distortion and power saving
//! of each cell. The transformed images are also written out as PGM files so
//! they can be inspected visually, mirroring the figure.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig8
//! ```

use hebs_bench::{run_figure8, TextTable};
use hebs_core::{pipeline::evaluate_at_range, PipelineConfig, TargetRange};
use hebs_imaging::{io, SipiImage, SipiSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = SipiSuite::with_size(128);
    let config = PipelineConfig::default();
    let rows = run_figure8(&suite, &config)?;

    println!("Figure 8 — sample images at dynamic range 220 and 100");
    let mut table = TextTable::new(["image", "range", "distortion (%)", "power saving (%)"]);
    for row in &rows {
        table.push_row([
            row.image.clone(),
            row.dynamic_range.to_string(),
            format!("{:.2}", row.distortion * 100.0),
            format!("{:.2}", row.power_saving * 100.0),
        ]);
    }
    println!("{table}");
    println!("(Paper reference: range 220 -> distortion 0.9-3.1%, saving 25-30%;");
    println!(" range 100 -> distortion 5.1-10.2%, saving 42-61%.)");

    // Write the visual reference images for one of the samples.
    let out_dir = std::env::temp_dir().join("hebs-fig8");
    std::fs::create_dir_all(&out_dir)?;
    let image = suite.image(SipiImage::Lena).expect("suite contains Lena");
    io::save_pgm(image, out_dir.join("lena_original.pgm"))?;
    for range in [220u32, 100] {
        let eval = evaluate_at_range(&config, image, TargetRange::from_span(range)?)?;
        io::save_pgm(
            &eval.displayed,
            out_dir.join(format!("lena_range{range}.pgm")),
        )?;
    }
    println!(
        "\nwrote lena_original.pgm, lena_range220.pgm, lena_range100.pgm to {}",
        out_dir.display()
    );
    Ok(())
}
