//! Reproduces Table 1 of the paper: power saving for every benchmark image
//! at distortion budgets of 5 %, 10 % and 20 %, plus the suite average and
//! the paper's published numbers for side-by-side comparison.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin table1
//! ```

use hebs_bench::{
    run_table1, table::percent, TextTable, PAPER_TABLE1, PAPER_TABLE1_AVERAGE, TABLE1_BUDGETS,
};
use hebs_core::PipelineConfig;
use hebs_imaging::SipiSuite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(SipiSuite::STANDARD_SIZE);
    eprintln!("generating the 19-image benchmark suite at {size}x{size} ...");
    let suite = SipiSuite::with_size(size);

    eprintln!("running closed-loop HEBS at budgets 5% / 10% / 20% ...");
    let report = run_table1(&suite, &TABLE1_BUDGETS, PipelineConfig::default())?;

    let mut table = TextTable::new([
        "image",
        "5% (ours)",
        "5% (paper)",
        "10% (ours)",
        "10% (paper)",
        "20% (ours)",
        "20% (paper)",
    ]);
    for (row, (paper_name, paper_row)) in report.rows.iter().zip(PAPER_TABLE1.iter()) {
        debug_assert_eq!(&row.image, paper_name);
        table.push_row([
            row.image.clone(),
            percent(row.savings[0]),
            format!("{:.2}", paper_row[0]),
            percent(row.savings[1]),
            format!("{:.2}", paper_row[1]),
            percent(row.savings[2]),
            format!("{:.2}", paper_row[2]),
        ]);
    }
    let averages = report.average_savings();
    table.push_row([
        "Average".to_string(),
        percent(averages[0]),
        format!("{:.2}", PAPER_TABLE1_AVERAGE[0]),
        percent(averages[1]),
        format!("{:.2}", PAPER_TABLE1_AVERAGE[1]),
        percent(averages[2]),
        format!("{:.2}", PAPER_TABLE1_AVERAGE[2]),
    ]);

    println!("Table 1 — power saving (%) per image and distortion budget");
    println!("{table}");
    println!("Notes: 'ours' runs on the synthetic SIPI stand-ins (see DESIGN.md); absolute");
    println!("values need not match the paper, but savings must grow with the budget and the");
    println!("averages should land in the same decade band as the paper's 45.9/56.2/64.4 %.");
    Ok(())
}
