//! Reproduces Figure 6b of the paper: TFT-LCD panel power versus pixel
//! transmittance (the quadratic fit with the LP064V1 coefficients), showing
//! that the panel term barely varies compared with the CCFL term.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig6b
//! ```

use hebs_bench::TextTable;
use hebs_display::{CcflModel, TftPanelModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let panel = TftPanelModel::lp064v1();
    let ccfl = CcflModel::lp064v1();
    println!("Figure 6b — panel transmittance vs panel power (quadratic fit)");
    println!("model: P = 0.02449*t^2 + 0.04984*t + 0.993\n");
    let mut table = TextTable::new(["transmittance t", "panel power", "share of subsystem (%)"]);
    for (t, power) in panel.characteristic_curve(0.10, 1.00, 19) {
        let share = power / (power + ccfl.full_power()) * 100.0;
        table.push_row([
            format!("{t:.3}"),
            format!("{power:.5}"),
            format!("{share:.1}"),
        ]);
    }
    println!("{table}");
    let swing = panel.pixel_power(1.0) - panel.pixel_power(0.0);
    println!(
        "total variation over the full transmittance range: {:.4} normalized W ({:.1}% of the panel term)",
        swing,
        swing / panel.pixel_power(0.0) * 100.0
    );
    Ok(())
}
