//! Reproduces Figure 6a of the paper: CCFL driver power versus backlight
//! illuminance factor for the LG Philips LP064V1, showing the linear region
//! and the saturation knee at β ≈ 0.82.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig6a
//! ```

use hebs_bench::TextTable;
use hebs_display::CcflModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = CcflModel::lp064v1();
    println!("Figure 6a — CCFL illuminance (backlight factor) vs driver power");
    println!("model: P = 1.9600*b - 0.2372 for b <= 0.8234; P = 6.9440*b - 4.3240 above\n");
    let mut table = TextTable::new(["backlight b", "power (norm. W)", "region"]);
    for (beta, power) in model.characteristic_curve(0.40, 1.00, 25) {
        let region = if beta <= model.saturation_knee {
            "linear"
        } else {
            "saturated"
        };
        table.push_row([
            format!("{beta:.3}"),
            format!("{power:.4}"),
            region.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "full-backlight power: {:.3}; power saved by dimming to b = 0.5: {:.1}%",
        model.full_power(),
        model.power_saving(0.5)? * 100.0
    );
    Ok(())
}
