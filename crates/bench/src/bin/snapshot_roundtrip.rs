//! CI snapshot round-trip harness: save and restore across *separate
//! process invocations*, plus a corruption fuzz pass.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin snapshot_roundtrip -- save <path>
//! cargo run --release -p hebs-bench --bin snapshot_roundtrip -- restore <path>
//! cargo run --release -p hebs-bench --bin snapshot_roundtrip -- fuzz <path>
//! ```
//!
//! The in-process unit and integration tests already pin the round-trip
//! semantics; what only two fresh invocations can pin is that the *file
//! on disk* is the whole contract — no shared memory, no process-local
//! seed, no ambient state. CI runs `save` and `restore` as separate
//! `cargo run` invocations sharing a temp file, then `fuzz` truncates
//! and bit-flips the same file and proves every mutation is rejected
//! with a typed [`hebs::runtime::SnapshotError`] — never a panic — while
//! the engine stays serviceable (cold-start degradation). All three
//! subcommands exit 0 on success and 1 with a diagnostic on any broken
//! invariant.

use std::process::ExitCode;

use hebs_bench::warm_start_engine;
use hebs_core::{CharacteristicBank, DEFAULT_RANGES};
use hebs_imaging::{GrayImage, Histogram, SipiSuite};
use hebs_quality::GlobalUiqiDistortion;
use hebs_runtime::{Engine, RuntimeError};

const BUDGET: f64 = 0.10;
const CLASSES: usize = 2;
const FRAME_SIZE: u32 = 32;

fn suite_frames() -> Vec<GrayImage> {
    SipiSuite::with_size(FRAME_SIZE)
        .iter()
        .map(|(_, img)| img.clone())
        .collect()
}

/// The fleet-node engine every subcommand builds: identical across
/// processes, so the snapshot file is the only state that travels.
fn fleet_engine() -> Result<Engine, String> {
    warm_start_engine(BUDGET, CLASSES, None).map_err(|e| format!("engine construction: {e}"))
}

/// Characterizes a bank from the synthetic suite, serves the suite to
/// populate the hot cache, and snapshots bank + spill to `path`.
fn save(path: &str) -> Result<(), String> {
    let engine = fleet_engine()?;
    let frames = suite_frames();
    let histograms: Vec<Histogram> = frames.iter().map(Histogram::of).collect();
    // The same histogram-capable pipeline the engine serves with, so the
    // characterized curves match what the fleet node will evaluate.
    let pipeline = hebs_core::PipelineConfig::default().with_measure(GlobalUiqiDistortion);
    let bank = CharacteristicBank::build(&pipeline, &histograms, &DEFAULT_RANGES, CLASSES)
        .map_err(|e| format!("bank characterization: {e}"))?;
    engine
        .install_bank(bank)
        .map_err(|e| format!("bank install: {e}"))?;
    for frame in &frames {
        engine
            .process_frame(frame)
            .map_err(|e| format!("canary serve: {e}"))?;
    }
    let mut bytes = Vec::new();
    engine
        .snapshot_to_writer(&mut bytes)
        .map_err(|e| format!("snapshot: {e}"))?;
    std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "saved {} bytes ({} classes, generation {}) to {path}",
        bytes.len(),
        engine.characteristic_classes(),
        engine.characteristic_generation(),
    );
    Ok(())
}

/// Restores `path` into a fresh engine (a separate process from `save`)
/// and proves the warm-start contract: the bank arrives intact and the
/// first serve costs at most one fit evaluation with no rebuild.
fn restore(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let engine = fleet_engine()?;
    let report = engine
        .restore_from_reader(&mut &bytes[..])
        .map_err(|e| format!("restore: {e}"))?;
    if report.classes != CLASSES {
        return Err(format!(
            "restored {} classes, expected {CLASSES}",
            report.classes
        ));
    }
    if report.cache_restored == 0 {
        return Err("no hot-cache spill was restored".to_string());
    }
    // Day-2 frame the canary never served: a genuine miss, served warm.
    let frame = SipiSuite::with_size(FRAME_SIZE + 8)
        .iter()
        .map(|(_, img)| img.clone())
        .next()
        .ok_or("empty suite")?;
    engine
        .process_frame(&frame)
        .map_err(|e| format!("warm serve: {e}"))?;
    let stats = engine.stats();
    if stats.fit_evaluations > 1 || stats.recharacterizations != 0 {
        return Err(format!(
            "first warm serve cost {} fit evaluations and {} rebuilds (expected <= 1 and 0)",
            stats.fit_evaluations, stats.recharacterizations
        ));
    }
    println!(
        "restored {} classes, {} spilled entries; first miss served at {} fit evaluation(s)",
        report.classes, report.cache_restored, stats.fit_evaluations
    );
    Ok(())
}

/// One corruption trial: the mutated bytes must be rejected with a typed
/// snapshot error, the rejection counter must move, and the engine must
/// still serve afterwards (cold, but alive).
fn expect_rejection(label: &str, bytes: &[u8]) -> Result<(), String> {
    let engine = fleet_engine()?;
    match engine.restore_from_reader(&mut &bytes[..]) {
        Err(RuntimeError::Snapshot(err)) => {
            println!("  {label}: rejected as expected ({err})");
        }
        Err(other) => return Err(format!("{label}: non-snapshot error {other}")),
        Ok(report) => {
            return Err(format!(
                "{label}: corrupt snapshot was accepted ({} classes)",
                report.classes
            ))
        }
    }
    let stats = engine.stats();
    if stats.snapshot_rejected != 1 {
        return Err(format!(
            "{label}: snapshot_rejected counter is {} (expected 1)",
            stats.snapshot_rejected
        ));
    }
    // Cold-start degradation, not a wedge: the engine still serves.
    let frame = suite_frames().into_iter().next().ok_or("empty suite")?;
    engine
        .process_frame(&frame)
        .map_err(|e| format!("{label}: engine wedged after rejection: {e}"))?;
    Ok(())
}

/// Truncates and bit-flips the snapshot at `path`: every mutation must be
/// rejected typed; the pristine bytes must still restore afterwards.
fn fuzz(path: &str) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    println!("fuzzing {} snapshot bytes from {path}", bytes.len());

    // Truncations: empty, mid-header, mid-payload, one byte short.
    let cuts = [0, 4, bytes.len() / 3, bytes.len() / 2, bytes.len() - 1];
    for cut in cuts {
        expect_rejection(&format!("truncate to {cut}"), &bytes[..cut])?;
    }
    // Bit flips spread across the file: header, framing, payload, trailer.
    let step = (bytes.len() / 16).max(1);
    for offset in (0..bytes.len()).step_by(step) {
        let mut mutated = bytes.clone();
        mutated[offset] ^= 0x01;
        expect_rejection(&format!("bit-flip at {offset}"), &mutated)?;
    }
    // The pristine file still restores — the fuzz read it, never wrote it.
    let engine = fleet_engine()?;
    let report = engine
        .restore_from_reader(&mut &bytes[..])
        .map_err(|e| format!("pristine restore after fuzz: {e}"))?;
    println!(
        "pristine snapshot still restores ({} classes) — fuzz pass clean",
        report.classes
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let result = match (args.get(1).map(String::as_str), args.get(2)) {
        (Some("save"), Some(path)) => save(path),
        (Some("restore"), Some(path)) => restore(path),
        (Some("fuzz"), Some(path)) => fuzz(path),
        _ => Err("usage: snapshot_roundtrip <save|restore|fuzz> <path>".to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("snapshot_roundtrip: {err}");
            ExitCode::FAILURE
        }
    }
}
