//! Reproduces Figure 7 of the paper: the distortion-versus-dynamic-range
//! scatter over the benchmark suite, together with the fitted average
//! ("entire dataset") curve and the worst-case envelope — the distortion
//! characteristic curve that the HEBS hardware flow looks ranges up on.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig7 [image-size]
//! ```

use hebs_bench::{run_characterization, TextTable};
use hebs_core::{PipelineConfig, DEFAULT_RANGES};
use hebs_imaging::SipiSuite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(128);
    eprintln!(
        "characterizing the 19-image suite at {size}x{size} over {} ranges ...",
        DEFAULT_RANGES.len()
    );
    let suite = SipiSuite::with_size(size);
    let config = PipelineConfig::default();
    let characteristic = run_characterization(&suite, &DEFAULT_RANGES, &config)?;

    // Scatter: per-image distortion at each range.
    println!("Figure 7 — distortion (%) vs target dynamic range (scatter)");
    let mut scatter = TextTable::new(["image", "range", "distortion (%)", "power saving (%)"]);
    for sample in characteristic.samples() {
        scatter.push_row([
            sample.image.clone(),
            sample.dynamic_range.to_string(),
            format!("{:.2}", sample.distortion * 100.0),
            format!("{:.2}", sample.power_saving * 100.0),
        ]);
    }
    println!("{scatter}");

    // The two fits of the figure.
    println!("Fitted curves (evaluated on the characterization grid):");
    let mut fits = TextTable::new(["range", "average fit (%)", "worst-case fit (%)"]);
    for &range in &DEFAULT_RANGES {
        fits.push_row([
            range.to_string(),
            format!("{:.2}", characteristic.predicted_distortion(range) * 100.0),
            format!("{:.2}", characteristic.predicted_worst_case(range) * 100.0),
        ]);
    }
    println!("{fits}");

    println!("Inverse lookup (minimum admissible dynamic range per distortion budget):");
    let mut inverse = TextTable::new([
        "budget (%)",
        "range (average fit)",
        "range (worst-case fit)",
    ]);
    for budget in [0.05, 0.10, 0.20] {
        let average = characteristic
            .min_range_for(budget, false)
            .map(|r| r.to_string())
            .unwrap_or_else(|_| "infeasible".to_string());
        let worst = characteristic
            .min_range_for(budget, true)
            .map(|r| r.to_string())
            .unwrap_or_else(|_| "infeasible".to_string());
        inverse.push_row([format!("{:.0}", budget * 100.0), average, worst]);
    }
    println!("{inverse}");
    Ok(())
}
