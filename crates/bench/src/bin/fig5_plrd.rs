//! Reproduces the hardware argument of Figure 5 / Section 4.1: how faithfully
//! the conventional clamp-switch reference driver and the proposed
//! hierarchical driver realize a HEBS transfer curve, as a function of the
//! number of controllable sources (i.e. of realizable linear segments).
//!
//! ```text
//! cargo run --release -p hebs-bench --bin fig5_plrd
//! ```

use hebs_bench::TextTable;
use hebs_core::ghe::{equalize, TargetRange};
use hebs_display::plrd::{ConventionalPlrd, HierarchicalPlrd};
use hebs_imaging::{Histogram, SipiImage};
use hebs_transform::{coarsen, PixelTransform, SingleBandSpreading};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let image = SipiImage::Splash.generate(128);
    let histogram = Histogram::of(&image);
    let target = TargetRange::from_span(140)?;
    let beta = target.backlight_factor();
    let ghe = equalize(&histogram, target)?;

    println!("Figure 5 / Section 4.1 — reference-driver realization fidelity");
    println!("requested curve: exact GHE transform for 'Splash' at dynamic range 140\n");

    let mut table = TextTable::new([
        "driver",
        "sources k",
        "segments",
        "PLC sq. error",
        "realization RMS error",
    ]);

    for k in [3usize, 4, 6, 8, 12, 16] {
        let driver = HierarchicalPlrd::new(k, 10)?;
        let coarse = coarsen(&ghe.transform, driver.max_segments())?;
        let programmed = driver.program(&coarse.curve, beta)?;
        table.push_row([
            "hierarchical".to_string(),
            k.to_string(),
            coarse.curve.segment_count().to_string(),
            format!("{:.6}", coarse.squared_error),
            format!("{:.5}", programmed.realization_error),
        ]);
    }

    // The conventional driver can only realize a single spread band; measure
    // how far that is from the requested GHE curve.
    let conventional = ConventionalPlrd::default();
    let band = SingleBandSpreading::new(0.0, beta, beta)?;
    let programmed = conventional.program(&band)?;
    // Its error against the *HEBS* request (not its own band request).
    let mut sum = 0.0;
    for level in 0..=255u16 {
        let x = f64::from(level) / 255.0;
        let realized = f64::from(programmed.lut.map(level as u8)) / 255.0;
        let requested = (ghe.transform.evaluate(x) / beta).min(1.0);
        sum += (realized - requested) * (realized - requested);
    }
    table.push_row([
        "conventional".to_string(),
        "10 taps".to_string(),
        "1".to_string(),
        "-".to_string(),
        format!("{:.5}", (sum / 256.0).sqrt()),
    ]);

    println!("{table}");
    println!("The hierarchical driver's error falls as k grows; the conventional circuit is");
    println!("stuck with a single slope and cannot track the multi-slope HEBS curve.");
    Ok(())
}
