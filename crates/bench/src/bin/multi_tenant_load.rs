//! Multi-tenant open-loop load generator: tenant routing, deadline-aware
//! serving and admission control under fixed arrival schedules.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin multi_tenant_load -- [--quick] [--json <path>]
//! ```
//!
//! Replays three experiments against a [`hebs_runtime::TenantRegistry`]:
//!
//! * **bursty** — a steady strict-budget interactive tenant next to a
//!   bursting loose-budget batch tenant whose bursts overrun its admission
//!   bound: the batch tenant sheds, the interactive tenant never does, and
//!   the looser budget saves strictly more backlight on the same content;
//! * **diurnal** — a triangle-wave (rush hour / lull) arrival process; the
//!   realtime tenant serves a stale curve under a zero-slack deadline, so
//!   every over-budget lookup degrades to the installed curve instead of
//!   paying the closed-loop search;
//! * **overload isolation** — the protected tenant's schedule alone vs.
//!   with a 2x flood under weighted-fair shedding: its fair share covers
//!   its whole offered load, so it must retain its isolated throughput.
//!
//! Every arrival is scheduled before the run starts and latency is
//! measured from the *scheduled* arrival (no coordinated omission), so
//! p999 includes queueing behind slow serves. `--json <path>` writes the
//! machine-readable artifact `bench_check` gates against the committed
//! baseline; the gated counters are structural properties of the
//! schedules, not of machine speed.

use hebs_bench::{
    bursty_scenario, diurnal_scenario, multi_tenant_json, run_overload_isolation, run_scenario,
    ScenarioReport, TextTable,
};

fn scenario_table(report: &ScenarioReport) -> TextTable {
    let mut table = TextTable::new([
        "tenant",
        "arrivals",
        "served",
        "sheds",
        "degraded",
        "p50 [ms]",
        "p99 [ms]",
        "p999 [ms]",
        "fps",
        "saving",
        "bytes [KiB]",
    ]);
    for tenant in &report.tenants {
        table.push_row([
            tenant.tenant.clone(),
            tenant.arrivals.to_string(),
            tenant.served.to_string(),
            tenant.sheds.to_string(),
            tenant.deadline_degraded.to_string(),
            format!("{:.2}", tenant.p50.as_secs_f64() * 1e3),
            format!("{:.2}", tenant.p99.as_secs_f64() * 1e3),
            format!("{:.2}", tenant.p999.as_secs_f64() * 1e3),
            format!("{:.1}", tenant.throughput_fps),
            format!("{:.1}%", tenant.mean_power_saving * 100.0),
            format!("{:.1}", tenant.cache_bytes as f64 / 1024.0),
        ]);
    }
    table
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .cloned()
                .ok_or("--json requires a file path argument")
        })
        .transpose()?;

    println!("HEBS multi-tenant open-loop load generator{}", {
        if quick {
            " (quick)"
        } else {
            ""
        }
    });
    println!("latencies measured from scheduled arrival — queueing included\n");

    let mut scenarios = Vec::new();
    for scenario in [bursty_scenario(quick), diurnal_scenario(quick)?] {
        let report = run_scenario(&scenario)?;
        println!(
            "scenario {} ({:.1} ms wall)",
            report.scenario,
            report.wall.as_secs_f64() * 1e3
        );
        println!("{}", scenario_table(&report));
        scenarios.push(report);
    }

    let isolation = run_overload_isolation(quick)?;
    let mut table = TextTable::new([
        "protected tenant",
        "served",
        "fps",
        "p999 [ms]",
        "own sheds",
        "flood sheds",
    ]);
    table.push_row([
        "alone".to_string(),
        isolation.isolated_served.to_string(),
        format!("{:.1}", isolation.isolated_fps),
        "-".to_string(),
        "0".to_string(),
        "-".to_string(),
    ]);
    table.push_row([
        "vs 2x flood".to_string(),
        isolation.contended_served.to_string(),
        format!("{:.1}", isolation.contended_fps),
        format!("{:.2}", isolation.contended_p999.as_secs_f64() * 1e3),
        isolation.protected_sheds.to_string(),
        isolation.flood_sheds.to_string(),
    ]);
    println!("overload isolation (weighted-fair shedding)");
    println!("{table}");
    println!(
        "retention under 2x flood: {:.1}% of isolated throughput (gate: >= 90%)\n",
        isolation.retention() * 100.0
    );

    if let Some(path) = json_path {
        std::fs::write(
            &path,
            multi_tenant_json(quick, &scenarios, Some(&isolation)),
        )?;
        println!("wrote machine-readable results to {path}");
    }
    Ok(())
}
