//! Reproduces the paper's headline comparison (Section 1 / Section 5.2):
//! HEBS versus the DLS and CBCS baselines at the same distortion budget.
//! The paper claims roughly 15 percentage points of additional power saving
//! over the best previous approach.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin baseline_comparison
//! ```

use hebs_bench::{run_baseline_comparison, TextTable};
use hebs_core::PipelineConfig;
use hebs_imaging::{SipiImage, SipiSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 0.10;
    let suite = SipiSuite::with_size(128);
    let images: Vec<(SipiImage, &hebs_imaging::GrayImage)> = SipiImage::ALL
        .iter()
        .map(|&id| (id, suite.image(id).expect("suite contains every id")))
        .collect();

    eprintln!("comparing 4 policies on 19 images at a 10% distortion budget ...");
    let comparisons = run_baseline_comparison(&images, budget, PipelineConfig::default())?;

    let policy_names: Vec<String> = comparisons[0]
        .results
        .iter()
        .map(|(name, _, _)| name.clone())
        .collect();
    let mut header = vec!["image".to_string()];
    header.extend(policy_names.iter().cloned());
    let mut table = TextTable::new(header);

    let mut totals = vec![0.0f64; policy_names.len()];
    for comparison in &comparisons {
        let mut row = vec![comparison.image.clone()];
        for (i, (_, saving, _)) in comparison.results.iter().enumerate() {
            totals[i] += saving;
            row.push(format!("{:.2}", saving * 100.0));
        }
        table.push_row(row);
    }
    let mut avg_row = vec!["Average".to_string()];
    for total in &totals {
        avg_row.push(format!("{:.2}", total / comparisons.len() as f64 * 100.0));
    }
    table.push_row(avg_row);

    println!("Power saving (%) at a 10% distortion budget");
    println!("{table}");
    let hebs_avg = totals[0] / comparisons.len() as f64;
    let best_baseline = totals[1..]
        .iter()
        .map(|t| t / comparisons.len() as f64)
        .fold(f64::MIN, f64::max);
    println!(
        "HEBS advantage over the best baseline: {:.1} percentage points (paper claims ~15).",
        (hebs_avg - best_baseline) * 100.0
    );
    Ok(())
}
