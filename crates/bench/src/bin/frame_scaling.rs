//! End-to-end serve latency versus real frame resolution, 32×32 to 4K.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin frame_scaling [--quick] [--json <path>]
//! ```
//!
//! The fit is histogram-domain and flat across resolutions (see
//! `fit_scaling`); what a real deployment pays per frame is the per-pixel
//! work around the fit. This harness serves synthetic frames at four real
//! resolutions through an exact-cached engine with the histogram-capable
//! global-UIQI measure and reports:
//!
//! * `serve miss` — fused ingest (histogram + signature + content hash in
//!   one pass) + histogram-domain fit + one strip-vectorized LUT apply;
//! * `serve hit` — the fused ingest is the only per-pixel work left;
//! * `ingest serial` / `ingest parallel` — the fused pass alone, and the
//!   same pass fanned out across the machine's available workers;
//! * `LUT apply` — the strip-vectorized apply into a reused buffer.
//!
//! Because everything except the O(256) fit scales with the pixel count,
//! serve latency grows far slower than pixels: the headline ratio at the
//! end compares 4K/32×32 serve growth against the 8100× pixel ratio.

use hebs_bench::{frame_scaling_json, run_frame_scaling, TextTable, FRAME_SCALING_SIZES};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .cloned()
                .ok_or("--json requires a file path argument")
        })
        .transpose()?;
    let repeats = if quick { 2usize } else { 5 };
    let workers = hebs_imaging::available_ingest_workers();

    println!(
        "HEBS serve latency vs. frame resolution ({repeats} repeats, {workers} ingest worker(s))"
    );
    println!("one row per resolution; columns are mean per-serve latency\n");

    let rows = run_frame_scaling(&FRAME_SCALING_SIZES, repeats)?;

    let mut table = TextTable::new([
        "frame",
        "pixels",
        "serve miss [us]",
        "serve hit [us]",
        "ingest serial [us]",
        "ingest parallel [us]",
        "LUT apply [us]",
    ]);
    for row in &rows {
        table.push_row([
            row.label.to_string(),
            row.pixels.to_string(),
            format!("{:.1}", row.serve_miss.as_secs_f64() * 1e6),
            format!("{:.1}", row.serve_hit.as_secs_f64() * 1e6),
            format!("{:.1}", row.ingest_serial.as_secs_f64() * 1e6),
            format!("{:.1}", row.ingest_parallel.as_secs_f64() * 1e6),
            format!("{:.1}", row.lut_apply.as_secs_f64() * 1e6),
        ]);
    }
    println!("{table}");

    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        let pixel_ratio = last.pixels as f64 / first.pixels.max(1) as f64;
        let serve_ratio = last.serve_miss.as_secs_f64() / first.serve_miss.as_secs_f64().max(1e-12);
        let speedup =
            last.ingest_serial.as_secs_f64() / last.ingest_parallel.as_secs_f64().max(1e-12);
        println!(
            "{} -> {}: {:.0}x the pixels, {:.1}x the serve-miss latency \
             (sub-linear; the fit is histogram-domain); parallel ingest speedup at {}: {:.2}x",
            first.label, last.label, pixel_ratio, serve_ratio, last.label, speedup,
        );
    }

    if let Some(path) = json_path {
        std::fs::write(&path, frame_scaling_json(quick, repeats, workers, &rows))?;
        println!("wrote machine-readable results to {path}");
    }
    Ok(())
}
