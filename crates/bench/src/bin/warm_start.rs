//! Warm-start tier benchmark: cold bootstrap vs. snapshot restore.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin warm_start -- [--quick] [--json <path>]
//! ```
//!
//! One canary node characterizes a multi-class bank offline, serves its
//! own traffic and snapshots bank + hot-cache spill to bytes. A cold
//! fleet node then takes day-2 traffic from scratch (closed-loop fallback
//! until its bootstrap recharacterization lands) while a warm node
//! restores the snapshot first and serves at open-loop cost — one fit
//! evaluation per miss — from its very first serve. The day-2 stream ends
//! with a replay of canary frames, which only the warm node can serve
//! from the restored spill.
//!
//! `--json <path>` writes the machine-readable artifact `bench_check`
//! gates against the committed baseline; every gated quantity is a
//! deterministic counter or saving over synthetic single-worker traffic,
//! so the gate is independent of machine speed.

use hebs_bench::{run_warm_start, warm_start_json, TextTable};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .cloned()
                .ok_or("--json requires a file path argument")
        })
        .transpose()?;

    let (frame_size, day2_frames) = if quick { (32, 24) } else { (64, 48) };
    let budget = 0.10;
    println!(
        "HEBS warm-start tier: cold bootstrap vs snapshot restore{}",
        if quick { " (quick)" } else { "" }
    );
    println!("budget {budget}, frame size {frame_size}, day-2 frames {day2_frames}\n");

    let report = run_warm_start(budget, frame_size, day2_frames)?;
    println!(
        "snapshot: {} bytes, {} classes, spill restored {} / skipped {}\n",
        report.snapshot_bytes, report.classes, report.cache_restored, report.cache_skipped
    );

    let mut table = TextTable::new([
        "node",
        "frames",
        "first-miss evals",
        "recovery serves",
        "fit evals",
        "misses",
        "hits",
        "rebuilds",
        "saving",
    ]);
    for node in &report.nodes {
        table.push_row([
            node.node.clone(),
            node.frames.to_string(),
            node.first_miss_evaluations.to_string(),
            node.recovery_serves.to_string(),
            node.fit_evaluations.to_string(),
            node.cache_misses.to_string(),
            node.cache_hits.to_string(),
            node.recharacterizations.to_string(),
            format!("{:.1}%", node.mean_power_saving * 100.0),
        ]);
    }
    print!("{table}");

    if let Some(path) = json_path {
        std::fs::write(&path, warm_start_json(&report))?;
        println!("\nwrote {path}");
    }
    Ok(())
}
