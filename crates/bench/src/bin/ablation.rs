//! Ablation study over the design choices called out in DESIGN.md:
//!
//! * number of piecewise-linear segments handed to the reference driver,
//! * pure GHE (the paper's transform) versus the adaptive equalization /
//!   linear-compression blend,
//! * distortion measured with and without the HVS pre-filter.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin ablation
//! ```

use hebs_bench::TextTable;
use hebs_core::{BacklightPolicy, BlendMode, HebsPolicy, PipelineConfig};
use hebs_display::plrd::HierarchicalPlrd;
use hebs_imaging::{SipiImage, SipiSuite};
use hebs_quality::{HebsDistortion, SharedMeasure};

fn mean_saving(
    config: PipelineConfig,
    images: &[(SipiImage, &hebs_imaging::GrayImage)],
    budget: f64,
) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let policy = HebsPolicy::closed_loop(config);
    let mut saving = 0.0;
    let mut distortion = 0.0;
    for (_, image) in images {
        let outcome = policy.optimize(image, budget)?;
        saving += outcome.power_saving;
        distortion += outcome.distortion;
    }
    let n = images.len() as f64;
    Ok((saving / n, distortion / n))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let budget = 0.10;
    let suite = SipiSuite::with_size(128);
    let sample = [
        SipiImage::Lena,
        SipiImage::Peppers,
        SipiImage::Splash,
        SipiImage::Baboon,
        SipiImage::Trees,
        SipiImage::Pout,
    ];
    let images: Vec<(SipiImage, &hebs_imaging::GrayImage)> = sample
        .iter()
        .map(|&id| (id, suite.image(id).expect("suite contains every id")))
        .collect();

    println!("Ablation study — mean saving / distortion over 6 images at a 10% budget\n");

    // 1. Segment budget of the reference driver.
    let mut segments_table =
        TextTable::new(["driver sources k", "mean saving (%)", "mean distortion (%)"]);
    for k in [3usize, 4, 8, 16] {
        let driver = HierarchicalPlrd::new(k, 10)?;
        let config = PipelineConfig {
            segments: driver.max_segments(),
            driver,
            ..PipelineConfig::default()
        };
        let (saving, distortion) = mean_saving(config, &images, budget)?;
        segments_table.push_row([
            k.to_string(),
            format!("{:.2}", saving * 100.0),
            format!("{:.2}", distortion * 100.0),
        ]);
    }
    println!("(a) reference-driver segment budget");
    println!("{segments_table}");

    // 2. Pure GHE versus adaptive blend.
    let mut blend_table = TextTable::new(["transform", "mean saving (%)", "mean distortion (%)"]);
    for (label, blend) in [
        ("pure GHE (paper)", BlendMode::Fixed(1.0)),
        ("linear compression", BlendMode::Fixed(0.0)),
        ("adaptive blend (ours)", BlendMode::Adaptive),
    ] {
        let config = PipelineConfig {
            blend,
            ..PipelineConfig::default()
        };
        let (saving, distortion) = mean_saving(config, &images, budget)?;
        blend_table.push_row([
            label.to_string(),
            format!("{:.2}", saving * 100.0),
            format!("{:.2}", distortion * 100.0),
        ]);
    }
    println!("(b) transformation family");
    println!("{blend_table}");

    // 3. Distortion measure: with and without the HVS pre-filter.
    let mut hvs_table = TextTable::new([
        "distortion measure",
        "mean saving (%)",
        "mean distortion (%)",
    ]);
    for (label, measure) in [
        ("HVS + UIQI (paper)", HebsDistortion::default()),
        ("plain UIQI", HebsDistortion::without_hvs()),
    ] {
        let config = PipelineConfig {
            measure: SharedMeasure::new(measure),
            ..PipelineConfig::default()
        };
        let (saving, distortion) = mean_saving(config, &images, budget)?;
        hvs_table.push_row([
            label.to_string(),
            format!("{:.2}", saving * 100.0),
            format!("{:.2}", distortion * 100.0),
        ]);
    }
    println!("(c) distortion measure");
    println!("{hvs_table}");
    println!("Note: rows of (c) are not directly comparable to each other on the distortion");
    println!("column (each row optimizes against its own measure); compare the saving column.");
    Ok(())
}
