//! CI bench-regression gate: compares fresh bench artifacts against the
//! baselines committed under `bench/baselines/` and exits nonzero on a
//! regression.
//!
//! ```text
//! cargo run --release -p hebs-bench --bin bench_check -- \
//!     [--baselines bench/baselines] \
//!     [--throughput runtime_throughput.json] \
//!     [--fit-scaling fit_scaling.json] \
//!     [--frame-scaling frame_scaling.json] \
//!     [--multi-tenant multi_tenant.json] \
//!     [--warm-start warm_start.json] \
//!     [--latency-tolerance 0.25] [--throughput-tolerance 0.25] \
//!     [--evals-tolerance 0.05] \
//!     [--write-baselines]
//! ```
//!
//! Every gated quantity is machine-independent (see
//! [`hebs_bench::regression`]), so a slower runner or background load
//! cannot fail CI: fit evaluations per cache miss (fail on any increase
//! beyond a 5% scheduler-noise guard band — the counter that keeps the
//! open-loop ≤ 1-per-miss economics honest), p50 latency and throughput
//! as ratios against the same run's single-thread row (fail at >25%
//! relative regression), the fit-scaling *shape* ratios (the
//! histogram fit's flatness across frame sizes, the pixel paths' cost
//! relative to it), the frame-scaling sub-linearity gates (4K serve
//! latency far below linear in pixel count, hits no dearer than misses,
//! parallel-ingest advantage on multi-core runners), and the
//! multi-tenant load-generator contract (shed
//! and deadline-degrade counts matching the schedules' structural
//! expectations, counter reconciliation, savings ordering, overload
//! retention, and the p999/p50 tail shape within a wide band), and the
//! warm-start snapshot tier's serve economics (warm first miss at ≤ 1
//! fit evaluation with zero recharacterizations, cold recovery strictly
//! longer, the restored spill replaying as cache hits, savings within
//! deterministic bands).
//!
//! `--write-baselines` refreshes the committed baselines from the current
//! artifacts instead of checking (used when a PR intentionally moves the
//! numbers — commit the result).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use hebs_bench::regression::{
    check_fit_scaling, check_frame_scaling, check_multi_tenant, check_throughput, check_warm_start,
    render_report, CheckConfig, CheckReport,
};

struct Args {
    baselines: PathBuf,
    throughput: PathBuf,
    fit_scaling: PathBuf,
    frame_scaling: PathBuf,
    multi_tenant: PathBuf,
    warm_start: PathBuf,
    config: CheckConfig,
    write_baselines: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baselines: PathBuf::from("bench/baselines"),
        throughput: PathBuf::from("runtime_throughput.json"),
        fit_scaling: PathBuf::from("fit_scaling.json"),
        frame_scaling: PathBuf::from("frame_scaling.json"),
        multi_tenant: PathBuf::from("multi_tenant.json"),
        warm_start: PathBuf::from("warm_start.json"),
        config: CheckConfig::default(),
        write_baselines: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--baselines" => args.baselines = PathBuf::from(value("--baselines")?),
            "--throughput" => args.throughput = PathBuf::from(value("--throughput")?),
            "--fit-scaling" => args.fit_scaling = PathBuf::from(value("--fit-scaling")?),
            "--frame-scaling" => args.frame_scaling = PathBuf::from(value("--frame-scaling")?),
            "--multi-tenant" => args.multi_tenant = PathBuf::from(value("--multi-tenant")?),
            "--warm-start" => args.warm_start = PathBuf::from(value("--warm-start")?),
            "--latency-tolerance" => {
                args.config.latency_tolerance = value("--latency-tolerance")?
                    .parse()
                    .map_err(|e| format!("invalid --latency-tolerance: {e}"))?;
            }
            "--throughput-tolerance" => {
                args.config.throughput_tolerance = value("--throughput-tolerance")?
                    .parse()
                    .map_err(|e| format!("invalid --throughput-tolerance: {e}"))?;
            }
            "--evals-tolerance" => {
                args.config.evaluations_tolerance = value("--evals-tolerance")?
                    .parse()
                    .map_err(|e| format!("invalid --evals-tolerance: {e}"))?;
            }
            "--write-baselines" => args.write_baselines = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

/// Checks one artifact against its baseline (sharing the artifact's file
/// name), or copies it into the baseline directory in write mode.
fn gate(
    name: &str,
    current_path: &Path,
    baseline_dir: &Path,
    write: bool,
    check: impl Fn(&str, &str) -> Result<CheckReport, String>,
) -> Result<bool, String> {
    let baseline_path = baseline_dir.join(
        current_path
            .file_name()
            .ok_or_else(|| format!("{} has no file name", current_path.display()))?,
    );
    let current = read(current_path)?;
    if write {
        std::fs::create_dir_all(baseline_dir)
            .map_err(|e| format!("cannot create {}: {e}", baseline_dir.display()))?;
        std::fs::write(&baseline_path, &current)
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        println!("refreshed baseline {}", baseline_path.display());
        return Ok(true);
    }
    let baseline = read(&baseline_path)?;
    println!(
        "{name}: comparing {} against baseline {}",
        current_path.display(),
        baseline_path.display()
    );
    let report = check(&baseline, &current)?;
    print!("{}", render_report(name, &report));
    Ok(report.passed())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(err) => {
            eprintln!("bench_check: {err}");
            return ExitCode::FAILURE;
        }
    };
    let config = args.config;
    let throughput_ok = gate(
        "runtime_throughput",
        &args.throughput,
        &args.baselines,
        args.write_baselines,
        |baseline, current| check_throughput(baseline, current, config),
    );
    let fit_scaling_ok = gate(
        "fit_scaling",
        &args.fit_scaling,
        &args.baselines,
        args.write_baselines,
        |baseline, current| check_fit_scaling(baseline, current, config),
    );
    let frame_scaling_ok = gate(
        "frame_scaling",
        &args.frame_scaling,
        &args.baselines,
        args.write_baselines,
        |baseline, current| check_frame_scaling(baseline, current, config),
    );
    let multi_tenant_ok = gate(
        "multi_tenant",
        &args.multi_tenant,
        &args.baselines,
        args.write_baselines,
        |baseline, current| check_multi_tenant(baseline, current, config),
    );
    let warm_start_ok = gate(
        "warm_start",
        &args.warm_start,
        &args.baselines,
        args.write_baselines,
        |baseline, current| check_warm_start(baseline, current, config),
    );
    let gates = [
        throughput_ok,
        fit_scaling_ok,
        frame_scaling_ok,
        multi_tenant_ok,
        warm_start_ok,
    ];
    for gate in &gates {
        if let Err(err) = gate {
            eprintln!("bench_check: {err}");
            return ExitCode::FAILURE;
        }
    }
    if gates.iter().all(|g| matches!(g, Ok(true))) {
        println!("bench_check: OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench_check: regression detected (see FAIL lines above)");
        ExitCode::FAILURE
    }
}
