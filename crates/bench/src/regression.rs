//! The CI bench-regression gate.
//!
//! `bench_check` compares the machine-readable bench artifacts
//! (`runtime_throughput.json`, `fit_scaling.json`) against baselines
//! committed under `bench/baselines/`, so a PR that slows the hot path or
//! reintroduces per-miss bisections fails CI instead of silently shipping.
//!
//! The workspace builds without a registry (no `serde`), so this module
//! carries a minimal recursive-descent JSON parser for the flat shapes the
//! benches emit, plus the comparison rules. Every gated quantity is chosen
//! to be **machine-independent**, so a slower CI runner or background load
//! cannot fail the gate — only a change to the code's relative economics
//! can:
//!
//! * **fit evaluations per miss** — fail on any increase beyond a small
//!   scheduler-noise guard band (default +5%): the counter that keeps the
//!   open-loop (1 per miss) vs. closed-loop (~8 per miss) economics honest.
//! * **p50 latency and throughput** — gated as ratios against the *same
//!   run's* single-thread row per workload (default ±25%): machine speed
//!   cancels, so a failure means the cache, the pool or the open-loop path
//!   got slower *relative to* the plain pipeline. Rows lacking a
//!   single-thread reference fall back to absolute comparison (which then
//!   assumes comparable hardware).
//! * **fit-scaling latencies** — gated as shape ratios: each metric's
//!   growth from its own smallest-scale value (the histogram fit must stay
//!   flat) and the pixel paths' cost relative to the histogram fit.
//!
//! The trade-off: a regression that slows *every* configuration uniformly
//! (e.g. the shared apply path) cancels out of the ratios too — absolute
//! numbers for such auditing are still in the uploaded artifacts, they are
//! just not CI-gated. Refresh baselines with `bench_check
//! --write-baselines` when a PR intentionally moves the gated ratios.

use std::collections::HashMap;
use std::fmt::Write as _;

/// A parsed JSON value (only what the bench artifacts need).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null` (also produced for non-finite numbers by the serializer).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, kept as `f64` (the artifacts stay well within the
    /// exactly-representable integer range).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, insertion-ordered.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a position-annotated description of the first syntax error.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_whitespace(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            byte as char,
            *pos,
            bytes.get(*pos).map(|b| *b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("invalid escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy a full UTF-8 scalar, not just one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_whitespace(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

/// Tolerances of the regression gate.
#[derive(Debug, Clone, Copy)]
pub struct CheckConfig {
    /// Maximum tolerated relative p50-latency (and fit-latency) increase
    /// before a row fails (0.25 = +25%).
    pub latency_tolerance: f64,
    /// Maximum tolerated relative throughput decrease before a row fails
    /// (0.25 = −25%).
    pub throughput_tolerance: f64,
    /// Guard band on the fit-evaluations-per-miss ratio: any increase
    /// beyond it fails (kept small — the ratio is machine-independent, the
    /// band only absorbs single-flight scheduler noise).
    pub evaluations_tolerance: f64,
    /// Additive slack on every latency comparison, in milliseconds: a
    /// regression within `baseline × (1 + tolerance) + floor` passes.
    /// Keeps tiny baselines (a cache-hit p50 of a few µs) from turning
    /// scheduler jitter into a 25% "regression".
    pub latency_floor: f64,
    /// Throughput and p50 gates are skipped (reported as informational)
    /// for rows whose *baseline* wall time is below this many ms — there
    /// is not enough signal in a sub-jitter run to gate on. The
    /// fit-evaluations-per-miss gate still applies to such rows.
    pub min_gated_wall_ms: f64,
    /// Maximum tolerated relative decrease of the mixed-suite per-class
    /// savings-recovery ratio before the gate fails (0.10 = −10%). The
    /// savings are deterministic functions of the synthetic suite, so the
    /// band only absorbs intentional curve-fitting tweaks, not machine
    /// noise.
    pub savings_tolerance: f64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            latency_tolerance: 0.25,
            throughput_tolerance: 0.25,
            evaluations_tolerance: 0.05,
            latency_floor: 0.5,
            min_gated_wall_ms: 20.0,
            savings_tolerance: 0.10,
        }
    }
}

/// The outcome of one artifact comparison: human-readable per-row lines
/// plus the violations that should fail CI.
#[derive(Debug, Default)]
pub struct CheckReport {
    /// One line per compared metric (also covers passing rows, so the CI
    /// log shows what was gated).
    pub comparisons: Vec<String>,
    /// The failed comparisons.
    pub violations: Vec<String>,
}

impl CheckReport {
    /// Whether the artifact passed the gate.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    fn compare_latency(
        &mut self,
        label: &str,
        baseline: f64,
        current: f64,
        tolerance: f64,
        floor: f64,
    ) {
        let limit = baseline * (1.0 + tolerance) + floor;
        let line = format!("{label}: {current:.3} vs baseline {baseline:.3} (limit {limit:.3})");
        if current > limit {
            self.violations.push(line.clone());
        }
        self.comparisons.push(line);
    }

    fn compare_throughput(&mut self, label: &str, baseline: f64, current: f64, tolerance: f64) {
        let limit = baseline * (1.0 - tolerance);
        let line = format!("{label}: {current:.1} vs baseline {baseline:.1} (limit {limit:.1})");
        if current < limit {
            self.violations.push(line.clone());
        }
        self.comparisons.push(line);
    }
}

/// Pulls a named number out of a row object, tolerating `null`.
fn field(row: &JsonValue, name: &str) -> Option<f64> {
    row.get(name).and_then(JsonValue::as_number)
}

/// Indexes a throughput artifact's rows by `(workload, configuration)`.
fn throughput_rows(doc: &JsonValue) -> Result<HashMap<(String, String), JsonValue>, String> {
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_array)
        .ok_or("throughput artifact has no \"rows\" array")?;
    let mut index = HashMap::new();
    for row in rows {
        let workload = row
            .get("workload")
            .and_then(JsonValue::as_str)
            .ok_or("row missing \"workload\"")?;
        let configuration = row
            .get("configuration")
            .and_then(JsonValue::as_str)
            .ok_or("row missing \"configuration\"")?;
        index.insert(
            (workload.to_string(), configuration.to_string()),
            row.clone(),
        );
    }
    Ok(index)
}

/// The fit-evaluations-per-miss ratio for one row. Prefers the serialized
/// ratio; falls back to recomputing from the raw counters for baselines
/// produced by an older serializer.
fn evaluations_per_miss(row: &JsonValue) -> Option<f64> {
    if let Some(ratio) = field(row, "fit_evaluations_per_miss") {
        return Some(ratio);
    }
    let evaluations = field(row, "fit_evaluations")?;
    let misses = field(row, "cache_misses")
        .filter(|m| *m > 0.0)
        .or_else(|| field(row, "frames").filter(|f| *f > 0.0))?;
    Some(evaluations / misses)
}

/// The configuration each workload's timing gates are normalized against.
const REFERENCE_CONFIGURATION: &str = "single-thread";

/// Gates the artifact's `mixed_suite` savings comparison, when present.
/// Savings are deterministic functions of the synthetic suite (single
/// worker, no background rebuilds), so unlike timings they are gated
/// directly:
///
/// * the per-class bank must save **strictly more** backlight than the
///   single worst-case curve (the whole point of the bank — losing this
///   means mixed traffic stopped dimming again);
/// * the per-class recovery ratio (per-class saving / closed-loop saving)
///   must not drop more than `savings_tolerance` below the baseline's;
/// * the per-class engine must hold the open-loop economics: at most one
///   fit evaluation per miss on its own characterized traffic.
///
/// A baseline with a `mixed_suite` section and a current run without one is
/// a violation (the comparison must not silently disappear); the reverse
/// passes with a note.
fn check_mixed_suite(
    baseline: &JsonValue,
    current: &JsonValue,
    config: CheckConfig,
    report: &mut CheckReport,
) {
    let (base, cur) = match (baseline.get("mixed_suite"), current.get("mixed_suite")) {
        (None, None) => return,
        (Some(_), None) => {
            report
                .violations
                .push("mixed_suite: present in baseline but missing from current run".to_string());
            return;
        }
        (None, Some(_)) => {
            report
                .comparisons
                .push("mixed_suite: new section (no baseline yet)".to_string());
            return;
        }
        (Some(base), Some(cur)) => (base, cur),
    };
    if let (Some(per_class), Some(worst)) = (
        field(cur, "per_class_saving"),
        field(cur, "worst_case_saving"),
    ) {
        let line = format!(
            "mixed_suite per-class saving {per_class:.4} vs worst-case {worst:.4} \
             (must be strictly above)"
        );
        if per_class <= worst + 1e-9 {
            report.violations.push(line.clone());
        }
        report.comparisons.push(line);
    }
    if let (Some(base_recovery), Some(cur_recovery)) = (
        field(base, "per_class_recovery"),
        field(cur, "per_class_recovery"),
    ) {
        let limit = base_recovery * (1.0 - config.savings_tolerance);
        let line = format!(
            "mixed_suite per-class recovery: {cur_recovery:.3} vs baseline \
             {base_recovery:.3} (limit {limit:.3})"
        );
        if cur_recovery < limit {
            report.violations.push(line.clone());
        }
        report.comparisons.push(line);
    }
    if let Some(evals) = field(cur, "per_class_evals_per_miss") {
        let line =
            format!("mixed_suite per-class fit evals/miss: {evals:.3} (limit 1.000 + noise)");
        if evals > 1.0 + config.evaluations_tolerance {
            report.violations.push(line.clone());
        }
        report.comparisons.push(line);
    }
}

/// Gates a `runtime_throughput.json` artifact against its baseline, per
/// `(workload, configuration)` row:
///
/// * **fit evaluations per miss** — always gated (machine-independent);
/// * **p50 latency and throughput** — gated *relative to the same run's
///   single-thread row for the workload* when both artifacts have one:
///   machine speed and background load cancel out of the ratio, so only a
///   *differential* regression (the cache, the pool, or the open-loop
///   policy getting slower relative to the plain pipeline) fails. Rows
///   with no reference fall back to absolute comparison; reference rows
///   themselves measure machine speed and are reported but not gated.
///
/// A row present in the baseline but missing from the current artifact is
/// a violation (configurations must not silently disappear); new rows pass
/// with a note.
///
/// # Errors
///
/// Returns a description of the first malformed artifact.
pub fn check_throughput(
    baseline: &str,
    current: &str,
    config: CheckConfig,
) -> Result<CheckReport, String> {
    let baseline_doc = JsonValue::parse(baseline)?;
    let current_doc = JsonValue::parse(current)?;
    let baseline = throughput_rows(&baseline_doc)?;
    let current = throughput_rows(&current_doc)?;
    let mut report = CheckReport::default();
    check_mixed_suite(&baseline_doc, &current_doc, config, &mut report);

    let mut keys: Vec<_> = baseline.keys().collect();
    keys.sort();
    for key in keys {
        let (workload, configuration) = key;
        let base_row = &baseline[key];
        let Some(cur_row) = current.get(key) else {
            report.violations.push(format!(
                "{workload}/{configuration}: present in baseline but missing from current run"
            ));
            continue;
        };
        // Rows whose baseline run was faster than the jitter floor carry
        // no usable timing signal: skip their latency/throughput gates
        // (the machine-independent evals/miss gate below still applies).
        let gate_timing =
            field(base_row, "wall_ms").map_or(true, |w| w >= config.min_gated_wall_ms);
        if !gate_timing {
            report.comparisons.push(format!(
                "{workload}/{configuration}: timing gates skipped (baseline wall below \
                 {:.0} ms)",
                config.min_gated_wall_ms
            ));
        }
        // The same-run reference this workload's timing is normalized by.
        let reference_key = (workload.clone(), REFERENCE_CONFIGURATION.to_string());
        let reference = if configuration == REFERENCE_CONFIGURATION {
            None
        } else {
            baseline
                .get(&reference_key)
                .zip(current.get(&reference_key))
        };
        if gate_timing && configuration == REFERENCE_CONFIGURATION {
            report.comparisons.push(format!(
                "{workload}/{configuration}: reference row (absolute speed reflects the \
                 machine, not the code — not gated)"
            ));
        }
        if let (true, Some((base_ref, cur_ref))) = (gate_timing, reference) {
            // Normalized p50: row / same-run single-thread.
            if let (Some(base), Some(cur), Some(base_ref_p50), Some(cur_ref_p50)) = (
                field(base_row, "p50_latency_ms"),
                field(cur_row, "p50_latency_ms"),
                field(base_ref, "p50_latency_ms").filter(|v| *v > 0.0),
                field(cur_ref, "p50_latency_ms").filter(|v| *v > 0.0),
            ) {
                report.compare_latency(
                    &format!(
                        "{workload}/{configuration} p50 vs single-thread \
                         (abs {cur:.3} ms)"
                    ),
                    base / base_ref_p50,
                    cur / cur_ref_p50,
                    config.latency_tolerance,
                    config.latency_floor / base_ref_p50,
                );
            }
            // Normalized throughput: row speedup over same-run single-thread.
            if let (Some(base), Some(cur), Some(base_ref_fps), Some(cur_ref_fps)) = (
                field(base_row, "throughput_fps"),
                field(cur_row, "throughput_fps"),
                field(base_ref, "throughput_fps").filter(|v| *v > 0.0),
                field(cur_ref, "throughput_fps").filter(|v| *v > 0.0),
            ) {
                report.compare_throughput(
                    &format!(
                        "{workload}/{configuration} speedup vs single-thread \
                         (abs {cur:.1} fps)"
                    ),
                    base / base_ref_fps,
                    cur / cur_ref_fps,
                    config.throughput_tolerance,
                );
            }
        } else if gate_timing && configuration != REFERENCE_CONFIGURATION {
            // No same-run reference available: fall back to absolute
            // comparison (only meaningful on comparable hardware).
            if let (Some(base), Some(cur)) = (
                field(base_row, "p50_latency_ms"),
                field(cur_row, "p50_latency_ms"),
            ) {
                report.compare_latency(
                    &format!("{workload}/{configuration} p50 [ms]"),
                    base,
                    cur,
                    config.latency_tolerance,
                    config.latency_floor,
                );
            }
            if let (Some(base), Some(cur)) = (
                field(base_row, "throughput_fps"),
                field(cur_row, "throughput_fps"),
            ) {
                report.compare_throughput(
                    &format!("{workload}/{configuration} throughput [fps]"),
                    base,
                    cur,
                    config.throughput_tolerance,
                );
            }
        }
        if let (Some(base), Some(cur)) = (
            evaluations_per_miss(base_row),
            evaluations_per_miss(cur_row),
        ) {
            let limit = base * (1.0 + config.evaluations_tolerance) + 1e-9;
            let line = format!(
                "{workload}/{configuration} fit evals/miss: {cur:.3} vs baseline {base:.3} (limit {limit:.3})"
            );
            if cur > limit {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    }
    for key in current.keys().filter(|k| !baseline.contains_key(*k)) {
        report.comparisons.push(format!(
            "{}/{}: new configuration (no baseline yet)",
            key.0, key.1
        ));
    }
    Ok(report)
}

/// Gates a `fit_scaling.json` artifact against its baseline via
/// machine-independent *shape* ratios:
///
/// * at the smallest scale, the cross-metric ratios `pixel/histogram` and
///   `windowed/histogram` (how much the pixel paths cost relative to the
///   level-space fit);
/// * at every larger scale, each metric's growth relative to its own
///   smallest-scale value — the experiment's headline is that the
///   histogram fit stays *flat* while the pixel paths grow linearly, and
///   this is exactly what a regression there moves.
///
/// A uniform machine slowdown cancels out of every gated ratio; absolute
/// per-fit latencies are never compared across runs.
///
/// # Errors
///
/// Returns a description of the first malformed artifact.
pub fn check_fit_scaling(
    baseline: &str,
    current: &str,
    config: CheckConfig,
) -> Result<CheckReport, String> {
    const METRICS: [&str; 3] = ["histogram_fit_us", "pixel_fit_us", "windowed_fit_us"];
    /// Additive slack on the gated shape ratios: both operands of a ratio
    /// jitter, so pure relative tolerance on a ratio near 1.0 would double
    /// the effective noise sensitivity.
    const RATIO_SLACK: f64 = 0.25;
    let index = |doc: &JsonValue| -> Result<HashMap<u64, JsonValue>, String> {
        let rows = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or("fit-scaling artifact has no \"rows\" array")?;
        let mut map = HashMap::new();
        for row in rows {
            let scale = field(row, "scale").ok_or("row missing \"scale\"")? as u64;
            map.insert(scale, row.clone());
        }
        Ok(map)
    };
    let baseline = index(&JsonValue::parse(baseline)?)?;
    let current = index(&JsonValue::parse(current)?)?;
    let mut report = CheckReport::default();
    let mut scales: Vec<_> = baseline.keys().copied().collect();
    scales.sort_unstable();
    let Some(&reference_scale) = scales.first() else {
        return Ok(report);
    };
    for &scale in &scales {
        let base_row = &baseline[&scale];
        let Some(cur_row) = current.get(&scale) else {
            report
                .violations
                .push(format!("scale {scale}x: missing from current run"));
            continue;
        };
        if scale == reference_scale {
            // Cross-metric shape at the reference scale: the pixel paths'
            // cost relative to the histogram-domain fit.
            for metric in ["pixel_fit_us", "windowed_fit_us"] {
                if let (Some(base), Some(cur), Some(base_hist), Some(cur_hist)) = (
                    field(base_row, metric),
                    field(cur_row, metric),
                    field(base_row, "histogram_fit_us").filter(|v| *v > 0.0),
                    field(cur_row, "histogram_fit_us").filter(|v| *v > 0.0),
                ) {
                    report.compare_latency(
                        &format!("scale {scale}x {metric} / histogram_fit_us"),
                        base / base_hist,
                        cur / cur_hist,
                        config.latency_tolerance,
                        RATIO_SLACK,
                    );
                }
            }
            continue;
        }
        // Growth relative to the metric's own reference-scale value: the
        // histogram fit must stay flat, the pixel paths must not steepen.
        let base_ref = &baseline[&reference_scale];
        let Some(cur_ref) = current.get(&reference_scale) else {
            continue; // already reported missing above
        };
        for metric in METRICS {
            if let (Some(base), Some(cur), Some(base_at_ref), Some(cur_at_ref)) = (
                field(base_row, metric),
                field(cur_row, metric),
                field(base_ref, metric).filter(|v| *v > 0.0),
                field(cur_ref, metric).filter(|v| *v > 0.0),
            ) {
                report.compare_latency(
                    &format!("scale {scale}x {metric} growth vs {reference_scale}x"),
                    base / base_at_ref,
                    cur / cur_at_ref,
                    config.latency_tolerance,
                    RATIO_SLACK,
                );
            }
        }
    }
    Ok(report)
}

/// Gates a `frame_scaling.json` artifact: real-resolution serve latency
/// must stay **sub-linear** in pixel count.
///
/// Structural gates read the **current** artifact only, so they hold on
/// any machine:
///
/// * `serve_miss(4K) / serve_miss(32×32)` must stay far below the 8100×
///   pixel ratio (the fit is histogram-domain; only the fused ingest and
///   the LUT apply scale with pixels);
/// * `serve_miss(4K) / serve_miss(1080p)` must not exceed the 4× pixel
///   ratio — per-pixel cost cannot steepen at the top end;
/// * at 1080p and above a hit must not cost more than its miss (a hit
///   does strictly less per-pixel work: the ingest alone);
/// * when the current artifact's `workers` is ≥ 2, the parallel ingest
///   must beat the serial pass at 1080p and 4K. A 1-CPU runner records
///   `workers: 1` and gets an informational note instead — conditioning
///   on the *baseline*'s worker count would let a multi-core regression
///   hide behind a single-core baseline.
///
/// The cross-run gate compares the machine-independent `4K / 1080p`
/// serve-miss and serial-ingest shape ratios against the baseline.
///
/// # Errors
///
/// Returns a description of the first malformed artifact.
pub fn check_frame_scaling(
    baseline: &str,
    current: &str,
    config: CheckConfig,
) -> Result<CheckReport, String> {
    /// Additive slack on gated shape ratios (see [`check_fit_scaling`]).
    const RATIO_SLACK: f64 = 0.25;
    /// Absolute ceiling on the 4K / 32×32 serve-miss ratio: ~30% of the
    /// 8100× pixel ratio. The small frame's serve carries fixed per-serve
    /// overhead (cache probe, fit, bookkeeping) that the big frame
    /// amortizes, so the measured ratio sits far below linear; crossing
    /// this ceiling means per-pixel work got superlinear or a second full
    /// traversal crept back into the serve path.
    const SUBLINEAR_CEILING: f64 = 2500.0;
    /// Required parallel-ingest advantage when workers ≥ 2.
    const PARALLEL_ADVANTAGE: f64 = 0.85;
    let index = |doc: &JsonValue| -> Result<HashMap<String, JsonValue>, String> {
        let rows = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or("frame-scaling artifact has no \"rows\" array")?;
        let mut map = HashMap::new();
        for row in rows {
            let label = row
                .get("label")
                .and_then(JsonValue::as_str)
                .ok_or("row missing \"label\"")?;
            map.insert(label.to_string(), row.clone());
        }
        Ok(map)
    };
    let baseline_doc = JsonValue::parse(baseline)?;
    let current_doc = JsonValue::parse(current)?;
    let baseline = index(&baseline_doc)?;
    let current = index(&current_doc)?;
    let mut report = CheckReport::default();

    let cur_miss = |label: &str| -> Option<f64> {
        current
            .get(label)
            .and_then(|row| field(row, "serve_miss_us"))
    };

    // Structural: whole-range sub-linearity, current artifact only.
    if let (Some(small), Some(large)) = (cur_miss("32x32"), cur_miss("4K")) {
        if small > 0.0 {
            let ratio = large / small;
            let line = format!(
                "serve_miss 4K / 32x32: {ratio:.1}x for 8100x the pixels \
                 (ceiling {SUBLINEAR_CEILING:.0}x)"
            );
            if ratio > SUBLINEAR_CEILING {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    } else {
        report
            .violations
            .push("frame-scaling current run is missing the 32x32 or 4K row".to_string());
    }

    // Structural: the top end must not steepen past linear.
    if let (Some(mid), Some(large)) = (cur_miss("1080p"), cur_miss("4K")) {
        if mid > 0.0 {
            let ratio = large / mid;
            let limit = 4.0 + RATIO_SLACK;
            let line =
                format!("serve_miss 4K / 1080p: {ratio:.2}x for 4x the pixels (limit {limit:.2}x)");
            if ratio > limit {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    }

    // Structural: at real resolutions a hit (ingest only) cannot cost
    // more than a miss (ingest + fit + apply).
    for label in ["1080p", "4K"] {
        if let Some(row) = current.get(label) {
            if let (Some(hit), Some(miss)) =
                (field(row, "serve_hit_us"), field(row, "serve_miss_us"))
            {
                let limit = miss * (1.0 + config.latency_tolerance);
                let line = format!(
                    "{label} serve_hit {hit:.1}us vs miss {miss:.1}us (limit {limit:.1}us)"
                );
                if hit > limit {
                    report.violations.push(line.clone());
                }
                report.comparisons.push(line);
            }
        }
    }

    // Conditional: parallel ingest speedup, armed by the current machine.
    let cur_workers = current_doc
        .get("workers")
        .and_then(JsonValue::as_number)
        .unwrap_or(1.0);
    for label in ["1080p", "4K"] {
        let Some(row) = current.get(label) else {
            continue;
        };
        let (Some(serial), Some(parallel)) = (
            field(row, "ingest_serial_us").filter(|v| *v > 0.0),
            field(row, "ingest_parallel_us"),
        ) else {
            continue;
        };
        if cur_workers >= 2.0 {
            let limit = serial * PARALLEL_ADVANTAGE;
            let line = format!(
                "{label} parallel ingest {parallel:.1}us vs serial {serial:.1}us \
                 ({cur_workers:.0} workers, limit {limit:.1}us)"
            );
            if parallel > limit {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        } else {
            report.comparisons.push(format!(
                "{label} parallel ingest {parallel:.1}us vs serial {serial:.1}us \
                 (single worker; speedup gate not armed)"
            ));
        }
    }

    // Cross-run: the machine-independent top-end shape ratios.
    for metric in ["serve_miss_us", "ingest_serial_us"] {
        let ratio = |rows: &HashMap<String, JsonValue>| -> Option<f64> {
            let mid = rows.get("1080p").and_then(|r| field(r, metric))?;
            let large = rows.get("4K").and_then(|r| field(r, metric))?;
            (mid > 0.0).then_some(large / mid)
        };
        if let (Some(base), Some(cur)) = (ratio(&baseline), ratio(&current)) {
            report.compare_latency(
                &format!("{metric} 4K / 1080p"),
                base,
                cur,
                config.latency_tolerance,
                RATIO_SLACK,
            );
        }
    }
    Ok(report)
}

/// Indexes a multi-tenant artifact as scenario name → tenant name → row.
#[allow(clippy::type_complexity)]
fn multi_tenant_rows(doc: &JsonValue) -> Result<Vec<(String, Vec<(String, JsonValue)>)>, String> {
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_array)
        .ok_or("multi-tenant artifact has no \"scenarios\" array")?;
    let mut index = Vec::new();
    for scenario in scenarios {
        let name = scenario
            .get("scenario")
            .and_then(JsonValue::as_str)
            .ok_or("scenario missing \"scenario\"")?;
        let tenants = scenario
            .get("tenants")
            .and_then(JsonValue::as_array)
            .ok_or("scenario missing \"tenants\" array")?;
        let mut rows = Vec::new();
        for tenant in tenants {
            let tenant_name = tenant
                .get("tenant")
                .and_then(JsonValue::as_str)
                .ok_or("tenant row missing \"tenant\"")?;
            rows.push((tenant_name.to_string(), tenant.clone()));
        }
        index.push((name.to_string(), rows));
    }
    Ok(index)
}

/// Gates a `multi_tenant.json` load-generator artifact.
///
/// Almost everything gated here is **machine-independent by construction**
/// — the load generator's schedules make the interesting counters
/// structural properties of the admission bounds, and the expectations
/// ship *inside the current artifact* (`expect_sheds`, `expect_degraded`,
/// `savings_rank`), so they hold on any machine:
///
/// * **counter reconciliation** — every tenant's `served + sheds` must
///   equal its offered `arrivals`: a frame is either admitted and served
///   or shed, never lost;
/// * **shed and degrade expectations** — a tenant whose admission bound
///   covers its whole schedule must shed zero; a tenant whose bursts
///   structurally overrun its bound must shed some; same for
///   deadline-degraded serves;
/// * **percentile ordering** — p50 ≤ p99 ≤ p999 within every tenant;
/// * **savings ordering** — tenants carrying a `savings_rank` must save
///   strictly more backlight at each higher rank (same content, looser
///   budget);
/// * **overload isolation** — the protected tenant's retention under a 2×
///   flood must stay ≥ 0.9 with zero sheds, while the flood is clamped.
///
/// The only cross-run comparison is the **p999/p50 tail shape ratio** per
/// tenant, gated against the committed baseline with a deliberately wide
/// band (4× + slack): machine speed cancels out of the ratio, and the band
/// only catches an order-of-magnitude tail collapse — e.g. the serve path
/// acquiring a lock that serializes the queue — not scheduler noise.
///
/// A scenario or tenant present in the baseline but missing from the
/// current artifact is a violation; new ones pass with a note.
///
/// # Errors
///
/// Returns a description of the first malformed artifact.
pub fn check_multi_tenant(
    baseline: &str,
    current: &str,
    _config: CheckConfig,
) -> Result<CheckReport, String> {
    /// Relative band on the p999/p50 tail ratio (4× the baseline ratio).
    const TAIL_TOLERANCE: f64 = 3.0;
    /// Additive slack on the tail ratio (both operands jitter).
    const TAIL_SLACK: f64 = 2.0;
    /// Minimum retention of the protected tenant's isolated throughput.
    const MIN_RETENTION: f64 = 0.9;

    let baseline_doc = JsonValue::parse(baseline)?;
    let current_doc = JsonValue::parse(current)?;
    let baseline = multi_tenant_rows(&baseline_doc)?;
    let current = multi_tenant_rows(&current_doc)?;
    let mut report = CheckReport::default();

    // Structural gates, evaluated on the current artifact alone.
    for (scenario, tenants) in &current {
        let mut ranked: Vec<(u64, &str, f64)> = Vec::new();
        for (tenant, row) in tenants {
            let label = format!("{scenario}/{tenant}");
            if let (Some(arrivals), Some(served), Some(sheds)) = (
                field(row, "arrivals"),
                field(row, "served"),
                field(row, "sheds"),
            ) {
                let line = format!(
                    "{label} reconciliation: served {served} + sheds {sheds} vs \
                     arrivals {arrivals}"
                );
                if served + sheds != arrivals {
                    report.violations.push(line.clone());
                }
                report.comparisons.push(line);
            }
            for (counter, expectation_key) in [
                ("sheds", "expect_sheds"),
                ("deadline_degraded", "expect_degraded"),
            ] {
                let Some(expectation) = row.get(expectation_key).and_then(JsonValue::as_str) else {
                    continue;
                };
                let Some(value) = field(row, counter) else {
                    continue;
                };
                let ok = match expectation {
                    "zero" => value == 0.0,
                    "some" => value > 0.0,
                    _ => true,
                };
                let line = format!("{label} {counter}: {value} (expected {expectation})");
                if !ok {
                    report.violations.push(line.clone());
                }
                report.comparisons.push(line);
            }
            if let (Some(p50), Some(p99), Some(p999)) = (
                field(row, "p50_ms"),
                field(row, "p99_ms"),
                field(row, "p999_ms"),
            ) {
                let line = format!(
                    "{label} percentile ordering: p50 {p50:.3} <= p99 {p99:.3} <= \
                     p999 {p999:.3} ms"
                );
                if !(p50 <= p99 && p99 <= p999) {
                    report.violations.push(line.clone());
                }
                report.comparisons.push(line);
            }
            if let (Some(rank), Some(saving)) =
                (field(row, "savings_rank"), field(row, "mean_power_saving"))
            {
                ranked.push((rank as u64, tenant, saving));
            }
        }
        // Each higher savings rank must dim strictly further: the ranked
        // tenants serve the same content cycle at ever looser budgets.
        ranked.sort_by_key(|&(rank, _, _)| rank);
        for pair in ranked.windows(2) {
            let (_, looser, more) = pair[1];
            let (_, tighter, less) = pair[0];
            let line = format!(
                "{scenario} savings ordering: {looser} {more:.4} vs {tighter} {less:.4} \
                 (must be strictly above)"
            );
            if more <= less {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    }

    // Tail shape vs the committed baseline (the only cross-run gate).
    for (scenario, tenants) in &baseline {
        let Some((_, cur_tenants)) = current.iter().find(|(name, _)| name == scenario) else {
            report.violations.push(format!(
                "{scenario}: present in baseline but missing from current run"
            ));
            continue;
        };
        for (tenant, base_row) in tenants {
            let Some((_, cur_row)) = cur_tenants.iter().find(|(name, _)| name == tenant) else {
                report.violations.push(format!(
                    "{scenario}/{tenant}: present in baseline but missing from current run"
                ));
                continue;
            };
            if let (Some(base_p50), Some(base_p999), Some(cur_p50), Some(cur_p999)) = (
                field(base_row, "p50_ms").filter(|v| *v > 0.0),
                field(base_row, "p999_ms"),
                field(cur_row, "p50_ms").filter(|v| *v > 0.0),
                field(cur_row, "p999_ms"),
            ) {
                report.compare_latency(
                    &format!("{scenario}/{tenant} p999/p50 tail ratio"),
                    base_p999 / base_p50,
                    cur_p999 / cur_p50,
                    TAIL_TOLERANCE,
                    TAIL_SLACK,
                );
            }
        }
    }
    for (scenario, tenants) in &current {
        match baseline.iter().find(|(name, _)| name == scenario) {
            None => report
                .comparisons
                .push(format!("{scenario}: new scenario (no baseline yet)")),
            Some((_, base_tenants)) => {
                for (tenant, _) in tenants {
                    if !base_tenants.iter().any(|(name, _)| name == tenant) {
                        report
                            .comparisons
                            .push(format!("{scenario}/{tenant}: new tenant (no baseline yet)"));
                    }
                }
            }
        }
    }

    // The overload-isolation section: fully structural, gated from the
    // current run (the protected tenant's fair share covers its schedule,
    // so retention below 1.0 — let alone 0.9 — means isolation broke).
    match (baseline_doc.get("isolation"), current_doc.get("isolation")) {
        (Some(_), None) => report
            .violations
            .push("isolation: present in baseline but missing from current run".to_string()),
        (None, Some(_)) => report
            .comparisons
            .push("isolation: new section (no baseline yet)".to_string()),
        _ => {}
    }
    if let Some(iso) = current_doc.get("isolation") {
        if let Some(retention) = field(iso, "retention") {
            let line = format!(
                "isolation retention under 2x flood: {retention:.3} (limit {MIN_RETENTION})"
            );
            if retention < MIN_RETENTION {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
        if let Some(sheds) = field(iso, "protected_sheds") {
            let line = format!("isolation protected sheds: {sheds} (expected zero)");
            if sheds != 0.0 {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
        if let Some(sheds) = field(iso, "flood_sheds") {
            let line = format!("isolation flood sheds: {sheds} (expected some — the clamp)");
            if sheds == 0.0 {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    }
    Ok(report)
}

/// Extracts the per-node rows of a warm-start artifact, keyed by role.
fn warm_start_nodes(doc: &JsonValue) -> Result<Vec<(String, JsonValue)>, String> {
    let nodes = doc
        .get("nodes")
        .and_then(|v| v.as_array().map(<[JsonValue]>::to_vec))
        .ok_or_else(|| "warm_start artifact has no nodes array".to_string())?;
    nodes
        .into_iter()
        .map(|row| {
            let name = row
                .get("node")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| "warm_start node row has no node name".to_string())?
                .to_string();
            Ok((name, row))
        })
        .collect()
}

/// Checks the warm-start artifact: the snapshot tier's serve economics.
///
/// Every gate is structural — a deterministic counter or saving over
/// synthetic single-worker traffic — so a slow or loaded runner cannot
/// fail it:
///
/// * the snapshot is non-empty and its hot-cache spill was re-admitted;
/// * the warm node's *first* cache miss costs ≤ 1 fit evaluation (the
///   whole point of restoring a characterized bank) and it never
///   recharacterizes;
/// * the cold node's first miss is strictly dearer and its recovery
///   (serves until a ≤ 1-evaluation miss) strictly longer;
/// * the warm node replays spilled fits as cache hits the cold node has
///   to re-fit;
/// * every node saves power, and the warm node's mean saving tracks the
///   canary's within the savings tolerance (the bank traveled intact —
///   restoring it preserves the canary's savings behaviour on in-class
///   traffic) as well as its own committed baseline.
///
/// # Errors
///
/// Returns an error when either artifact cannot be parsed or lacks the
/// expected nodes.
pub fn check_warm_start(
    baseline: &str,
    current: &str,
    config: CheckConfig,
) -> Result<CheckReport, String> {
    let baseline_doc = JsonValue::parse(baseline)?;
    let current_doc = JsonValue::parse(current)?;
    let current_nodes = warm_start_nodes(&current_doc)?;
    let baseline_nodes = warm_start_nodes(&baseline_doc)?;
    let mut report = CheckReport::default();

    let node = |name: &str| -> Result<&JsonValue, String> {
        current_nodes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, row)| row)
            .ok_or_else(|| format!("warm_start artifact has no {name} node"))
    };
    let canary = node("canary")?;
    let cold = node("cold")?;
    let warm = node("warm")?;

    let mut structural = |label: String, ok: bool| {
        if !ok {
            report.violations.push(label.clone());
        }
        report.comparisons.push(label);
    };

    for (key, expect_positive) in [("snapshot_bytes", true), ("cache_restored", true)] {
        if let Some(value) = field(&current_doc, key) {
            structural(
                format!("{key}: {value} (expected > 0)"),
                !expect_positive || value > 0.0,
            );
        }
    }
    if let Some(skipped) = field(&current_doc, "cache_skipped") {
        structural(
            format!("cache_skipped: {skipped} (expected 0 — same cache shape)"),
            skipped == 0.0,
        );
    }

    if let (Some(warm_first), Some(cold_first)) = (
        field(warm, "first_miss_evaluations"),
        field(cold, "first_miss_evaluations"),
    ) {
        structural(
            format!("warm first-miss evaluations: {warm_first} (limit 1)"),
            warm_first <= 1.0,
        );
        structural(
            format!("cold first-miss evaluations: {cold_first} (must exceed warm's {warm_first})"),
            cold_first > warm_first,
        );
    }
    if let Some(rebuilds) = field(warm, "recharacterizations") {
        structural(
            format!("warm recharacterizations: {rebuilds} (expected 0 — the bank came in warm)"),
            rebuilds == 0.0,
        );
    }
    if let (Some(warm_recovery), Some(cold_recovery)) = (
        field(warm, "recovery_serves"),
        field(cold, "recovery_serves"),
    ) {
        structural(
            format!("warm recovery serves: {warm_recovery} (expected 0)"),
            warm_recovery == 0.0,
        );
        structural(
            format!("cold recovery serves: {cold_recovery} (must exceed warm's {warm_recovery})"),
            cold_recovery > warm_recovery,
        );
    }
    if let (Some(warm_hits), Some(cold_hits)) =
        (field(warm, "cache_hits"), field(cold, "cache_hits"))
    {
        structural(
            format!(
                "warm cache hits: {warm_hits} (must exceed cold's {cold_hits} — the \
                 restored spill replays the canary's fits)"
            ),
            warm_hits > cold_hits,
        );
    }
    for (name, row) in &current_nodes {
        if let Some(saving) = field(row, "mean_power_saving") {
            structural(
                format!("{name} mean power saving: {saving:.4} (expected > 0)"),
                saving > 0.0,
            );
        }
    }
    if let (Some(warm_saving), Some(canary_saving)) = (
        field(warm, "mean_power_saving"),
        field(canary, "mean_power_saving"),
    ) {
        let floor = canary_saving * (1.0 - config.savings_tolerance);
        structural(
            format!(
                "warm saving tracks the canary's bank: {warm_saving:.4} vs \
                 {canary_saving:.4} (floor {floor:.4})"
            ),
            warm_saving >= floor,
        );
    }

    // The only cross-run gate: the warm node's saving against its own
    // committed baseline (deterministic synthetic traffic, so the band
    // only absorbs intentional curve-fitting changes).
    for (name, base_row) in &baseline_nodes {
        let Some((_, cur_row)) = current_nodes.iter().find(|(n, _)| n == name) else {
            report.violations.push(format!(
                "{name}: present in baseline but missing from current run"
            ));
            continue;
        };
        if let (Some(base), Some(cur)) = (
            field(base_row, "mean_power_saving"),
            field(cur_row, "mean_power_saving"),
        ) {
            let floor = base * (1.0 - config.savings_tolerance);
            let line = format!(
                "{name} mean power saving: {cur:.4} vs baseline {base:.4} (floor {floor:.4})"
            );
            if cur < floor {
                report.violations.push(line.clone());
            }
            report.comparisons.push(line);
        }
    }
    Ok(report)
}

/// Renders a report section for the CI log.
pub fn render_report(name: &str, report: &CheckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {name} ==");
    for line in &report.comparisons {
        let status = if report.violations.contains(line) {
            "FAIL"
        } else {
            "ok  "
        };
        let _ = writeln!(out, "  {status} {line}");
    }
    for violation in report
        .violations
        .iter()
        .filter(|v| !report.comparisons.contains(v))
    {
        let _ = writeln!(out, "  FAIL {violation}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn throughput_doc_with_wall(wall: f64, p50: f64, fps: f64, evals: u64, misses: u64) -> String {
        format!(
            r#"{{"budget": 0.1, "frame_size": 32, "video_frames": 16, "rows": [
                {{"workload": "suite x2", "configuration": "open-loop", "workers": 4,
                  "frames": 38, "wall_ms": {wall}, "p50_latency_ms": {p50},
                  "throughput_fps": {fps},
                  "cache_misses": {misses}, "fit_evaluations": {evals}}}
            ]}}"#
        )
    }

    fn throughput_doc(p50: f64, fps: f64, evals: u64, misses: u64) -> String {
        throughput_doc_with_wall(600.0, p50, fps, evals, misses)
    }

    #[test]
    fn parser_round_trips_the_bench_shapes() {
        let doc = JsonValue::parse(&throughput_doc(1.5, 300.0, 19, 19)).unwrap();
        assert_eq!(
            doc.get("frame_size").and_then(JsonValue::as_number),
            Some(32.0)
        );
        let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("configuration").and_then(JsonValue::as_str),
            Some("open-loop")
        );
    }

    #[test]
    fn parser_handles_escapes_null_and_nesting() {
        let doc = JsonValue::parse(
            r#"{"s": "a\"b\\c\nd A", "n": null, "b": [true, false], "x": -1.5e2}"#,
        )
        .unwrap();
        assert_eq!(
            doc.get("s").and_then(JsonValue::as_str),
            Some("a\"b\\c\nd A")
        );
        assert_eq!(doc.get("n"), Some(&JsonValue::Null));
        assert_eq!(doc.get("x").and_then(JsonValue::as_number), Some(-150.0));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn identical_artifacts_pass() {
        let doc = throughput_doc(2.0, 300.0, 19, 19);
        let report = check_throughput(&doc, &doc, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(!report.comparisons.is_empty());
    }

    #[test]
    fn latency_and_throughput_regressions_fail() {
        let base = throughput_doc(2.0, 300.0, 19, 19);
        // +60%: beyond both the 25% tolerance and the 0.5 ms floor.
        let slow = throughput_doc(3.2, 300.0, 19, 19);
        let report = check_throughput(&base, &slow, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("p50"));

        let sluggish = throughput_doc(2.0, 200.0, 19, 19); // -33% fps
        let report = check_throughput(&base, &sluggish, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("throughput"));

        // Within tolerance passes.
        let ok = throughput_doc(2.4, 250.0, 19, 19);
        assert!(check_throughput(&base, &ok, CheckConfig::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn tiny_latencies_are_cushioned_by_the_floor() {
        // A 5 µs cache-hit p50 doubling to 10 µs is scheduler jitter, not a
        // regression: the additive 0.5 ms floor absorbs it.
        let base = throughput_doc(0.005, 300.0, 19, 19);
        let jitter = throughput_doc(0.010, 300.0, 19, 19);
        assert!(check_throughput(&base, &jitter, CheckConfig::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn sub_jitter_walls_skip_timing_gates_but_not_the_evals_gate() {
        // Baseline wall 3 ms (< 20 ms): latency/throughput swings pass...
        let base = throughput_doc_with_wall(3.0, 0.003, 6000.0, 2, 2);
        let noisy = throughput_doc_with_wall(5.0, 0.030, 2000.0, 2, 2);
        let report = check_throughput(&base, &noisy, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("timing gates skipped")));

        // ...but the machine-independent evals/miss gate still fires.
        let bisecting = throughput_doc_with_wall(3.0, 0.003, 6000.0, 16, 2);
        let report = check_throughput(&base, &bisecting, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("fit evals/miss"));
    }

    #[test]
    fn fit_evaluation_per_miss_increases_fail() {
        let base = throughput_doc(2.0, 300.0, 40, 40); // 1.0 per miss
        let bisecting = throughput_doc(2.0, 300.0, 320, 40); // 8.0 per miss
        let report = check_throughput(&base, &bisecting, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("fit evals/miss"));

        // Scheduler noise inside the 5% guard band passes (+2.5% here).
        let noisy = throughput_doc(2.0, 300.0, 41, 40);
        assert!(check_throughput(&base, &noisy, CheckConfig::default())
            .unwrap()
            .passed());
    }

    /// Baseline+current docs with a single-thread reference row and an
    /// open-loop row for one workload.
    fn throughput_pair_doc(ref_p50: f64, ref_fps: f64, ol_p50: f64, ol_fps: f64) -> String {
        format!(
            r#"{{"budget": 0.1, "rows": [
                {{"workload": "suite x2", "configuration": "single-thread",
                  "frames": 38, "wall_ms": 600.0, "p50_latency_ms": {ref_p50},
                  "throughput_fps": {ref_fps}, "cache_misses": 0,
                  "fit_evaluations": 342}},
                {{"workload": "suite x2", "configuration": "open-loop",
                  "frames": 38, "wall_ms": 30.0, "p50_latency_ms": {ol_p50},
                  "throughput_fps": {ol_fps}, "cache_misses": 19,
                  "fit_evaluations": 19}}
            ]}}"#
        )
    }

    #[test]
    fn uniform_machine_slowdown_passes_the_normalized_gates() {
        let base = throughput_pair_doc(16.0, 62.0, 1.1, 1600.0);
        // Everything 2x slower — a loaded or weaker machine, not a code
        // regression: all gated ratios are unchanged.
        let loaded = throughput_pair_doc(32.0, 31.0, 2.2, 800.0);
        let report = check_throughput(&base, &loaded, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("reference row")));
    }

    #[test]
    fn differential_regressions_fail_the_normalized_gates() {
        let base = throughput_pair_doc(16.0, 62.0, 1.1, 1600.0);
        // The open-loop row alone slows 3x while the reference is steady:
        // a real regression in the gated path.
        let regressed = throughput_pair_doc(16.0, 62.0, 3.3, 530.0);
        let report = check_throughput(&base, &regressed, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("vs single-thread")));
    }

    /// Throughput doc with a mixed-suite savings section.
    fn mixed_doc(worst: f64, per_class: f64, recovery: f64, evals: f64) -> String {
        format!(
            r#"{{"budget": 0.1, "mixed_suite": {{"budget": 0.1, "frames": 19,
                "classes": 6, "closed_loop_saving": 0.41,
                "worst_case_saving": {worst}, "envelope_saving": 0.10,
                "per_class_saving": {per_class}, "per_class_recovery": {recovery},
                "per_class_fallbacks": 0, "per_class_evals_per_miss": {evals}}},
                "rows": []}}"#
        )
    }

    #[test]
    fn mixed_suite_savings_are_gated() {
        let base = mixed_doc(0.0, 0.24, 0.585, 1.0);
        // Identical savings pass.
        let report = check_throughput(&base, &base, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("per-class recovery")));

        // Per-class dropping to the worst-case's level fails the strict
        // ordering even before the ratio check.
        let collapsed = mixed_doc(0.0, 0.0, 0.0, 1.0);
        let report = check_throughput(&base, &collapsed, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("strictly above")));

        // A >10% recovery regression fails; a smaller one passes.
        let regressed = mixed_doc(0.0, 0.20, 0.48, 1.0);
        let report = check_throughput(&base, &regressed, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("recovery")));
        let wobble = mixed_doc(0.0, 0.23, 0.56, 1.0);
        assert!(check_throughput(&base, &wobble, CheckConfig::default())
            .unwrap()
            .passed());

        // Losing the ≤1 eval/miss economics fails.
        let bisecting = mixed_doc(0.0, 0.24, 0.585, 4.2);
        let report = check_throughput(&base, &bisecting, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("evals/miss")));

        // Section disappearing fails; appearing fresh passes with a note.
        let bare = r#"{"rows": []}"#;
        let report = check_throughput(&base, bare, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        let report = check_throughput(bare, &base, CheckConfig::default()).unwrap();
        assert!(report.passed());
        assert!(report.comparisons[0].contains("new section"));
    }

    #[test]
    fn missing_configurations_fail_and_new_ones_pass() {
        let base = throughput_doc(2.0, 300.0, 19, 19);
        let empty = r#"{"rows": []}"#;
        let report = check_throughput(&base, empty, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("missing"));

        let report = check_throughput(empty, &base, CheckConfig::default()).unwrap();
        assert!(report.passed(), "new configurations are not violations");
        assert!(report.comparisons[0].contains("new configuration"));
    }

    /// Two-scale fit-scaling artifact: `(histogram, pixel, windowed)` per
    /// scale.
    fn fit_scaling_doc(s1: (f64, f64, f64), s4: (f64, f64, f64)) -> String {
        format!(
            r#"{{"base": 32, "repeats": 2, "rows": [
                {{"scale": 1, "width": 32, "pixels": 1024,
                  "histogram_fit_us": {}, "pixel_fit_us": {},
                  "windowed_fit_us": {}}},
                {{"scale": 4, "width": 128, "pixels": 16384,
                  "histogram_fit_us": {}, "pixel_fit_us": {},
                  "windowed_fit_us": {}}}
            ]}}"#,
            s1.0, s1.1, s1.2, s4.0, s4.1, s4.2
        )
    }

    #[test]
    fn fit_scaling_gates_shape_not_machine_speed() {
        // Flat histogram fit, linear pixel/windowed growth.
        let base = fit_scaling_doc((1400.0, 1500.0, 2000.0), (1400.0, 6000.0, 32000.0));

        // A uniformly 2x slower machine changes no gated ratio: passes.
        let slow_machine = fit_scaling_doc((2800.0, 3000.0, 4000.0), (2800.0, 12000.0, 64000.0));
        let report = check_fit_scaling(&base, &slow_machine, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);

        // The histogram fit losing its flatness (growing 2.5x with pixels)
        // is a shape regression: fails even at identical absolute speed
        // elsewhere.
        let steepened = fit_scaling_doc((1400.0, 1500.0, 2000.0), (3500.0, 6000.0, 32000.0));
        let report = check_fit_scaling(&base, &steepened, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("histogram_fit_us growth"));

        // The pixel path getting disproportionately expensive relative to
        // the histogram fit at the reference scale also fails.
        let heavier_pixels = fit_scaling_doc((1400.0, 4000.0, 2000.0), (1400.0, 6000.0, 32000.0));
        let report = check_fit_scaling(&base, &heavier_pixels, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("pixel_fit_us / histogram_fit_us"));

        // A missing scale is a violation.
        let only_one = r#"{"rows": [{"scale": 1, "histogram_fit_us": 1400.0,
            "pixel_fit_us": 1500.0, "windowed_fit_us": 2000.0}]}"#;
        let report = check_fit_scaling(&base, only_one, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("missing"));
    }

    /// Frame-scaling artifact. `speed` multiplies every latency uniformly
    /// (a slower machine); the other knobs move individual gated numbers,
    /// all expressed at `speed` 1.0: the 1080p and 4K miss latencies, the
    /// 4K hit latency, and the 4K parallel-ingest latency (4K serial is
    /// fixed at 24 ms).
    fn frame_scaling_doc(
        workers: u32,
        speed: f64,
        miss_1080: f64,
        miss_4k: f64,
        hit_4k: f64,
        parallel_4k: f64,
    ) -> String {
        let s = |v: f64| v * speed;
        format!(
            r#"{{"quick": true, "repeats": 2, "workers": {workers}, "rows": [
                {{"label": "32x32", "width": 32, "height": 32, "pixels": 1024,
                  "serve_miss_us": {}, "serve_hit_us": {},
                  "ingest_serial_us": {}, "ingest_parallel_us": {},
                  "lut_apply_us": {}}},
                {{"label": "480p", "width": 854, "height": 480, "pixels": 409920,
                  "serve_miss_us": {}, "serve_hit_us": {},
                  "ingest_serial_us": {}, "ingest_parallel_us": {},
                  "lut_apply_us": {}}},
                {{"label": "1080p", "width": 1920, "height": 1080, "pixels": 2073600,
                  "serve_miss_us": {}, "serve_hit_us": {},
                  "ingest_serial_us": {}, "ingest_parallel_us": {},
                  "lut_apply_us": {}}},
                {{"label": "4K", "width": 3840, "height": 2160, "pixels": 8294400,
                  "serve_miss_us": {}, "serve_hit_us": {},
                  "ingest_serial_us": {}, "ingest_parallel_us": {},
                  "lut_apply_us": {}}}
            ]}}"#,
            s(150.0),
            s(30.0),
            s(12.0),
            s(14.0),
            s(4.0),
            s(2600.0),
            s(900.0),
            s(1100.0),
            s(700.0),
            s(400.0),
            s(miss_1080),
            s(4500.0),
            s(6000.0),
            s(3200.0),
            s(2000.0),
            s(miss_4k),
            s(hit_4k),
            s(24000.0),
            s(parallel_4k),
            s(8000.0),
        )
    }

    fn healthy_frame_scaling_doc() -> String {
        frame_scaling_doc(4, 1.0, 13000.0, 50000.0, 18000.0, 13000.0)
    }

    #[test]
    fn frame_scaling_identical_artifacts_pass() {
        let doc = healthy_frame_scaling_doc();
        let report = check_frame_scaling(&doc, &doc, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(!report.comparisons.is_empty());
    }

    #[test]
    fn frame_scaling_structural_gates_read_the_current_artifact() {
        // The top end steepening past the 4x pixel ratio fails even when
        // the baseline has the identical shape: both ratio operands come
        // from the current artifact.
        let superlinear = frame_scaling_doc(4, 1.0, 13000.0, 60000.0, 18000.0, 13000.0);
        let report =
            check_frame_scaling(&superlinear, &superlinear, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        // 60000/13000 ≈ 4.6x > the 4.25x limit; far below the 2500x
        // whole-range ceiling, so only the top-end gate fires.
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("4K / 1080p"));

        // A hit costing more than a miss at 4K means the hit path re-reads
        // pixels it should not touch.
        let base = healthy_frame_scaling_doc();
        let heavy_hit = frame_scaling_doc(4, 1.0, 13000.0, 50000.0, 70000.0, 13000.0);
        let report = check_frame_scaling(&base, &heavy_hit, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(
            report.violations.iter().any(|v| v.contains("serve_hit")),
            "{:?}",
            report.violations
        );

        // A missing row is a violation.
        let truncated = r#"{"workers": 1, "rows": [{"label": "32x32",
            "serve_miss_us": 150.0, "serve_hit_us": 30.0}]}"#;
        let report = check_frame_scaling(&base, truncated, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("missing"));
    }

    #[test]
    fn frame_scaling_parallel_gate_arms_only_on_multicore_runners() {
        let base = healthy_frame_scaling_doc();

        // workers >= 2 with the 4K fan-out no faster than serial: the
        // parallel ingest regressed.
        let no_speedup = frame_scaling_doc(4, 1.0, 13000.0, 50000.0, 18000.0, 23000.0);
        let report = check_frame_scaling(&base, &no_speedup, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("parallel ingest")));

        // The same degraded numbers from a single-core runner (which also
        // sees no 1080p speedup) are informational only: one CPU cannot
        // demonstrate a fan-out.
        let single_core = frame_scaling_doc(1, 1.0, 13000.0, 50000.0, 18000.0, 24000.0).replace(
            "\"ingest_parallel_us\": 3200",
            "\"ingest_parallel_us\": 6000",
        );
        let report = check_frame_scaling(&base, &single_core, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("speedup gate not armed")));
    }

    #[test]
    fn frame_scaling_cross_run_shape_gates_cancel_machine_speed() {
        // Baseline with a comfortable 4K/1080p serve-miss shape of 2.5x.
        let base = frame_scaling_doc(4, 1.0, 20000.0, 50000.0, 18000.0, 13000.0);

        // A uniformly 2x slower machine moves no gated ratio: passes.
        let slow = frame_scaling_doc(4, 2.0, 20000.0, 50000.0, 18000.0, 13000.0);
        let report = check_frame_scaling(&base, &slow, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);

        // The shape drifting from 2.5x to ~3.85x stays under the absolute
        // 4.25x structural limit but regresses the baseline's shape past
        // tolerance: only the cross-run gate catches it.
        let reshaped = frame_scaling_doc(4, 1.0, 13000.0, 50000.0, 18000.0, 13000.0);
        let report = check_frame_scaling(&base, &reshaped, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("serve_miss_us 4K / 1080p")));
    }

    /// Multi-tenant artifact with a bursty scenario and an isolation
    /// section; the interesting knobs are parameterized.
    #[allow(clippy::too_many_arguments)]
    fn multi_tenant_doc(
        batch_served: u64,
        batch_sheds: u64,
        interactive_saving: f64,
        batch_saving: f64,
        batch_p999: f64,
        retention: f64,
        protected_sheds: u64,
        flood_sheds: u64,
    ) -> String {
        format!(
            r#"{{"quick": true,
            "isolation": {{"isolated_served": 128, "isolated_fps": 2400.0,
                "contended_served": 128, "contended_fps": 2200.0,
                "contended_p999_ms": 5.1, "protected_sheds": {protected_sheds},
                "flood_sheds": {flood_sheds}, "retention": {retention}}},
            "scenarios": [
                {{"scenario": "bursty", "wall_ms": 60.0, "tenants": [
                    {{"tenant": "interactive", "arrivals": 96, "served": 96,
                      "sheds": 0, "deadline_degraded": 0, "p50_ms": 0.4,
                      "p99_ms": 2.1, "p999_ms": 4.8,
                      "mean_power_saving": {interactive_saving},
                      "throughput_fps": 1800.0, "cache_bytes": 2048,
                      "expect_sheds": "zero", "expect_degraded": "zero",
                      "savings_rank": 0}},
                    {{"tenant": "batch", "arrivals": 128, "served": {batch_served},
                      "sheds": {batch_sheds}, "deadline_degraded": 0,
                      "p50_ms": 0.6, "p99_ms": 3.0, "p999_ms": {batch_p999},
                      "mean_power_saving": {batch_saving},
                      "throughput_fps": 1500.0, "cache_bytes": 1024,
                      "expect_sheds": "some", "expect_degraded": "zero",
                      "savings_rank": 1}}
                ]}}
            ]}}"#
        )
    }

    fn healthy_multi_tenant_doc() -> String {
        multi_tenant_doc(100, 28, 0.30, 0.45, 6.0, 1.0, 0, 77)
    }

    #[test]
    fn multi_tenant_identical_artifacts_pass() {
        let doc = healthy_multi_tenant_doc();
        let report = check_multi_tenant(&doc, &doc, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.comparisons.iter().any(|c| c.contains("tail ratio")));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("savings ordering")));
    }

    #[test]
    fn multi_tenant_structural_gates_fire_on_the_current_artifact() {
        let base = healthy_multi_tenant_doc();

        // Lost frames: served + sheds no longer covers the arrivals.
        let leaky = multi_tenant_doc(90, 28, 0.30, 0.45, 6.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &leaky, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations[0].contains("reconciliation"));

        // A tenant expected to shed that did not (admission broke).
        let unshed = multi_tenant_doc(128, 0, 0.30, 0.45, 6.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &unshed, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("expected some")));

        // The looser-budget tenant no longer saving strictly more.
        let inverted = multi_tenant_doc(100, 28, 0.45, 0.30, 6.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &inverted, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("savings ordering")));

        // Percentiles out of order (a broken percentile computation).
        let scrambled = multi_tenant_doc(100, 28, 0.30, 0.45, 1.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &scrambled, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("percentile ordering")));
    }

    #[test]
    fn multi_tenant_tail_ratio_has_a_wide_machine_band() {
        let base = healthy_multi_tenant_doc();
        // The batch tail tripling (p999 6 → 18 ms at steady p50) stays
        // inside the deliberately wide 4x+slack band: not gated noise.
        let noisy = multi_tenant_doc(100, 28, 0.30, 0.45, 18.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &noisy, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);

        // An order-of-magnitude collapse (6 → 80 ms) fails.
        let collapsed = multi_tenant_doc(100, 28, 0.30, 0.45, 80.0, 1.0, 0, 77);
        let report = check_multi_tenant(&base, &collapsed, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("tail ratio")));
    }

    #[test]
    fn multi_tenant_isolation_gates_retention_and_the_clamp() {
        let base = healthy_multi_tenant_doc();

        let starved = multi_tenant_doc(100, 28, 0.30, 0.45, 6.0, 0.6, 0, 77);
        let report = check_multi_tenant(&base, &starved, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("retention")));

        let leaking = multi_tenant_doc(100, 28, 0.30, 0.45, 6.0, 1.0, 5, 77);
        let report = check_multi_tenant(&base, &leaking, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("protected sheds")));

        let unclamped = multi_tenant_doc(100, 28, 0.30, 0.45, 6.0, 1.0, 0, 0);
        let report = check_multi_tenant(&base, &unclamped, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("flood sheds")));
    }

    #[test]
    fn multi_tenant_missing_rows_fail_and_new_rows_pass() {
        let base = healthy_multi_tenant_doc();
        let empty = r#"{"scenarios": []}"#;
        let report = check_multi_tenant(&base, empty, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("bursty: present in baseline")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("isolation: present in baseline")));

        let report = check_multi_tenant(empty, &base, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("new scenario")));
        assert!(report
            .comparisons
            .iter()
            .any(|c| c.contains("isolation: new section")));
    }

    #[test]
    fn report_rendering_marks_failures() {
        let base = throughput_doc(2.0, 300.0, 19, 19);
        let slow = throughput_doc(4.0, 300.0, 19, 19);
        let report = check_throughput(&base, &slow, CheckConfig::default()).unwrap();
        let rendered = render_report("runtime_throughput", &report);
        assert!(rendered.contains("FAIL"));
        assert!(rendered.contains("ok  "));
    }

    /// Warm-start artifact; the interesting knobs are parameterized.
    fn warm_start_doc(
        warm_first: u64,
        cold_first: u64,
        warm_recovery: usize,
        cold_recovery: usize,
        warm_rebuilds: u64,
        warm_saving: f64,
        cache_restored: usize,
    ) -> String {
        format!(
            r#"{{"budget": 0.1, "classes": 2, "snapshot_bytes": 4096,
                "cache_restored": {cache_restored}, "cache_skipped": 0,
                "nodes": [
                  {{"node": "canary", "frames": 19, "first_miss_evaluations": 1,
                    "recovery_serves": 0, "fit_evaluations": 19, "cache_misses": 19,
                    "cache_hits": 0, "recharacterizations": 0, "mean_power_saving": 0.30}},
                  {{"node": "cold", "frames": 23, "first_miss_evaluations": {cold_first},
                    "recovery_serves": {cold_recovery}, "fit_evaluations": 40,
                    "cache_misses": 23, "cache_hits": 0, "recharacterizations": 1,
                    "mean_power_saving": 0.30}},
                  {{"node": "warm", "frames": 23, "first_miss_evaluations": {warm_first},
                    "recovery_serves": {warm_recovery}, "fit_evaluations": 19,
                    "cache_misses": 19, "cache_hits": 4, "recharacterizations": {warm_rebuilds},
                    "mean_power_saving": {warm_saving}}}
                ]}}"#
        )
    }

    #[test]
    fn warm_start_structural_gates_read_the_current_artifact() {
        let healthy = warm_start_doc(1, 8, 0, 1, 0, 0.30, 19);
        let report = check_warm_start(&healthy, &healthy, CheckConfig::default()).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);

        // A warm node paying a multi-evaluation first miss lost the whole
        // point of the restore.
        let cold_warm = warm_start_doc(8, 8, 0, 1, 0, 0.30, 19);
        let report = check_warm_start(&healthy, &cold_warm, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("warm first-miss evaluations")));

        // A warm node that recharacterized did not come in warm.
        let rebuilt = warm_start_doc(1, 8, 0, 1, 1, 0.30, 19);
        let report = check_warm_start(&healthy, &rebuilt, CheckConfig::default()).unwrap();
        assert!(!report.passed());

        // A cold node recovering as fast as the warm one means the tier
        // buys nothing.
        let instant_cold = warm_start_doc(1, 8, 0, 0, 0, 0.30, 19);
        let report = check_warm_start(&healthy, &instant_cold, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("cold recovery serves")));

        // An empty spill restoration breaks the hot-cache half of the tier.
        let no_spill = warm_start_doc(1, 8, 0, 1, 0, 0.30, 0);
        let report = check_warm_start(&healthy, &no_spill, CheckConfig::default()).unwrap();
        assert!(!report.passed());
    }

    #[test]
    fn warm_start_savings_are_gated_against_canary_and_baseline() {
        let healthy = warm_start_doc(1, 8, 0, 1, 0, 0.30, 19);
        // Warm saving collapsing below the canary's means the restored
        // bank did not preserve the canary's savings behaviour.
        let dim = warm_start_doc(1, 8, 0, 1, 0, 0.20, 19);
        let report = check_warm_start(&healthy, &dim, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("warm saving tracks the canary")));
        // And a run whose savings regress their own committed baseline
        // past tolerance fails the cross-run gate even when warm still
        // tracks the canary. (Savings are deterministic, so the band
        // only absorbs intentional curve-fitting changes.)
        let both_dim = warm_start_doc(1, 8, 0, 1, 0, 0.30, 19).replace(
            "\"mean_power_saving\": 0.30}",
            "\"mean_power_saving\": 0.25}",
        );
        let report = check_warm_start(&healthy, &both_dim, CheckConfig::default()).unwrap();
        assert!(!report.passed());
        assert!(report.violations.iter().any(|v| v.contains("vs baseline")));
    }
}
