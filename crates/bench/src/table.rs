//! A minimal fixed-width text-table formatter shared by all harness
//! binaries, so every experiment prints rows the same way the paper's tables
//! are laid out.

use std::fmt::Write as _;

/// A simple left-aligned-first-column, right-aligned-numbers text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are rendered empty, extra cells are kept.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table to a string with aligned columns.
    pub fn render(&self) -> String {
        let columns = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; columns];
        for (i, cell) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, width) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<width$}");
                } else {
                    let _ = write!(out, "  {cell:>width$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a fraction as a percentage with two decimals (the style of the
/// paper's tables).
pub fn percent(fraction: f64) -> String {
    format!("{:.2}", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut table = TextTable::new(["image", "saving"]);
        table.push_row(["Lena", "47.53"]);
        table.push_row(["a-very-long-name", "7.00"]);
        let text = table.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("image"));
        assert!(lines[2].starts_with("Lena"));
        // Numeric column is right-aligned: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn handles_ragged_rows() {
        let mut table = TextTable::new(["a", "b", "c"]);
        table.push_row(["1"]);
        table.push_row(["1", "2", "3", "4"]);
        let text = table.render();
        assert!(text.contains('4'));
        assert_eq!(table.row_count(), 2);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.4553), "45.53");
        assert_eq!(percent(1.0), "100.00");
    }

    #[test]
    fn display_matches_render() {
        let mut table = TextTable::new(["x"]);
        table.push_row(["y"]);
        assert_eq!(format!("{table}"), table.render());
    }
}
