//! Open-loop multi-tenant load generator.
//!
//! Drives a [`TenantRegistry`] with a **fixed arrival schedule**: every
//! frame has a scheduled arrival instant decided before the run starts,
//! the dispatcher admits it at that instant regardless of how the previous
//! frames are doing, and a frame's latency is measured from its *scheduled
//! arrival* to its completion. A slow serve therefore inflates the latency
//! of every frame queued behind it — the generator never commits
//! *coordinated omission* (the closed-loop mistake of pausing the arrival
//! process while the system struggles, which hides exactly the tail the
//! p999 is supposed to expose).
//!
//! The scenarios are deterministic where it matters for CI: every gated
//! count (sheds, deadline degradations, savings ordering) is a structural
//! property of the schedule and the admission bounds, not of machine
//! speed; only the latency percentiles reflect the machine, and
//! `bench_check` gates those purely as p999/p50 shape ratios.

// lint: allow(no-sleep) -- the open-loop dispatcher paces scheduled
// arrivals by sleeping until each send instant; pausing here is the
// arrival process itself, not hidden backpressure.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use hebs_core::{CharacterizationSample, DistortionCharacteristic, HebsPolicy, PipelineConfig};
use hebs_imaging::{synthetic, GrayImage};
use hebs_quality::GlobalUiqiDistortion;
use hebs_runtime::{
    CacheConfig, RecharacterizePolicy, ServeOptions, ServingMode, ShedPolicy, TenantRegistry,
    TenantSpec,
};

/// What the regression gate should expect of a counter in a scenario — the
/// expectation is decided by the schedule's structure (e.g. a tenant whose
/// admission bound equals its arrival count can never shed), so it ships
/// inside the artifact and holds on any machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountExpectation {
    /// The counter must be exactly zero.
    Zero,
    /// The counter must be strictly positive.
    Some,
    /// The counter is informational; any value passes.
    Any,
}

impl CountExpectation {
    /// The token serialized into the bench artifact.
    pub fn as_str(self) -> &'static str {
        match self {
            CountExpectation::Zero => "zero",
            CountExpectation::Some => "some",
            CountExpectation::Any => "any",
        }
    }
}

/// One tenant's offered load within a scenario.
pub struct TenantLoad {
    /// Tenant name (also the registry name).
    pub name: &'static str,
    /// The tenant's distortion budget.
    pub max_distortion: f64,
    /// Weight in the shared cache partition and fair-share computation.
    pub cache_weight: u32,
    /// Admission bound (admitted-but-unfinished frames).
    pub queue_limit: usize,
    /// Serving mode for the tenant's engine.
    pub mode: ServingMode,
    /// Characteristic to install before taking traffic (open-loop tenants).
    pub seed: Option<DistortionCharacteristic>,
    /// Per-frame deadline relative to the scheduled arrival; past-due
    /// frames degrade to the installed curve instead of re-checking drift.
    pub deadline: Option<Duration>,
    /// Scheduled arrival offsets from the scenario start, ascending.
    pub arrivals: Vec<Duration>,
    /// Frames served round-robin across the arrivals.
    pub frames: Vec<GrayImage>,
    /// What the gate should expect of the tenant's shed count.
    pub expect_sheds: CountExpectation,
    /// What the gate should expect of the tenant's degraded-serve count.
    pub expect_degraded: CountExpectation,
    /// Rank of this tenant in the scenario's savings ordering (gated:
    /// higher rank must save strictly more backlight), or `None` to keep
    /// the tenant out of the ordering.
    pub savings_rank: Option<u32>,
}

/// A named multi-tenant load scenario.
pub struct LoadScenario {
    /// Scenario name (the artifact key).
    pub name: &'static str,
    /// Shed policy of the registry under test.
    pub shed: ShedPolicy,
    /// Worker threads draining each tenant's admitted queue.
    pub workers_per_tenant: usize,
    /// The tenants and their offered load.
    pub tenants: Vec<TenantLoad>,
}

/// Measured outcome for one tenant of a scenario run.
#[derive(Debug, Clone)]
pub struct TenantLoadReport {
    /// Tenant name.
    pub tenant: String,
    /// Scheduled arrivals offered.
    pub arrivals: usize,
    /// Frames admitted and served.
    pub served: u64,
    /// Arrivals refused by admission control.
    pub sheds: u64,
    /// Serves degraded to the installed curve by a passed deadline.
    pub deadline_degraded: u64,
    /// Median arrival-to-completion latency.
    pub p50: Duration,
    /// 99th-percentile arrival-to-completion latency.
    pub p99: Duration,
    /// 99.9th-percentile arrival-to-completion latency.
    pub p999: Duration,
    /// Mean fractional power saving over the served frames.
    pub mean_power_saving: f64,
    /// Served frames per wall-clock second.
    pub throughput_fps: f64,
    /// Bytes charged to the tenant in the shared cache after the run.
    pub cache_bytes: u64,
    /// Expectation the gate applies to `sheds`.
    pub expect_sheds: CountExpectation,
    /// Expectation the gate applies to `deadline_degraded`.
    pub expect_degraded: CountExpectation,
    /// Savings-ordering rank, if the tenant participates.
    pub savings_rank: Option<u32>,
}

/// Measured outcome of one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Wall-clock time from the first scheduled arrival to full drain.
    pub wall: Duration,
    /// Per-tenant reports, in registration order.
    pub tenants: Vec<TenantLoadReport>,
}

/// The overload-isolation experiment: the protected tenant's throughput
/// with and without a flooding neighbour at twice its arrival rate.
#[derive(Debug, Clone)]
pub struct IsolationReport {
    /// Frames the protected tenant served running alone.
    pub isolated_served: u64,
    /// Its throughput running alone (frames per second).
    pub isolated_fps: f64,
    /// Frames it served with the flood tenant sharing the registry.
    pub contended_served: u64,
    /// Its throughput under contention.
    pub contended_fps: f64,
    /// Its p999 under contention.
    pub contended_p999: Duration,
    /// Sheds of the protected tenant under contention (must be 0: its
    /// weighted fair share covers its entire offered load).
    pub protected_sheds: u64,
    /// Sheds of the flooding tenant (must be positive: the fair share
    /// clamps it).
    pub flood_sheds: u64,
}

impl IsolationReport {
    /// Fraction of the isolated served-frame count retained under
    /// contention. Admission is structural (the protected tenant's fair
    /// share covers its whole schedule), so this is 1.0 unless isolation
    /// is broken.
    pub fn retention(&self) -> f64 {
        if self.isolated_served == 0 {
            0.0
        } else {
            self.contended_served as f64 / self.isolated_served as f64
        }
    }
}

/// The latency percentile at quantile `q` of an unsorted sample set.
fn percentile(latencies: &mut [Duration], q: f64) -> Duration {
    if latencies.is_empty() {
        return Duration::ZERO;
    }
    latencies.sort_unstable();
    let rank = (q * latencies.len() as f64).ceil() as usize;
    latencies[rank.clamp(1, latencies.len()) - 1]
}

/// The pipeline every load tenant serves with: the histogram-capable
/// global UIQI measure, so fits cost O(levels).
fn load_pipeline() -> PipelineConfig {
    PipelineConfig::default().with_measure(GlobalUiqiDistortion)
}

/// A cycle of `count` distinct frames of one content family.
fn frame_cycle(count: usize, size: u32, dark: bool, seed: u64) -> Vec<GrayImage> {
    (0..count as u64)
        .map(|i| {
            if dark {
                synthetic::low_key(size, size, seed + i)
            } else {
                synthetic::high_key(size, size, seed + i)
            }
        })
        .collect()
}

/// Steady arrivals: `count` frames, one every `period`.
fn steady(count: usize, period: Duration) -> Vec<Duration> {
    (0..count as u32).map(|i| period * i).collect()
}

/// Bursty arrivals: `bursts` bursts of `burst_size` back-to-back frames,
/// one burst every `gap`.
fn bursts(bursts: usize, burst_size: usize, gap: Duration) -> Vec<Duration> {
    let mut arrivals = Vec::with_capacity(bursts * burst_size);
    for burst in 0..bursts as u32 {
        for _ in 0..burst_size {
            arrivals.push(gap * burst);
        }
    }
    arrivals
}

/// Diurnal arrivals: the interarrival period sweeps a triangle wave
/// between `min_period` and `max_period` over `cycle` frames — a
/// compressed day with a rush hour and a lull.
fn diurnal(
    count: usize,
    min_period: Duration,
    max_period: Duration,
    cycle: usize,
) -> Vec<Duration> {
    let cycle = cycle.max(2);
    let half = cycle / 2;
    let spread = max_period.saturating_sub(min_period);
    let mut offset = Duration::ZERO;
    let mut arrivals = Vec::with_capacity(count);
    for i in 0..count {
        arrivals.push(offset);
        let phase = i % cycle;
        let tri = if phase < half { phase } else { cycle - phase };
        offset += min_period + spread * tri as u32 / half.max(1) as u32;
    }
    arrivals
}

/// Runs one scenario: builds the registry, replays the merged arrival
/// schedule open-loop, drains the per-tenant worker pools and collects the
/// per-tenant reports.
///
/// # Errors
///
/// Propagates registry construction and serving errors (sheds are counted,
/// not propagated).
pub fn run_scenario(scenario: &LoadScenario) -> hebs_runtime::Result<ScenarioReport> {
    let mut builder = TenantRegistry::builder()
        .with_cache(CacheConfig::exact().with_byte_budget(Some(16 << 20)))
        .with_shed_policy(scenario.shed);
    for tenant in &scenario.tenants {
        builder = builder.tenant(
            HebsPolicy::closed_loop(load_pipeline()),
            TenantSpec::named(tenant.name)
                .with_budget(tenant.max_distortion)
                .with_mode(tenant.mode.clone())
                .with_cache_weight(tenant.cache_weight)
                .with_queue_limit(tenant.queue_limit),
        );
    }
    let registry = builder.build()?;
    for (index, tenant) in scenario.tenants.iter().enumerate() {
        if let Some(seed) = &tenant.seed {
            let id = registry
                .id_of(tenant.name)
                .expect("registered tenant resolves");
            registry.engine(id)?.install_characteristic(seed.clone())?;
        }
        debug_assert_eq!(registry.ids().nth(index), registry.id_of(tenant.name));
    }

    // The merged open-loop schedule: (offset, tenant index, arrival index),
    // sorted by scheduled arrival. Ties keep tenant order (stable sort).
    let mut schedule: Vec<(Duration, usize, usize)> = Vec::new();
    for (tenant_index, tenant) in scenario.tenants.iter().enumerate() {
        for (arrival_index, &offset) in tenant.arrivals.iter().enumerate() {
            schedule.push((offset, tenant_index, arrival_index));
        }
    }
    schedule.sort_by_key(|&(offset, _, _)| offset);

    struct Job<'a> {
        permit: hebs_runtime::AdmissionPermit,
        frame: &'a GrayImage,
        scheduled: Instant,
        deadline: Option<Instant>,
    }

    let workers = scenario.workers_per_tenant.max(1);
    let mut measured: Vec<(Vec<Duration>, f64)>;
    let wall;
    {
        // One queue per tenant, drained by that tenant's own workers:
        // another tenant's backlog never steals this tenant's serving
        // threads (the cache and admission state are the shared parts
        // under test).
        let mut senders: Vec<mpsc::Sender<Job<'_>>> = Vec::new();
        let mut receivers: Vec<mpsc::Receiver<Job<'_>>> = Vec::new();
        for _ in &scenario.tenants {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let results_store = hebs_analysis::OrderedMutex::new(
            hebs_analysis::LockClass::Stats,
            vec![(Vec::new(), 0.0f64); scenario.tenants.len()],
        );
        let registry = &registry;
        let results = &results_store;

        let start = Instant::now();
        std::thread::scope(|scope| -> hebs_runtime::Result<()> {
            for (tenant_index, receiver) in receivers.into_iter().enumerate() {
                // `workers_per_tenant` > 1 would need a shared receiver; the
                // scenarios here use one worker per tenant so queueing delay
                // is visible in the percentiles.
                let _ = workers;
                scope.spawn(move || {
                    let mut latencies = Vec::new();
                    let mut saving_sum = 0.0f64;
                    while let Ok(job) = receiver.recv() {
                        let mut options = ServeOptions::default();
                        if let Some(deadline) = job.deadline {
                            options = options.with_deadline(deadline);
                        }
                        let result = registry
                            .serve_with_permit(&job.permit, job.frame, &options)
                            .expect("load serve succeeds");
                        latencies.push(job.scheduled.elapsed());
                        saving_sum += result.outcome.power_saving;
                        drop(job.permit);
                    }
                    let mut slots = results.lock().expect("results lock");
                    slots[tenant_index] = (latencies, saving_sum);
                });
            }

            // The dispatcher: admit each frame at its scheduled instant.
            // Running behind schedule dispatches immediately (never pauses
            // the arrival process — no coordinated omission).
            for &(offset, tenant_index, arrival_index) in &schedule {
                let scheduled = start + offset;
                let now = Instant::now();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                let tenant = &scenario.tenants[tenant_index];
                let id = registry
                    .id_of(tenant.name)
                    .expect("registered tenant resolves");
                match registry.admit(id) {
                    Ok(permit) => {
                        let job = Job {
                            permit,
                            frame: &tenant.frames[arrival_index % tenant.frames.len()],
                            scheduled,
                            deadline: tenant.deadline.map(|d| scheduled + d),
                        };
                        senders[tenant_index]
                            .send(job)
                            .expect("worker outlives the dispatcher");
                    }
                    Err(hebs_runtime::RuntimeError::Shed { .. }) => {}
                    Err(other) => return Err(other),
                }
            }
            drop(senders); // close the queues; workers drain and exit
            Ok(())
        })?;
        wall = start.elapsed();
        measured = results_store.into_inner().expect("results lock");
    }

    let mut tenants = Vec::with_capacity(scenario.tenants.len());
    for (index, tenant) in scenario.tenants.iter().enumerate() {
        let id = registry
            .id_of(tenant.name)
            .expect("registered tenant resolves");
        let stats = registry.stats(id)?;
        let (latencies, saving_sum) = &mut measured[index];
        let served = stats.frames;
        tenants.push(TenantLoadReport {
            tenant: tenant.name.to_string(),
            arrivals: tenant.arrivals.len(),
            served,
            sheds: stats.sheds,
            deadline_degraded: stats.deadline_degraded,
            p50: percentile(latencies, 0.50),
            p99: percentile(latencies, 0.99),
            p999: percentile(latencies, 0.999),
            mean_power_saving: if served == 0 {
                0.0
            } else {
                *saving_sum / served as f64
            },
            throughput_fps: if wall.is_zero() {
                0.0
            } else {
                served as f64 / wall.as_secs_f64()
            },
            cache_bytes: stats.cache_bytes,
            expect_sheds: tenant.expect_sheds,
            expect_degraded: tenant.expect_degraded,
            savings_rank: tenant.savings_rank,
        });
    }
    Ok(ScenarioReport {
        scenario: scenario.name.to_string(),
        wall,
        tenants,
    })
}

/// The bursty two-tenant mix: a steady interactive tenant with a strict
/// budget, and a batch tenant whose bursts overrun its admission bound.
///
/// Structural gates: the interactive tenant's bound equals its arrival
/// count, so it can never shed; each batch burst (64 back-to-back
/// arrivals) exceeds the batch bound (4) by far more than a worker can
/// drain within the admit loop, so the batch tenant always sheds; and the
/// batch tenant's 4x looser budget dims the same content further, so it
/// saves strictly more power.
pub fn bursty_scenario(quick: bool) -> LoadScenario {
    let (steady_count, burst_count) = if quick { (96, 2) } else { (256, 4) };
    let size = 32;
    LoadScenario {
        name: "bursty",
        shed: ShedPolicy::RejectNewest,
        workers_per_tenant: 1,
        tenants: vec![
            TenantLoad {
                name: "interactive",
                max_distortion: 0.05,
                cache_weight: 3,
                queue_limit: steady_count,
                mode: ServingMode::ClosedLoop,
                seed: None,
                deadline: None,
                arrivals: steady(steady_count, Duration::from_micros(500)),
                frames: frame_cycle(8, size, false, 100),
                expect_sheds: CountExpectation::Zero,
                expect_degraded: CountExpectation::Zero,
                savings_rank: Some(0),
            },
            TenantLoad {
                name: "batch",
                max_distortion: 0.20,
                cache_weight: 1,
                queue_limit: 4,
                mode: ServingMode::ClosedLoop,
                seed: None,
                deadline: None,
                arrivals: bursts(burst_count, 64, Duration::from_millis(12)),
                frames: frame_cycle(8, size, false, 100),
                expect_sheds: CountExpectation::Some,
                expect_degraded: CountExpectation::Zero,
                savings_rank: Some(1),
            },
        ],
    }
}

/// The diurnal two-tenant mix: a realtime open-loop tenant serving a
/// stale curve under a zero-slack deadline, and an unhurried archive
/// tenant.
///
/// The realtime tenant's installed curve underestimates distortion
/// (claiming ≈ 0 at every range, the limit case of a characterization the
/// traffic has drifted away from), so every open-loop lookup lands over
/// budget at the drift decision point — and, already past its zero-slack
/// deadline, is served degraded off the installed curve instead of
/// falling back to the closed-loop search. Degraded fits are never
/// cached, so every arrival re-degrades: the count equals the tenant's
/// arrivals and is structural. The archive tenant has no deadline, so its
/// degraded count must be zero.
///
/// # Errors
///
/// Propagates curve-construction errors.
pub fn diurnal_scenario(quick: bool) -> hebs_runtime::Result<LoadScenario> {
    let count = if quick { 96 } else { 240 };
    let size = 32;
    // The stale seed: distortion ≈ 0 everywhere, so the lookup always
    // picks the dimmest range and the measured recheck always drifts.
    let samples: Vec<CharacterizationSample> = (0..6)
        .map(|i| CharacterizationSample {
            image: format!("stale{i}"),
            dynamic_range: 40 * (i + 1),
            distortion: 0.0,
            power_saving: 0.9,
        })
        .collect();
    let seed = DistortionCharacteristic::from_samples(samples)
        .map_err(hebs_runtime::RuntimeError::Core)?;
    Ok(LoadScenario {
        name: "diurnal",
        shed: ShedPolicy::RejectNewest,
        workers_per_tenant: 1,
        tenants: vec![
            TenantLoad {
                name: "realtime",
                max_distortion: 0.10,
                cache_weight: 2,
                queue_limit: count,
                mode: ServingMode::OpenLoop {
                    recharacterize: RecharacterizePolicy {
                        interval: None,
                        drift_limit: None,
                        ..RecharacterizePolicy::default()
                    },
                },
                seed: Some(seed),
                deadline: Some(Duration::ZERO),
                arrivals: diurnal(
                    count,
                    Duration::from_micros(300),
                    Duration::from_micros(1500),
                    count / 2,
                ),
                frames: frame_cycle(8, size, false, 300),
                expect_sheds: CountExpectation::Zero,
                expect_degraded: CountExpectation::Some,
                savings_rank: None,
            },
            TenantLoad {
                name: "archive",
                max_distortion: 0.20,
                cache_weight: 1,
                queue_limit: count,
                mode: ServingMode::ClosedLoop,
                seed: None,
                deadline: None,
                arrivals: diurnal(
                    count,
                    Duration::from_micros(600),
                    Duration::from_micros(3000),
                    count / 2,
                ),
                frames: frame_cycle(8, size, false, 300),
                expect_sheds: CountExpectation::Zero,
                expect_degraded: CountExpectation::Zero,
                savings_rank: None,
            },
        ],
    })
}

/// Runs the overload-isolation experiment: the protected tenant's steady
/// schedule alone, then the same schedule with a flood tenant offering
/// twice its load, under a weighted-fair shed policy whose shares make
/// both outcomes structural:
///
/// * the protected tenant (weight 15 of 16 over a shared capacity of
///   `count * 9 / 8`) gets a fair share of `count * 135 / 128` — at least
///   its entire offered load, so it can never shed no matter what the
///   flood does;
/// * the flood's fair share *and* queue bound are `capacity / 16`, so its
///   back-to-back bursts of 64 arrivals structurally overrun the clamp.
///
/// Any retention below 1.0 — let alone the gated 0.9 — therefore means
/// tenant isolation itself broke, not that the machine was slow.
///
/// # Errors
///
/// Propagates registry construction and serving errors.
pub fn run_overload_isolation(quick: bool) -> hebs_runtime::Result<IsolationReport> {
    let count = if quick { 128 } else { 384 };
    let size = 32;
    let period = Duration::from_micros(400);
    let shared_capacity = count * 9 / 8;
    let flood_bound = shared_capacity / 16;
    let shed = ShedPolicy::WeightedFair { shared_capacity };
    let protected = || TenantLoad {
        name: "protected",
        max_distortion: 0.10,
        cache_weight: 15,
        queue_limit: count,
        mode: ServingMode::ClosedLoop,
        seed: None,
        deadline: None,
        arrivals: steady(count, period),
        frames: frame_cycle(8, size, false, 500),
        expect_sheds: CountExpectation::Zero,
        expect_degraded: CountExpectation::Zero,
        savings_rank: None,
    };
    // Twice the protected tenant's offered load, delivered as bursts of 64
    // back-to-back arrivals (mean rate 2x) — far beyond the flood's fair
    // share, so the clamp must engage.
    let flood = TenantLoad {
        name: "flood",
        max_distortion: 0.10,
        cache_weight: 1,
        queue_limit: flood_bound,
        mode: ServingMode::ClosedLoop,
        seed: None,
        deadline: None,
        arrivals: bursts(count * 2 / 64, 64, period * 32),
        frames: frame_cycle(8, size, true, 600),
        expect_sheds: CountExpectation::Some,
        expect_degraded: CountExpectation::Zero,
        savings_rank: None,
    };

    let isolated = run_scenario(&LoadScenario {
        name: "isolation-baseline",
        shed,
        workers_per_tenant: 1,
        tenants: vec![protected()],
    })?;
    let contended = run_scenario(&LoadScenario {
        name: "isolation-contended",
        shed,
        workers_per_tenant: 1,
        tenants: vec![protected(), flood],
    })?;

    let isolated_row = &isolated.tenants[0];
    let contended_row = &contended.tenants[0];
    let flood_row = &contended.tenants[1];
    Ok(IsolationReport {
        isolated_served: isolated_row.served,
        isolated_fps: isolated_row.throughput_fps,
        contended_served: contended_row.served,
        contended_fps: contended_row.throughput_fps,
        contended_p999: contended_row.p999,
        protected_sheds: contended_row.sheds,
        flood_sheds: flood_row.sheds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let mut latencies: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&mut latencies, 0.50), Duration::from_millis(50));
        assert_eq!(percentile(&mut latencies, 0.99), Duration::from_millis(99));
        assert_eq!(
            percentile(&mut latencies, 0.999),
            Duration::from_millis(100)
        );
        assert_eq!(percentile(&mut [], 0.5), Duration::ZERO);
    }

    #[test]
    fn schedules_are_sorted_and_sized() {
        let s = steady(10, Duration::from_millis(1));
        assert_eq!(s.len(), 10);
        assert!(s.windows(2).all(|w| w[0] <= w[1]));
        let b = bursts(3, 4, Duration::from_millis(5));
        assert_eq!(b.len(), 12);
        assert_eq!(b[0], b[3]);
        assert!(b[4] > b[3]);
        let d = diurnal(
            20,
            Duration::from_micros(100),
            Duration::from_micros(500),
            10,
        );
        assert_eq!(d.len(), 20);
        assert!(d.windows(2).all(|w| w[0] < w[1]), "offsets strictly grow");
    }

    #[test]
    fn bursty_scenario_sheds_only_the_bursting_tenant() {
        let report = run_scenario(&bursty_scenario(true)).unwrap();
        assert_eq!(report.tenants.len(), 2);
        let interactive = &report.tenants[0];
        let batch = &report.tenants[1];
        assert_eq!(interactive.sheds, 0, "the bounded tenant never sheds");
        assert_eq!(interactive.served, interactive.arrivals as u64);
        assert!(batch.sheds > 0, "bursts beyond the bound must shed");
        assert_eq!(batch.served + batch.sheds, batch.arrivals as u64);
        assert!(
            batch.mean_power_saving > interactive.mean_power_saving,
            "the looser budget must dim further ({} vs {})",
            batch.mean_power_saving,
            interactive.mean_power_saving
        );
        assert!(interactive.p50 <= interactive.p999);
    }

    #[test]
    fn diurnal_scenario_degrades_only_the_deadline_tenant() {
        let report = run_scenario(&diurnal_scenario(true).unwrap()).unwrap();
        let realtime = &report.tenants[0];
        let archive = &report.tenants[1];
        assert!(
            realtime.deadline_degraded > 0,
            "drifted past-due serves must degrade to the installed curve"
        );
        assert_eq!(archive.deadline_degraded, 0);
        assert_eq!(realtime.sheds + archive.sheds, 0);
    }

    #[test]
    fn overload_isolation_protects_the_weighted_tenant() {
        let report = run_overload_isolation(true).unwrap();
        assert_eq!(report.protected_sheds, 0);
        assert!(report.flood_sheds > 0, "the flood must be clamped");
        assert!(
            report.retention() >= 0.9,
            "protected tenant retained only {}",
            report.retention()
        );
    }
}
