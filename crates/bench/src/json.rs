//! Minimal JSON serialization for the bench harnesses.
//!
//! The workspace builds without a registry, so there is no `serde`; the
//! handful of flat report shapes the benches emit are serialized by hand.
//! `runtime_throughput --json <path>` uses this to produce the
//! machine-readable artifact CI uploads, so throughput, hit rates and fit
//! evaluations can be tracked across PRs.

use crate::experiments::{
    FitScalingRow, FrameScalingRow, MixedSuiteReport, RuntimeThroughputRow, WarmStartReport,
};
use crate::loadgen::{IsolationReport, ScenarioReport};

/// Escapes a string for embedding in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so the output is valid JSON (no `NaN`/`inf` tokens).
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Serializes the runtime throughput comparison, with enough run metadata
/// (budget, frame size) to make artifacts from different PRs comparable.
/// The optional mixed-suite savings comparison rides along as a
/// `mixed_suite` object — its savings are deterministic, so `bench_check`
/// gates them directly (unlike the timing fields).
pub fn runtime_throughput_json(
    budget: f64,
    frame_size: u32,
    video_frames: usize,
    rows: &[RuntimeThroughputRow],
    mixed: Option<&MixedSuiteReport>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"budget\": {},\n", number(budget)));
    out.push_str(&format!("  \"frame_size\": {frame_size},\n"));
    out.push_str(&format!("  \"video_frames\": {video_frames},\n"));
    if let Some(mixed) = mixed {
        out.push_str("  \"mixed_suite\": {");
        out.push_str(&format!("\"budget\": {}, ", number(mixed.budget)));
        out.push_str(&format!("\"frames\": {}, ", mixed.frames));
        out.push_str(&format!("\"classes\": {}, ", mixed.classes));
        out.push_str(&format!(
            "\"closed_loop_saving\": {}, ",
            number(mixed.closed_loop_saving)
        ));
        out.push_str(&format!(
            "\"worst_case_saving\": {}, ",
            number(mixed.worst_case_saving)
        ));
        out.push_str(&format!(
            "\"envelope_saving\": {}, ",
            number(mixed.envelope_saving)
        ));
        out.push_str(&format!(
            "\"per_class_saving\": {}, ",
            number(mixed.per_class_saving)
        ));
        out.push_str(&format!(
            "\"per_class_recovery\": {}, ",
            number(mixed.per_class_recovery())
        ));
        out.push_str(&format!(
            "\"per_class_fallbacks\": {}, ",
            mixed.per_class_fallbacks
        ));
        out.push_str(&format!(
            "\"per_class_evals_per_miss\": {}",
            number(mixed.per_class_evals_per_miss)
        ));
        out.push_str("},\n");
    }
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"workload\": \"{}\", ", escape(&row.workload)));
        out.push_str(&format!(
            "\"configuration\": \"{}\", ",
            escape(&row.configuration)
        ));
        out.push_str(&format!("\"workers\": {}, ", row.workers));
        out.push_str(&format!("\"frames\": {}, ", row.frames));
        out.push_str(&format!(
            "\"wall_ms\": {}, ",
            number(row.wall_time.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!(
            "\"throughput_fps\": {}, ",
            number(row.throughput_fps)
        ));
        out.push_str(&format!(
            "\"mean_latency_ms\": {}, ",
            number(row.mean_latency.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!(
            "\"p50_latency_ms\": {}, ",
            number(row.p50_latency.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!(
            "\"p95_latency_ms\": {}, ",
            number(row.p95_latency.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!(
            "\"cache_hit_rate\": {}, ",
            number(row.cache_hit_rate)
        ));
        out.push_str(&format!("\"cache_bytes\": {}, ", row.cache_bytes));
        out.push_str(&format!("\"cache_coalesced\": {}, ", row.cache_coalesced));
        out.push_str(&format!("\"cache_rejected\": {}, ", row.cache_rejected));
        out.push_str(&format!("\"cache_misses\": {}, ", row.cache_misses));
        out.push_str(&format!("\"fit_evaluations\": {}, ", row.fit_evaluations));
        out.push_str(&format!(
            "\"fit_evaluations_per_miss\": {}, ",
            number(row.fit_evaluations_per_miss())
        ));
        out.push_str(&format!(
            "\"open_loop_fallbacks\": {}, ",
            row.open_loop_fallbacks
        ));
        out.push_str(&format!(
            "\"recharacterizations\": {}, ",
            row.recharacterizations
        ));
        out.push_str(&format!(
            "\"mean_power_saving\": {}",
            number(row.mean_power_saving)
        ));
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes the fit-latency-versus-frame-size experiment.
pub fn fit_scaling_json(base: u32, repeats: usize, rows: &[FitScalingRow]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"base\": {base},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"scale\": {}, ", row.scale));
        out.push_str(&format!("\"width\": {}, ", row.width));
        out.push_str(&format!("\"pixels\": {}, ", row.pixels));
        out.push_str(&format!(
            "\"histogram_fit_us\": {}, ",
            number(row.histogram_fit.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"pixel_fit_us\": {}, ",
            number(row.pixel_fit.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"windowed_fit_us\": {}",
            number(row.windowed_fit.as_secs_f64() * 1e6)
        ));
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes the serve-latency-versus-resolution experiment. `workers`
/// records how many ingest workers the producing machine had: the
/// parallel-speedup gate in `bench_check` only arms when the **current**
/// artifact reports two or more, so a 1-CPU runner cannot fail it.
pub fn frame_scaling_json(
    quick: bool,
    repeats: usize,
    workers: usize,
    rows: &[FrameScalingRow],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"label\": \"{}\", ", row.label));
        out.push_str(&format!("\"width\": {}, ", row.width));
        out.push_str(&format!("\"height\": {}, ", row.height));
        out.push_str(&format!("\"pixels\": {}, ", row.pixels));
        out.push_str(&format!(
            "\"serve_miss_us\": {}, ",
            number(row.serve_miss.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"serve_hit_us\": {}, ",
            number(row.serve_hit.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"ingest_serial_us\": {}, ",
            number(row.ingest_serial.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"ingest_parallel_us\": {}, ",
            number(row.ingest_parallel.as_secs_f64() * 1e6)
        ));
        out.push_str(&format!(
            "\"lut_apply_us\": {}",
            number(row.lut_apply.as_secs_f64() * 1e6)
        ));
        out.push_str(if i + 1 < rows.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes the multi-tenant load-generator report. Each tenant row
/// carries its structural gate expectations (`expect_sheds`,
/// `expect_degraded`, `savings_rank`) alongside the measured counters, so
/// `bench_check` can verify the schedule-determined properties from the
/// current artifact and reserve the committed baseline for the
/// machine-dependent shape ratios (p999/p50).
pub fn multi_tenant_json(
    quick: bool,
    scenarios: &[ScenarioReport],
    isolation: Option<&IsolationReport>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    if let Some(iso) = isolation {
        out.push_str("  \"isolation\": {");
        out.push_str(&format!("\"isolated_served\": {}, ", iso.isolated_served));
        out.push_str(&format!("\"isolated_fps\": {}, ", number(iso.isolated_fps)));
        out.push_str(&format!("\"contended_served\": {}, ", iso.contended_served));
        out.push_str(&format!(
            "\"contended_fps\": {}, ",
            number(iso.contended_fps)
        ));
        out.push_str(&format!(
            "\"contended_p999_ms\": {}, ",
            number(iso.contended_p999.as_secs_f64() * 1e3)
        ));
        out.push_str(&format!("\"protected_sheds\": {}, ", iso.protected_sheds));
        out.push_str(&format!("\"flood_sheds\": {}, ", iso.flood_sheds));
        out.push_str(&format!("\"retention\": {}", number(iso.retention())));
        out.push_str("},\n");
    }
    out.push_str("  \"scenarios\": [\n");
    for (i, scenario) in scenarios.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"scenario\": \"{}\",\n",
            escape(&scenario.scenario)
        ));
        out.push_str(&format!(
            "      \"wall_ms\": {},\n",
            number(scenario.wall.as_secs_f64() * 1e3)
        ));
        out.push_str("      \"tenants\": [\n");
        for (j, tenant) in scenario.tenants.iter().enumerate() {
            out.push_str("        {");
            out.push_str(&format!("\"tenant\": \"{}\", ", escape(&tenant.tenant)));
            out.push_str(&format!("\"arrivals\": {}, ", tenant.arrivals));
            out.push_str(&format!("\"served\": {}, ", tenant.served));
            out.push_str(&format!("\"sheds\": {}, ", tenant.sheds));
            out.push_str(&format!(
                "\"deadline_degraded\": {}, ",
                tenant.deadline_degraded
            ));
            out.push_str(&format!(
                "\"p50_ms\": {}, ",
                number(tenant.p50.as_secs_f64() * 1e3)
            ));
            out.push_str(&format!(
                "\"p99_ms\": {}, ",
                number(tenant.p99.as_secs_f64() * 1e3)
            ));
            out.push_str(&format!(
                "\"p999_ms\": {}, ",
                number(tenant.p999.as_secs_f64() * 1e3)
            ));
            out.push_str(&format!(
                "\"mean_power_saving\": {}, ",
                number(tenant.mean_power_saving)
            ));
            out.push_str(&format!(
                "\"throughput_fps\": {}, ",
                number(tenant.throughput_fps)
            ));
            out.push_str(&format!("\"cache_bytes\": {}, ", tenant.cache_bytes));
            out.push_str(&format!(
                "\"expect_sheds\": \"{}\", ",
                tenant.expect_sheds.as_str()
            ));
            out.push_str(&format!(
                "\"expect_degraded\": \"{}\", ",
                tenant.expect_degraded.as_str()
            ));
            match tenant.savings_rank {
                Some(rank) => out.push_str(&format!("\"savings_rank\": {rank}")),
                None => out.push_str("\"savings_rank\": null"),
            }
            out.push_str(if j + 1 < scenario.tenants.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < scenarios.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Serializes the warm-start comparison. Every gated field is a
/// deterministic counter or saving, so `bench_check` checks the artifact's
/// structure (warm ≤ 1 evaluation from serve #1, cold recovery strictly
/// longer) rather than cross-run timings.
pub fn warm_start_json(report: &WarmStartReport) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"budget\": {},\n", number(report.budget)));
    out.push_str(&format!("  \"classes\": {},\n", report.classes));
    out.push_str(&format!(
        "  \"snapshot_bytes\": {},\n",
        report.snapshot_bytes
    ));
    out.push_str(&format!(
        "  \"cache_restored\": {},\n",
        report.cache_restored
    ));
    out.push_str(&format!("  \"cache_skipped\": {},\n", report.cache_skipped));
    out.push_str("  \"nodes\": [\n");
    for (i, node) in report.nodes.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"node\": \"{}\", ", escape(&node.node)));
        out.push_str(&format!("\"frames\": {}, ", node.frames));
        out.push_str(&format!(
            "\"first_miss_evaluations\": {}, ",
            node.first_miss_evaluations
        ));
        out.push_str(&format!("\"recovery_serves\": {}, ", node.recovery_serves));
        out.push_str(&format!("\"fit_evaluations\": {}, ", node.fit_evaluations));
        out.push_str(&format!("\"cache_misses\": {}, ", node.cache_misses));
        out.push_str(&format!("\"cache_hits\": {}, ", node.cache_hits));
        out.push_str(&format!(
            "\"recharacterizations\": {}, ",
            node.recharacterizations
        ));
        out.push_str(&format!(
            "\"mean_power_saving\": {}",
            number(node.mean_power_saving)
        ));
        out.push_str(if i + 1 < report.nodes.len() {
            "},\n"
        } else {
            "}\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{CountExpectation, TenantLoadReport};
    use std::time::Duration;

    #[test]
    fn escaping_covers_quotes_and_control_characters() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn warm_start_json_is_well_formed() {
        use crate::experiments::{WarmStartNode, WarmStartReport};
        let node = |name: &str, first: u64, recovery: usize| WarmStartNode {
            node: name.to_string(),
            frames: 23,
            first_miss_evaluations: first,
            recovery_serves: recovery,
            fit_evaluations: 19,
            cache_misses: 19,
            cache_hits: 4,
            recharacterizations: u64::from(name == "cold"),
            mean_power_saving: 0.31,
        };
        let report = WarmStartReport {
            budget: 0.1,
            classes: 2,
            snapshot_bytes: 4096,
            cache_restored: 19,
            cache_skipped: 0,
            nodes: vec![node("canary", 1, 0), node("cold", 8, 1), node("warm", 1, 0)],
        };
        let json = warm_start_json(&report);
        assert!(json.contains("\"node\": \"warm\""));
        assert!(json.contains("\"cache_restored\": 19"));
        assert!(json.contains("\"first_miss_evaluations\": 8"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn throughput_json_is_well_formed() {
        let rows = vec![RuntimeThroughputRow {
            workload: "suite \"x2\"".to_string(),
            configuration: "pooled+cache".to_string(),
            workers: 4,
            frames: 38,
            wall_time: Duration::from_millis(120),
            throughput_fps: 316.7,
            mean_latency: Duration::from_micros(2500),
            p50_latency: Duration::from_micros(1900),
            p95_latency: Duration::from_micros(9000),
            cache_hit_rate: 0.5,
            cache_bytes: 4096,
            cache_coalesced: 2,
            cache_rejected: 1,
            cache_misses: 19,
            fit_evaluations: 77,
            open_loop_fallbacks: 3,
            recharacterizations: 1,
            mean_power_saving: 0.41,
        }];
        let mixed = MixedSuiteReport {
            budget: 0.10,
            frames: 19,
            classes: 6,
            closed_loop_saving: 0.41,
            worst_case_saving: 0.0,
            envelope_saving: 0.10,
            per_class_saving: 0.24,
            per_class_fallbacks: 0,
            per_class_evals_per_miss: 1.0,
        };
        let json = runtime_throughput_json(0.10, 32, 16, &rows, Some(&mixed));
        assert!(json.contains("\"fit_evaluations\": 77"));
        assert!(json.contains("\"cache_misses\": 19"));
        assert!(json.contains("\"open_loop_fallbacks\": 3"));
        assert!(json.contains("\"recharacterizations\": 1"));
        assert!(json.contains("\"workload\": \"suite \\\"x2\\\"\""));
        assert!(json.contains("\"p50_latency_ms\": 1.9"));
        assert!(json.contains("\"mixed_suite\": {"));
        assert!(json.contains("\"per_class_saving\": 0.24"));
        assert!(json.contains("\"per_class_recovery\": 0.585"));
        // Without the mixed section the document stays well-formed too.
        let bare = runtime_throughput_json(0.10, 32, 16, &rows, None);
        assert!(!bare.contains("mixed_suite"));
        assert_eq!(bare.matches('{').count(), bare.matches('}').count());
        // Braces and brackets balance (a cheap well-formedness check given
        // no JSON parser in the workspace).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn fit_scaling_json_lists_all_rows() {
        let rows = vec![
            FitScalingRow {
                scale: 1,
                width: 96,
                pixels: 9216,
                histogram_fit: Duration::from_micros(90),
                pixel_fit: Duration::from_micros(160),
                windowed_fit: Duration::from_micros(900),
            },
            FitScalingRow {
                scale: 4,
                width: 384,
                pixels: 147456,
                histogram_fit: Duration::from_micros(91),
                pixel_fit: Duration::from_micros(1800),
                windowed_fit: Duration::from_micros(14000),
            },
        ];
        let json = fit_scaling_json(96, 3, &rows);
        assert_eq!(json.matches("\"scale\":").count(), 2);
        assert!(json.contains("\"histogram_fit_us\": 91"));
    }

    #[test]
    fn frame_scaling_json_records_workers_and_rows() {
        let rows = vec![
            FrameScalingRow {
                label: "32x32",
                width: 32,
                height: 32,
                pixels: 1024,
                serve_miss: Duration::from_micros(120),
                serve_hit: Duration::from_micros(20),
                ingest_serial: Duration::from_micros(12),
                ingest_parallel: Duration::from_micros(14),
                lut_apply: Duration::from_micros(4),
            },
            FrameScalingRow {
                label: "4K",
                width: 3840,
                height: 2160,
                pixels: 8_294_400,
                serve_miss: Duration::from_micros(52_000),
                serve_hit: Duration::from_micros(18_000),
                ingest_serial: Duration::from_micros(17_000),
                ingest_parallel: Duration::from_micros(9_000),
                lut_apply: Duration::from_micros(6_000),
            },
        ];
        let json = frame_scaling_json(true, 2, 4, &rows);
        assert!(json.contains("\"workers\": 4"));
        assert_eq!(json.matches("\"label\":").count(), 2);
        assert!(json.contains("\"serve_miss_us\": 52000"));
        assert!(json.contains("\"ingest_parallel_us\": 9000"));
    }

    #[test]
    fn multi_tenant_json_embeds_expectations_and_balances() {
        let tenant = |name: &str, sheds: u64, expect: CountExpectation| TenantLoadReport {
            tenant: name.to_string(),
            arrivals: 96,
            served: 96 - sheds,
            sheds,
            deadline_degraded: 0,
            p50: Duration::from_micros(400),
            p99: Duration::from_micros(2100),
            p999: Duration::from_micros(4800),
            mean_power_saving: 0.37,
            throughput_fps: 1800.0,
            cache_bytes: 2048,
            expect_sheds: expect,
            expect_degraded: CountExpectation::Zero,
            savings_rank: Some(0),
        };
        let scenarios = vec![ScenarioReport {
            scenario: "bursty".to_string(),
            wall: Duration::from_millis(60),
            tenants: vec![
                tenant("interactive", 0, CountExpectation::Zero),
                tenant("batch", 12, CountExpectation::Some),
            ],
        }];
        let isolation = IsolationReport {
            isolated_served: 128,
            isolated_fps: 2400.0,
            contended_served: 128,
            contended_fps: 2200.0,
            contended_p999: Duration::from_micros(5100),
            protected_sheds: 0,
            flood_sheds: 77,
        };
        let json = multi_tenant_json(true, &scenarios, Some(&isolation));
        assert!(json.contains("\"scenario\": \"bursty\""));
        assert!(json.contains("\"expect_sheds\": \"some\""));
        assert!(json.contains("\"savings_rank\": 0"));
        assert!(json.contains("\"retention\": 1"));
        assert!(json.contains("\"flood_sheds\": 77"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Without the isolation section the document stays well-formed.
        let bare = multi_tenant_json(false, &scenarios, None);
        assert!(!bare.contains("isolation"));
        assert_eq!(bare.matches('{').count(), bare.matches('}').count());
    }
}
