//! Criterion bench: the distortion metrics.
//!
//! The distortion evaluation dominates the closed-loop policy's cost, so its
//! throughput determines whether per-frame adaptation is feasible in
//! software.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hebs_imaging::SipiImage;
use hebs_quality::{mse, ssim, uiqi, DistortionMeasure, HebsDistortion};
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    for size in [128u32, 256] {
        let original = SipiImage::Baboon.generate(size);
        let degraded = original.map(|v| (f64::from(v) * 0.8) as u8);
        group.bench_with_input(
            BenchmarkId::new("uiqi", size),
            &(original.clone(), degraded.clone()),
            |b, (a, d)| {
                b.iter(|| uiqi::universal_quality_index(black_box(a), black_box(d)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ssim", size),
            &(original.clone(), degraded.clone()),
            |b, (a, d)| {
                b.iter(|| ssim::structural_similarity(black_box(a), black_box(d)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("rmse", size),
            &(original.clone(), degraded.clone()),
            |b, (a, d)| {
                b.iter(|| mse::root_mean_squared_error(black_box(a), black_box(d)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hvs_uiqi", size),
            &(original, degraded),
            |b, (a, d)| {
                let measure = HebsDistortion::default();
                b.iter(|| measure.distortion(black_box(a), black_box(d)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
