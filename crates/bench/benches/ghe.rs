//! Criterion bench: solving the Global Histogram Equalization problem.
//!
//! The paper argues HEBS is cheap enough to run per frame in hardware; this
//! bench measures the software cost of the GHE step (histogram → transform)
//! for several image sizes and target ranges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hebs_core::ghe::{equalize, TargetRange};
use hebs_imaging::{Histogram, SipiImage};
use std::hint::black_box;

fn bench_ghe(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghe");
    for size in [64u32, 128, 256] {
        let image = SipiImage::Lena.generate(size);
        group.bench_with_input(BenchmarkId::new("histogram", size), &image, |b, img| {
            b.iter(|| Histogram::of(black_box(img)));
        });
        let histogram = Histogram::of(&image);
        group.bench_with_input(
            BenchmarkId::new("equalize_range128", size),
            &histogram,
            |b, hist| {
                let target = TargetRange::from_span(128).expect("valid span");
                b.iter(|| equalize(black_box(hist), target).expect("equalize succeeds"));
            },
        );
    }
    for range in [64u32, 128, 220] {
        let image = SipiImage::Peppers.generate(128);
        let histogram = Histogram::of(&image);
        group.bench_with_input(
            BenchmarkId::new("equalize_by_range", range),
            &range,
            |b, &range| {
                let target = TargetRange::from_span(range).expect("valid span");
                b.iter(|| equalize(black_box(&histogram), target).expect("equalize succeeds"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ghe);
criterion_main!(benches);
