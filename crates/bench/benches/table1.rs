//! Criterion bench: a reduced Table 1 run (a handful of suite images at one
//! distortion budget), tracking the wall-clock cost of regenerating the
//! paper's main result table.

use criterion::{criterion_group, criterion_main, Criterion};
use hebs_bench::run_table1;
use hebs_core::PipelineConfig;
use hebs_imaging::SipiSuite;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    let suite = SipiSuite::with_size(96);
    group.bench_function("suite96_budget10", |b| {
        b.iter(|| {
            run_table1(black_box(&suite), &[0.10], PipelineConfig::default())
                .expect("table 1 runs")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
