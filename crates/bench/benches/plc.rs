//! Criterion bench: the Piecewise Linear Coarsening dynamic program.
//!
//! The paper states the DP costs `O(m·n²)`; this bench measures the actual
//! scaling with the number of input points `n` and the segment budget `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hebs_transform::{coarsen, PiecewiseLinear};
use std::hint::black_box;

fn bench_plc(c: &mut Criterion) {
    let mut group = c.benchmark_group("plc");
    // Scaling with the number of input points (fixed m = 7).
    for n in [64usize, 128, 256] {
        let curve = PiecewiseLinear::from_samples(n, |x| x.powf(0.45));
        group.bench_with_input(BenchmarkId::new("points", n), &curve, |b, curve| {
            b.iter(|| coarsen(black_box(curve), 7).expect("coarsen succeeds"));
        });
    }
    // Scaling with the segment budget (fixed n = 256, the GHE output size).
    let curve = PiecewiseLinear::from_samples(256, |x| 0.1 + 0.9 * x.powf(0.6));
    for m in [3usize, 7, 15] {
        group.bench_with_input(BenchmarkId::new("segments", m), &m, |b, &m| {
            b.iter(|| coarsen(black_box(&curve), m).expect("coarsen succeeds"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_plc);
criterion_main!(benches);
