//! Criterion bench: the end-to-end HEBS pipeline.
//!
//! Measures (a) a single fixed-range evaluation — the per-frame cost of the
//! open-loop hardware flow — and (b) the full closed-loop optimization with
//! its range search, plus the two baselines for comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hebs_core::{
    pipeline::evaluate_at_range, BacklightPolicy, CbcsPolicy, DlsPolicy, DlsVariant, HebsPolicy,
    PipelineConfig, TargetRange,
};
use hebs_imaging::SipiImage;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(20);
    let image = SipiImage::Lena.generate(128);
    let config = PipelineConfig::default();

    group.bench_function("fixed_range_evaluation", |b| {
        let target = TargetRange::from_span(140).expect("valid span");
        b.iter(|| evaluate_at_range(&config, black_box(&image), target).expect("pipeline runs"));
    });

    let policies: Vec<(&str, Box<dyn BacklightPolicy>)> = vec![
        ("hebs_closed_loop", Box::new(HebsPolicy::closed_loop(config.clone()))),
        ("cbcs", Box::new(CbcsPolicy::new())),
        (
            "dls_contrast",
            Box::new(DlsPolicy::new(DlsVariant::ContrastEnhancement)),
        ),
    ];
    for (name, policy) in &policies {
        group.bench_with_input(BenchmarkId::new("optimize", name), policy, |b, policy| {
            b.iter(|| policy.optimize(black_box(&image), 0.10).expect("policy runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
