//! Debug counter of full-frame pixel traversals.
//!
//! Every operation in this crate that walks a frame's complete pixel buffer
//! — the histogram build, the fused [`FrameIngest`](crate::FrameIngest)
//! pass, the standalone content hash and the LUT applies — records itself
//! here, on the thread that *requested* the walk. The counter is
//! thread-local, so concurrently running tests and worker pools never
//! observe each other's traffic, and a scoped parallel ingest counts as the
//! single logical traversal it is (it is recorded once on the calling
//! thread, before the fan-out).
//!
//! The serving runtime's regression tests pin the serve path's traversal
//! budget with this counter (exactly one pre-fit pass over the frame, one
//! apply on a miss — and nothing else, in particular no hidden re-reads on
//! the sketch-sampling path). The cost is one thread-local add per
//! *frame-level* operation, not per pixel, so the counter stays on in
//! release builds.

use std::cell::Cell;

thread_local! {
    static TRAVERSALS: Cell<u64> = const { Cell::new(0) };
}

/// Number of full-frame pixel traversals recorded on the current thread
/// since it started.
///
/// Tests take a reading before and after the operation under scrutiny and
/// assert on the difference; the absolute value includes whatever the
/// thread did earlier.
pub fn count() -> u64 {
    TRAVERSALS.with(|c| c.get())
}

/// Records one full-frame traversal on the current thread.
pub(crate) fn record() {
    TRAVERSALS.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_on_the_current_thread() {
        let before = count();
        record();
        record();
        assert_eq!(count() - before, 2);
    }

    #[test]
    fn other_threads_do_not_pollute_the_counter() {
        let before = count();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                record();
                record();
            });
        });
        assert_eq!(count(), before);
    }
}
