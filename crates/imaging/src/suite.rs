//! The benchmark image suite.
//!
//! The paper's Table 1 reports power savings for 19 named images from the
//! USC SIPI database. Because those photographs cannot be redistributed, the
//! suite here generates a synthetic stand-in for each of the 19 names with a
//! tonal character chosen to resemble the original (portrait, landscape,
//! still life, fine texture, test chart, …). The substitution is documented
//! in `DESIGN.md`: the backlight-scaling policies only consume the image
//! histogram and local structure, both of which the generators control.

use crate::image::GrayImage;
use crate::synthetic;

/// Identifier for one image of the benchmark suite, named after the
/// corresponding USC SIPI photograph used in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum SipiImage {
    Lena,
    Autumn,
    Football,
    Peppers,
    Greens,
    Pears,
    Onion,
    Trees,
    West,
    Pout,
    Sail,
    Splash,
    Girl,
    Baboon,
    TreeA,
    HouseA,
    GirlB,
    Testpat,
    Elaine,
}

impl SipiImage {
    /// All 19 benchmark identifiers in the order of the paper's Table 1.
    pub const ALL: [SipiImage; 19] = [
        SipiImage::Lena,
        SipiImage::Autumn,
        SipiImage::Football,
        SipiImage::Peppers,
        SipiImage::Greens,
        SipiImage::Pears,
        SipiImage::Onion,
        SipiImage::Trees,
        SipiImage::West,
        SipiImage::Pout,
        SipiImage::Sail,
        SipiImage::Splash,
        SipiImage::Girl,
        SipiImage::Baboon,
        SipiImage::TreeA,
        SipiImage::HouseA,
        SipiImage::GirlB,
        SipiImage::Testpat,
        SipiImage::Elaine,
    ];

    /// Human-readable name matching the paper's Table 1 row label.
    pub fn name(self) -> &'static str {
        match self {
            SipiImage::Lena => "Lena",
            SipiImage::Autumn => "Autumn",
            SipiImage::Football => "football",
            SipiImage::Peppers => "Peppers",
            SipiImage::Greens => "Greens",
            SipiImage::Pears => "Pears",
            SipiImage::Onion => "Onion",
            SipiImage::Trees => "Trees",
            SipiImage::West => "West",
            SipiImage::Pout => "Pout",
            SipiImage::Sail => "Sail",
            SipiImage::Splash => "Splash",
            SipiImage::Girl => "Girl",
            SipiImage::Baboon => "Baboon",
            SipiImage::TreeA => "TreeA",
            SipiImage::HouseA => "HouseA",
            SipiImage::GirlB => "GirlB",
            SipiImage::Testpat => "Testpat",
            SipiImage::Elaine => "Elaine",
        }
    }

    /// Deterministic seed used for the synthetic generator of this image.
    fn seed(self) -> u64 {
        // Stable per-image seeds; the exact values only matter for
        // reproducibility, not for the result shape.
        match self {
            SipiImage::Lena => 101,
            SipiImage::Autumn => 102,
            SipiImage::Football => 103,
            SipiImage::Peppers => 104,
            SipiImage::Greens => 105,
            SipiImage::Pears => 106,
            SipiImage::Onion => 107,
            SipiImage::Trees => 108,
            SipiImage::West => 109,
            SipiImage::Pout => 110,
            SipiImage::Sail => 111,
            SipiImage::Splash => 112,
            SipiImage::Girl => 113,
            SipiImage::Baboon => 114,
            SipiImage::TreeA => 115,
            SipiImage::HouseA => 116,
            SipiImage::GirlB => 117,
            SipiImage::Testpat => 118,
            SipiImage::Elaine => 119,
        }
    }

    /// Generates the synthetic stand-in image at the given square size.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0.
    pub fn generate(self, size: u32) -> GrayImage {
        assert!(size > 0, "image size must be nonzero");
        let seed = self.seed();
        match self {
            // Portraits: trimodal histograms with a dominant mid/bright face.
            SipiImage::Lena | SipiImage::Girl | SipiImage::GirlB | SipiImage::Elaine => {
                synthetic::portrait(size, size, seed)
            }
            // Dark portrait (the SIPI "Pout" child photo is low key).
            SipiImage::Pout => {
                let mut img = synthetic::portrait(size, size, seed);
                synthetic::apply_gamma(&mut img, 1.5);
                img
            }
            // Outdoor scenes with a bright sky band.
            SipiImage::Trees | SipiImage::TreeA | SipiImage::Sail | SipiImage::West => {
                synthetic::landscape(size, size, seed)
            }
            // Autumn: bright, warm, high-key landscape.
            SipiImage::Autumn => {
                let mut img = synthetic::landscape(size, size, seed);
                synthetic::apply_gamma(&mut img, 0.8);
                img
            }
            // Still-life food scenes: several bright blobs on cloth.
            SipiImage::Peppers | SipiImage::Onion | SipiImage::Pears | SipiImage::Greens => {
                synthetic::still_life(size, size, seed)
            }
            // Sports scene: mid-tones with strong local activity.
            SipiImage::Football => {
                let mut img = synthetic::still_life(size, size, seed);
                synthetic::stretch_to_range(&mut img, 20, 230);
                img
            }
            // House exterior: bimodal walls/shadows.
            SipiImage::HouseA => {
                let mut img = synthetic::landscape(size, size, seed);
                synthetic::stretch_to_range(&mut img, 30, 220);
                img
            }
            // Splash: dark background with a bright subject.
            SipiImage::Splash => synthetic::low_key(size, size, seed),
            // Baboon: fine, wide-spectrum texture.
            SipiImage::Baboon => synthetic::fine_texture(size, size, seed),
            // Test chart: discrete grayscale bars.
            SipiImage::Testpat => synthetic::bars(size, size, 16),
        }
    }
}

impl std::fmt::Display for SipiImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The full 19-image benchmark suite.
///
/// ```
/// use hebs_imaging::SipiSuite;
///
/// let suite = SipiSuite::standard();
/// assert_eq!(suite.len(), 19);
/// let (name, image) = &suite.entries()[0];
/// assert_eq!(name.name(), "Lena");
/// assert_eq!(image.width(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct SipiSuite {
    entries: Vec<(SipiImage, GrayImage)>,
}

impl SipiSuite {
    /// Default square image size (pixels per side) of the standard suite.
    pub const STANDARD_SIZE: u32 = 256;

    /// Generates the standard suite: all 19 images at 256×256.
    pub fn standard() -> Self {
        Self::with_size(Self::STANDARD_SIZE)
    }

    /// Generates the suite at a custom square size (useful to keep unit tests
    /// and Criterion benches fast).
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0.
    pub fn with_size(size: u32) -> Self {
        SipiSuite {
            entries: SipiImage::ALL
                .iter()
                .map(|&id| (id, id.generate(size)))
                .collect(),
        }
    }

    /// Number of images in the suite (always 19 for the standard suite).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the suite is empty (never true for generated suites).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Borrow of the `(identifier, image)` pairs in Table 1 order.
    pub fn entries(&self) -> &[(SipiImage, GrayImage)] {
        &self.entries
    }

    /// Looks up one image by identifier.
    pub fn image(&self, id: SipiImage) -> Option<&GrayImage> {
        self.entries
            .iter()
            .find(|(entry_id, _)| *entry_id == id)
            .map(|(_, image)| image)
    }

    /// Iterator over the `(identifier, image)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(SipiImage, GrayImage)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn suite_contains_all_nineteen_images() {
        let suite = SipiSuite::with_size(64);
        assert_eq!(suite.len(), 19);
        assert!(!suite.is_empty());
        for (id, image) in suite.iter() {
            assert_eq!(image.width(), 64, "{id} has wrong width");
            assert_eq!(image.height(), 64, "{id} has wrong height");
        }
    }

    #[test]
    fn names_match_table_one() {
        assert_eq!(SipiImage::Lena.name(), "Lena");
        assert_eq!(SipiImage::Football.name(), "football");
        assert_eq!(SipiImage::Testpat.name(), "Testpat");
        assert_eq!(SipiImage::ALL.len(), 19);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SipiImage::Peppers.generate(64);
        let b = SipiImage::Peppers.generate(64);
        assert_eq!(a, b);
    }

    #[test]
    fn different_images_are_actually_different() {
        let lena = SipiImage::Lena.generate(64);
        let baboon = SipiImage::Baboon.generate(64);
        assert_ne!(lena, baboon);
    }

    #[test]
    fn suite_images_have_varied_histograms() {
        let suite = SipiSuite::with_size(96);
        let mut means: Vec<f64> = suite.iter().map(|(_, img)| img.mean()).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
        // The darkest and brightest scenes should differ by a healthy margin.
        assert!(means.last().unwrap() - means.first().unwrap() > 40.0);
    }

    #[test]
    fn every_image_has_nontrivial_content() {
        let suite = SipiSuite::with_size(96);
        for (id, image) in suite.iter() {
            let hist = Histogram::of(image);
            assert!(
                hist.occupied_levels() >= 8,
                "{id} has a degenerate histogram"
            );
            assert!(hist.dynamic_range() >= 32, "{id} has almost no range");
        }
    }

    #[test]
    fn lookup_by_identifier() {
        let suite = SipiSuite::with_size(32);
        assert!(suite.image(SipiImage::Baboon).is_some());
        assert_eq!(
            suite.image(SipiImage::Baboon).unwrap(),
            &SipiImage::Baboon.generate(32)
        );
    }

    #[test]
    fn display_uses_table_name() {
        assert_eq!(SipiImage::HouseA.to_string(), "HouseA");
    }

    #[test]
    #[should_panic(expected = "image size must be nonzero")]
    fn zero_size_panics() {
        let _ = SipiImage::Lena.generate(0);
    }
}
