//! Pixel primitives.
//!
//! The HEBS paper works with 8-bit grayscale values `X ∈ [0, 255]` and their
//! normalized form `x = X / 255 ∈ [0, 1]`. Color images are handled by
//! converting to luminance first (the backlight and transmissivity models act
//! on luminance).

/// Maximum representable grayscale level of an 8-bit display (`255`).
pub const MAX_LEVEL: u8 = u8::MAX;

/// An 8-bit RGB pixel.
///
/// ```
/// use hebs_imaging::Rgb;
/// let white = Rgb::new(255, 255, 255);
/// assert_eq!(white.luminance(), 255);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rgb {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

impl Rgb {
    /// Creates a new pixel from its three channels.
    pub const fn new(r: u8, g: u8, b: u8) -> Self {
        Rgb { r, g, b }
    }

    /// Creates a gray pixel with all three channels equal to `level`.
    pub const fn gray(level: u8) -> Self {
        Rgb {
            r: level,
            g: level,
            b: level,
        }
    }

    /// Rec. 601 luma of the pixel, rounded to the nearest integer level.
    ///
    /// The weights (0.299, 0.587, 0.114) are the classical CRT/LCD luma
    /// weights; the LCD transmissivity models in the paper act on this value.
    pub fn luminance(self) -> u8 {
        let y = 0.299 * f64::from(self.r) + 0.587 * f64::from(self.g) + 0.114 * f64::from(self.b);
        y.round().clamp(0.0, 255.0) as u8
    }

    /// Normalized luminance in `[0, 1]`.
    pub fn normalized_luminance(self) -> f64 {
        f64::from(self.luminance()) / f64::from(MAX_LEVEL)
    }
}

impl From<[u8; 3]> for Rgb {
    fn from(value: [u8; 3]) -> Self {
        Rgb::new(value[0], value[1], value[2])
    }
}

impl From<Rgb> for [u8; 3] {
    fn from(value: Rgb) -> Self {
        [value.r, value.g, value.b]
    }
}

/// Converts an 8-bit level to its normalized value `x = X / 255`.
pub(crate) fn normalize(level: u8) -> f64 {
    f64::from(level) / f64::from(MAX_LEVEL)
}

/// Converts a normalized value in `[0, 1]` back to an 8-bit level, clamping
/// out-of-range inputs.
#[cfg(test)]
pub(crate) fn denormalize(value: f64) -> u8 {
    (value * f64::from(MAX_LEVEL)).round().clamp(0.0, 255.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luminance_of_primaries() {
        assert_eq!(Rgb::new(255, 0, 0).luminance(), 76);
        assert_eq!(Rgb::new(0, 255, 0).luminance(), 150);
        assert_eq!(Rgb::new(0, 0, 255).luminance(), 29);
    }

    #[test]
    fn luminance_of_gray_is_identity() {
        for level in [0u8, 1, 17, 100, 200, 255] {
            assert_eq!(Rgb::gray(level).luminance(), level);
        }
    }

    #[test]
    fn conversion_round_trip() {
        let px = Rgb::new(12, 200, 77);
        let arr: [u8; 3] = px.into();
        assert_eq!(Rgb::from(arr), px);
    }

    #[test]
    fn normalize_bounds() {
        assert_eq!(normalize(0), 0.0);
        assert_eq!(normalize(255), 1.0);
        assert_eq!(denormalize(0.0), 0);
        assert_eq!(denormalize(1.0), 255);
        assert_eq!(denormalize(2.0), 255);
        assert_eq!(denormalize(-1.0), 0);
    }

    #[test]
    fn denormalize_rounds_to_nearest() {
        assert_eq!(denormalize(0.5), 128);
        assert_eq!(denormalize(127.4 / 255.0), 127);
    }
}
