//! Whole-image statistics used by the distortion metrics.

use crate::image::GrayImage;

/// Summary statistics of a grayscale image (on the raw 0–255 level scale).
///
/// ```
/// use hebs_imaging::{GrayImage, ImageStats};
///
/// let img = GrayImage::from_fn(64, 64, |x, _| if x < 32 { 0 } else { 200 });
/// let stats = ImageStats::of(&img);
/// assert!((stats.mean - 100.0).abs() < 1e-9);
/// assert!(stats.variance > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStats {
    /// Mean pixel level.
    pub mean: f64,
    /// Population variance of the pixel levels.
    pub variance: f64,
    /// Minimum pixel level present.
    pub min: u8,
    /// Maximum pixel level present.
    pub max: u8,
    /// Number of pixels.
    pub count: usize,
}

impl ImageStats {
    /// Computes the statistics of an image in a single pass.
    pub fn of(image: &GrayImage) -> Self {
        let count = image.pixel_count();
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        let mut min = u8::MAX;
        let mut max = u8::MIN;
        for v in image.pixels() {
            let fv = f64::from(v);
            sum += fv;
            sum_sq += fv * fv;
            min = min.min(v);
            max = max.max(v);
        }
        let n = count as f64;
        let mean = if count == 0 { 0.0 } else { sum / n };
        let variance = if count == 0 {
            0.0
        } else {
            (sum_sq / n - mean * mean).max(0.0)
        };
        ImageStats {
            mean,
            variance,
            min: if count == 0 { 0 } else { min },
            max: if count == 0 { 0 } else { max },
            count,
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Michelson-style global contrast `(max − min) / (max + min)`, or 0 for
    /// an all-black image.
    pub fn contrast(&self) -> f64 {
        let (lo, hi) = (f64::from(self.min), f64::from(self.max));
        if hi + lo == 0.0 {
            0.0
        } else {
            (hi - lo) / (hi + lo)
        }
    }
}

/// Population covariance of two images' pixel levels.
///
/// Both images must have the same number of pixels; pixels are paired in
/// row-major order. This is the `σ_xy` term of the Universal Image Quality
/// Index.
///
/// # Panics
///
/// Panics if the two images have different pixel counts.
pub fn covariance(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(
        a.pixel_count(),
        b.pixel_count(),
        "covariance requires images with identical pixel counts"
    );
    let n = a.pixel_count() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let mean_a = a.mean();
    let mean_b = b.mean();
    a.pixels()
        .zip(b.pixels())
        .map(|(x, y)| (f64::from(x) - mean_a) * (f64::from(y) - mean_b))
        .sum::<f64>()
        / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_image() {
        let img = GrayImage::filled(8, 8, 99);
        let stats = ImageStats::of(&img);
        assert_eq!(stats.mean, 99.0);
        assert_eq!(stats.variance, 0.0);
        assert_eq!(stats.min, 99);
        assert_eq!(stats.max, 99);
        assert_eq!(stats.count, 64);
        assert_eq!(stats.std_dev(), 0.0);
    }

    #[test]
    fn stats_of_two_level_image() {
        let img = GrayImage::from_fn(2, 1, |x, _| if x == 0 { 0 } else { 200 });
        let stats = ImageStats::of(&img);
        assert_eq!(stats.mean, 100.0);
        assert_eq!(stats.variance, 10_000.0);
        assert_eq!(stats.std_dev(), 100.0);
        assert!((stats.contrast() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contrast_of_black_image_is_zero() {
        let stats = ImageStats::of(&GrayImage::filled(4, 4, 0));
        assert_eq!(stats.contrast(), 0.0);
    }

    #[test]
    fn covariance_of_image_with_itself_is_variance() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 7 + y * 13) % 256) as u8);
        let stats = ImageStats::of(&img);
        let cov = covariance(&img, &img);
        assert!((cov - stats.variance).abs() < 1e-6);
    }

    #[test]
    fn covariance_sign_for_inverted_image() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x + y) % 256) as u8);
        let inverted = img.map(|v| 255 - v);
        assert!(covariance(&img, &inverted) < 0.0);
    }

    #[test]
    fn covariance_of_constant_images_is_zero() {
        let a = GrayImage::filled(4, 4, 10);
        let b = GrayImage::filled(4, 4, 240);
        assert_eq!(covariance(&a, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "identical pixel counts")]
    fn covariance_panics_on_size_mismatch() {
        let a = GrayImage::filled(4, 4, 10);
        let b = GrayImage::filled(5, 4, 10);
        let _ = covariance(&a, &b);
    }
}
