//! Basic whole-image operations.

use crate::error::{ImageError, Result};
use crate::image::GrayImage;
use crate::traversals;

/// Strip width (bytes) of the fused LUT apply.
///
/// The source and destination strips of one iteration fit comfortably in
/// L1 together with the 256-byte table, and the fixed-length
/// `chunks_exact` bodies let the optimizer drop bounds checks and unroll.
const LUT_STRIP: usize = 64;

/// Maps `src` through `lut` into `dst`, strip by strip.
///
/// Callers guarantee `src.len() == dst.len()`; this is the shared
/// (uncounted) core of [`apply_lut`] and [`apply_lut_into`] so each public
/// entry point records exactly one traversal.
fn fill_lut(src: &[u8], lut: &[u8; 256], dst: &mut [u8]) {
    let mut src_strips = src.chunks_exact(LUT_STRIP);
    let mut dst_strips = dst.chunks_exact_mut(LUT_STRIP);
    for (out, inp) in dst_strips.by_ref().zip(src_strips.by_ref()) {
        for (o, i) in out.iter_mut().zip(inp) {
            *o = lut[*i as usize];
        }
    }
    for (o, i) in dst_strips
        .into_remainder()
        .iter_mut()
        .zip(src_strips.remainder())
    {
        *o = lut[*i as usize];
    }
}

/// Applies a 256-entry lookup table to every pixel of an image.
///
/// This is exactly what the LCD source driver does in hardware once the
/// reference voltages are programmed: each incoming grayscale level is mapped
/// to a new (displayed) level through a fixed curve.
///
/// Allocates the output image; hot paths that can reuse a buffer should
/// prefer [`apply_lut_into`].
///
/// ```
/// use hebs_imaging::{apply_lut, GrayImage};
///
/// let img = GrayImage::from_fn(4, 1, |x, _| (x * 10) as u8);
/// let mut lut = [0u8; 256];
/// for (i, entry) in lut.iter_mut().enumerate() {
///     *entry = (i as u8).saturating_add(5);
/// }
/// let shifted = apply_lut(&img, &lut);
/// assert_eq!(shifted.get(0, 0), Some(5));
/// ```
pub fn apply_lut(image: &GrayImage, lut: &[u8; 256]) -> GrayImage {
    traversals::record();
    let mut out = GrayImage::filled(image.width(), image.height(), 0);
    fill_lut(image.as_raw(), lut, out.as_raw_mut());
    out
}

/// Applies a 256-entry lookup table into a reusable output image.
///
/// `out` is reshaped to `image`'s dimensions (reusing its allocation when
/// the capacity suffices) and every pixel is overwritten, so any prior
/// contents are irrelevant. This is the allocation-free serve-path variant
/// of [`apply_lut`]: the pixels are walked once, in cache-friendly strips.
///
/// ```
/// use hebs_imaging::{apply_lut, apply_lut_into, GrayImage};
///
/// let img = GrayImage::from_fn(40, 30, |x, y| (x * 7 + y) as u8);
/// let mut lut = [0u8; 256];
/// for (i, entry) in lut.iter_mut().enumerate() {
///     *entry = (i as u8) / 2;
/// }
/// let mut out = GrayImage::filled(1, 1, 0);
/// apply_lut_into(&img, &lut, &mut out);
/// assert_eq!(out, apply_lut(&img, &lut));
/// ```
pub fn apply_lut_into(image: &GrayImage, lut: &[u8; 256], out: &mut GrayImage) {
    traversals::record();
    out.reshape(image.width(), image.height());
    fill_lut(image.as_raw(), lut, out.as_raw_mut());
}

/// Extracts the rectangle `[x, x+width) × [y, y+height)` from an image.
///
/// # Errors
///
/// Returns [`ImageError::OutOfBounds`] if the rectangle does not fit inside
/// the image, and [`ImageError::InvalidDimensions`] if the rectangle is
/// empty.
pub fn crop(image: &GrayImage, x: u32, y: u32, width: u32, height: u32) -> Result<GrayImage> {
    if width == 0 || height == 0 {
        return Err(ImageError::InvalidDimensions {
            width,
            height,
            buffer_len: 0,
        });
    }
    if x + width > image.width() || y + height > image.height() {
        return Err(ImageError::OutOfBounds {
            x: x + width - 1,
            y: y + height - 1,
            width: image.width(),
            height: image.height(),
        });
    }
    Ok(GrayImage::from_fn(width, height, |cx, cy| {
        image
            .get(x + cx, y + cy)
            .expect("crop rectangle was bounds-checked")
    }))
}

/// Downsamples an image by an integer factor using box averaging.
///
/// Each output pixel is the mean of the corresponding `factor × factor`
/// block (partial blocks at the right/bottom edge use the pixels that exist).
/// Downsampling is used to speed up distortion characterization sweeps.
///
/// # Panics
///
/// Panics if `factor` is 0.
pub fn downsample(image: &GrayImage, factor: u32) -> GrayImage {
    assert!(factor > 0, "downsample factor must be nonzero");
    if factor == 1 {
        return image.clone();
    }
    let out_w = image.width().div_ceil(factor).max(1);
    let out_h = image.height().div_ceil(factor).max(1);
    GrayImage::from_fn(out_w, out_h, |ox, oy| {
        let x0 = ox * factor;
        let y0 = oy * factor;
        let x1 = (x0 + factor).min(image.width());
        let y1 = (y0 + factor).min(image.height());
        let mut sum = 0u64;
        let mut count = 0u64;
        for yy in y0..y1 {
            for xx in x0..x1 {
                sum += u64::from(image.get(xx, yy).expect("block is in bounds"));
                count += 1;
            }
        }
        (sum as f64 / count as f64).round() as u8
    })
}

/// Mirrors an image left–right.
pub fn flip_horizontal(image: &GrayImage) -> GrayImage {
    let w = image.width();
    GrayImage::from_fn(w, image.height(), |x, y| {
        image
            .get(w - 1 - x, y)
            .expect("mirrored coordinate in bounds")
    })
}

/// Mirrors an image top–bottom.
pub fn flip_vertical(image: &GrayImage) -> GrayImage {
    let h = image.height();
    GrayImage::from_fn(image.width(), h, |x, y| {
        image
            .get(x, h - 1 - y)
            .expect("mirrored coordinate in bounds")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lut_identity_is_noop() {
        let img = GrayImage::from_fn(8, 8, |x, y| (x * 8 + y) as u8);
        let mut lut = [0u8; 256];
        for (i, e) in lut.iter_mut().enumerate() {
            *e = i as u8;
        }
        assert_eq!(apply_lut(&img, &lut), img);
    }

    #[test]
    fn lut_constant_maps_everything() {
        let img = GrayImage::from_fn(4, 4, |x, _| (x * 60) as u8);
        let lut = [7u8; 256];
        assert!(apply_lut(&img, &lut).pixels().all(|v| v == 7));
    }

    #[test]
    fn crop_extracts_expected_region() {
        let img = GrayImage::from_fn(10, 10, |x, y| (x + 10 * y) as u8);
        let sub = crop(&img, 2, 3, 4, 5).unwrap();
        assert_eq!(sub.width(), 4);
        assert_eq!(sub.height(), 5);
        assert_eq!(sub.get(0, 0), Some(2 + 30));
        assert_eq!(sub.get(3, 4), Some(5 + 70));
    }

    #[test]
    fn crop_rejects_out_of_bounds() {
        let img = GrayImage::filled(8, 8, 0);
        assert!(crop(&img, 5, 5, 4, 4).is_err());
        assert!(crop(&img, 0, 0, 0, 4).is_err());
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = GrayImage::from_fn(8, 6, |_, _| 100);
        let small = downsample(&img, 2);
        assert_eq!(small.width(), 4);
        assert_eq!(small.height(), 3);
        assert!(small.pixels().all(|v| v == 100));
    }

    #[test]
    fn downsample_averages_blocks() {
        // 2x2 blocks of (0, 0, 200, 200) average to 100.
        let img = GrayImage::from_fn(2, 2, |_, y| if y == 0 { 0 } else { 200 });
        let small = downsample(&img, 2);
        assert_eq!(small.get(0, 0), Some(100));
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let img = GrayImage::from_fn(5, 5, |x, y| (x * y) as u8);
        assert_eq!(downsample(&img, 1), img);
    }

    #[test]
    fn downsample_handles_partial_edge_blocks() {
        let img = GrayImage::from_fn(5, 5, |_, _| 50);
        let small = downsample(&img, 2);
        assert_eq!(small.width(), 3);
        assert_eq!(small.height(), 3);
        assert!(small.pixels().all(|v| v == 50));
    }

    #[test]
    fn flips_are_involutions() {
        let img = GrayImage::from_fn(7, 5, |x, y| (x * 31 + y * 7) as u8);
        assert_eq!(flip_horizontal(&flip_horizontal(&img)), img);
        assert_eq!(flip_vertical(&flip_vertical(&img)), img);
    }

    #[test]
    fn flip_horizontal_moves_first_column_last() {
        let img = GrayImage::from_fn(3, 1, |x, _| x as u8);
        let flipped = flip_horizontal(&img);
        assert_eq!(flipped.as_raw(), &[2, 1, 0]);
    }

    #[test]
    fn flip_vertical_moves_first_row_last() {
        let img = GrayImage::from_fn(1, 3, |_, y| y as u8);
        let flipped = flip_vertical(&img);
        assert_eq!(flipped.as_raw(), &[2, 1, 0]);
    }
}
