//! Fused single-pass frame ingest.
//!
//! A served frame needs three pixel-derived statistics before its fit can
//! even be looked up: the 256-bin [`Histogram`] (the fitting domain), the
//! 32-bin [`HistogramSignature`] (approximate cache key and curve-bank
//! routing), and a seeded 128-bit content hash (exact cache key). Computed
//! separately these are three full walks over the pixel buffer — at 4K
//! that is ~25 MB of memory traffic before any fitting happens.
//! [`FrameIngest`] computes all three in **one** fused pass: each 8-byte
//! chunk of pixels bumps its histogram bins and feeds one 64-bit word into
//! the hash, and the signature falls out of the finished histogram for
//! free (it is a 256-element reduction, not a pixel pass).
//!
//! # Lane-structured hashing
//!
//! The hash is defined over fixed *lanes* — runs of whole rows sized to
//! roughly [`LANE_TARGET_BYTES`] — rather than over the raw byte stream.
//! Each lane is digested independently with a per-lane seed, and the lane
//! digests are folded in lane order into the final 128-bit value. The lane
//! decomposition is a pure function of the frame's shape, **never** of the
//! thread count, so the serial and parallel paths are bit-identical and a
//! hash computed on a 1-core box matches one computed on a 64-core box.
//! Independent lanes are what make the parallel fan-out possible at all:
//! a single sequential mixing chain cannot be split across workers.
//!
//! # Parallel fan-out
//!
//! [`FrameIngest::compute_parallel`] distributes lanes over a std-only
//! [`std::thread::scope`] pool via an atomic lane cursor. Every worker
//! accumulates a private 256-bin partial histogram and its lanes' digests,
//! returns them through its join handle, and the caller merges: partial
//! bins add (histogram merging is commutative), digests scatter into lane
//! order (the fold is not). [`FrameIngest::compute_auto`] picks the fan-out
//! only when the frame is large enough to amortize thread wake-up
//! ([`PARALLEL_INGEST_THRESHOLD`]) and the machine actually has cores.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

use crate::histogram::{Histogram, GRAY_LEVELS};
use crate::image::GrayImage;
use crate::signature::HistogramSignature;
use crate::traversals;

/// SplitMix64 increment (the golden-ratio constant).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Target size of one hash lane in bytes (whole rows, ~256 KiB).
///
/// Large enough that per-lane seeding and digest folding are noise, small
/// enough that a 1080p frame (~2 MB) splits into ~8 lanes and keeps a
/// handful of workers busy. Changing this constant changes every exact
/// hash value; the cache is in-memory only, so that is safe between
/// releases but must never happen silently within one.
const LANE_TARGET_BYTES: usize = 256 * 1024;

/// Pixel count below which [`FrameIngest::compute_auto`] stays serial.
///
/// Fan-out costs two thread spawns minimum; below ~256 K pixels (a 512×512
/// frame) the fused serial pass finishes in well under the wake-up cost.
pub const PARALLEL_INGEST_THRESHOLD: usize = 1 << 18;

/// SplitMix64 finalizer: the avalanche permutation both hash streams use.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for one lane from the frame seed and the lane index.
fn lane_seed(seed: u64, lane: usize) -> u64 {
    mix(seed ^ (lane as u64).wrapping_mul(GOLDEN))
}

/// The frame's lane decomposition: whole-row runs of ~[`LANE_TARGET_BYTES`].
///
/// Depends only on the frame shape, so every compute path (serial,
/// parallel with any worker count, standalone [`frame_hash128`]) sees the
/// same lanes and produces the same digest.
#[derive(Debug, Clone, Copy)]
struct LanePlan {
    rows_per_lane: usize,
    lanes: usize,
}

impl LanePlan {
    fn of(width: u32, height: u32) -> LanePlan {
        let row_bytes = width as usize;
        let rows_per_lane = (LANE_TARGET_BYTES / row_bytes.max(1)).clamp(1, height as usize);
        LanePlan {
            rows_per_lane,
            lanes: (height as usize).div_ceil(rows_per_lane),
        }
    }

    /// Byte range of `lane` within the frame's raw buffer.
    fn byte_range(&self, width: u32, height: u32, lane: usize) -> Range<usize> {
        let start_row = lane * self.rows_per_lane;
        let end_row = (start_row + self.rows_per_lane).min(height as usize);
        start_row * width as usize..end_row * width as usize
    }
}

/// Advances the two interleaved hash streams by one 64-bit word.
fn stream_word(a: &mut u64, b: &mut u64, word: u64) {
    *a = mix(*a ^ word).wrapping_add(GOLDEN);
    *b = mix(b.rotate_left(23) ^ word);
}

/// Folds the sub-8-byte tail (if any) into the streams, tagged with its
/// length so `[1]` and `[1, 0]` lanes cannot collide.
fn stream_tail(a: &mut u64, b: &mut u64, tail: &[u8]) {
    if tail.is_empty() {
        return;
    }
    let mut padded = [0u8; 8];
    padded[..tail.len()].copy_from_slice(tail);
    let word = u64::from_le_bytes(padded) ^ ((tail.len() as u64) << 56);
    *a = mix(*a ^ word);
    *b = mix(*b ^ word.rotate_left(17));
}

fn stream_init(seed: u64) -> (u64, u64) {
    (mix(seed ^ GOLDEN), mix(seed.wrapping_add(GOLDEN)))
}

/// Digests one lane's bytes (hash only — used by [`frame_hash128`]).
fn hash_lane(bytes: &[u8], seed: u64) -> (u64, u64) {
    let (mut a, mut b) = stream_init(seed);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8) yields 8 bytes"));
        stream_word(&mut a, &mut b, word);
    }
    stream_tail(&mut a, &mut b, chunks.remainder());
    (a, b)
}

/// One worker's share of a parallel ingest: its private histogram bins
/// plus the `(lane index, lane digest)` pairs it pulled off the cursor.
type WorkerPartial = ([u64; GRAY_LEVELS], Vec<(usize, (u64, u64))>);

/// Digests one lane while bumping histogram bins: the fused inner loop.
///
/// Identical hash output to [`hash_lane`]; the bin increments ride along
/// on the same pass over the bytes.
fn ingest_lane(bytes: &[u8], seed: u64, bins: &mut [u64; GRAY_LEVELS]) -> (u64, u64) {
    let (mut a, mut b) = stream_init(seed);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        for &px in chunk {
            bins[px as usize] += 1;
        }
        let word = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8) yields 8 bytes"));
        stream_word(&mut a, &mut b, word);
    }
    let tail = chunks.remainder();
    for &px in tail {
        bins[px as usize] += 1;
    }
    stream_tail(&mut a, &mut b, tail);
    (a, b)
}

/// Folds per-lane digests, in lane order, into the final 128-bit hash.
fn fold_lanes(digests: &[(u64, u64)], seed: u64, total_bytes: usize) -> u128 {
    let (mut a, mut b) = stream_init(seed);
    for &(lane_a, lane_b) in digests {
        stream_word(&mut a, &mut b, lane_a);
        stream_word(&mut a, &mut b, lane_b);
    }
    a = mix(a ^ total_bytes as u64);
    b = mix(b.wrapping_add(total_bytes as u64));
    (u128::from(a) << 64) | u128::from(b)
}

/// Seeded 128-bit content hash of a frame's pixel buffer.
///
/// This is the canonical exact-key hash: [`FrameIngest`] produces the same
/// value on its fused pass, serial or parallel. Lane-structured (see the
/// module docs), so equal pixels under equal seed always hash equal
/// regardless of how the work was split.
pub fn frame_hash128(image: &GrayImage, seed: u64) -> u128 {
    traversals::record();
    let plan = LanePlan::of(image.width(), image.height());
    let data = image.as_raw();
    let mut digests = Vec::with_capacity(plan.lanes);
    for lane in 0..plan.lanes {
        let range = plan.byte_range(image.width(), image.height(), lane);
        digests.push(hash_lane(&data[range], lane_seed(seed, lane)));
    }
    fold_lanes(&digests, seed, data.len())
}

/// Number of workers [`FrameIngest::compute_auto`] fans out to: the
/// machine's available parallelism, probed once per process.
pub fn available_ingest_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Every pixel-derived statistic the serve path needs, from one fused pass.
///
/// ```
/// use hebs_imaging::{FrameIngest, GrayImage, Histogram, HistogramSignature, frame_hash128};
///
/// let frame = GrayImage::from_fn(64, 48, |x, y| ((x * 3 + y * 5) % 251) as u8);
/// let ingest = FrameIngest::compute(&frame, 7);
/// assert_eq!(*ingest.histogram(), Histogram::of(&frame));
/// assert_eq!(ingest.signature(), HistogramSignature::of(&Histogram::of(&frame)));
/// assert_eq!(ingest.content_hash(), frame_hash128(&frame, 7));
/// ```
#[derive(Debug, Clone)]
pub struct FrameIngest {
    histogram: Histogram,
    signature: HistogramSignature,
    content_hash: u128,
}

impl FrameIngest {
    /// Fused serial pass: one traversal of the pixel buffer.
    pub fn compute(image: &GrayImage, seed: u64) -> FrameIngest {
        traversals::record();
        Self::serial(image, seed)
    }

    /// Fused pass fanned out over at most `workers` scoped threads.
    ///
    /// Bit-identical to [`FrameIngest::compute`] for every worker count:
    /// the lane decomposition is fixed by the frame shape, partial
    /// histograms merge commutatively, and lane digests are re-ordered
    /// before the fold. Counts as **one** traversal (recorded on the
    /// calling thread) — the lanes partition the buffer, they do not
    /// re-read it.
    pub fn compute_parallel(image: &GrayImage, seed: u64, workers: usize) -> FrameIngest {
        traversals::record();
        let plan = LanePlan::of(image.width(), image.height());
        let workers = workers.min(plan.lanes);
        if workers <= 1 {
            return Self::serial(image, seed);
        }
        Self::parallel(image, seed, workers, plan)
    }

    /// Fused pass with automatic fan-out: parallel when the frame is at
    /// least [`PARALLEL_INGEST_THRESHOLD`] pixels and the machine has more
    /// than one core, serial otherwise.
    pub fn compute_auto(image: &GrayImage, seed: u64) -> FrameIngest {
        traversals::record();
        if image.pixel_count() >= PARALLEL_INGEST_THRESHOLD {
            let plan = LanePlan::of(image.width(), image.height());
            let workers = available_ingest_workers().min(plan.lanes);
            if workers > 1 {
                return Self::parallel(image, seed, workers, plan);
            }
        }
        Self::serial(image, seed)
    }

    fn serial(image: &GrayImage, seed: u64) -> FrameIngest {
        let plan = LanePlan::of(image.width(), image.height());
        let data = image.as_raw();
        let mut bins = [0u64; GRAY_LEVELS];
        let mut digests = Vec::with_capacity(plan.lanes);
        for lane in 0..plan.lanes {
            let range = plan.byte_range(image.width(), image.height(), lane);
            digests.push(ingest_lane(&data[range], lane_seed(seed, lane), &mut bins));
        }
        Self::assemble(bins, &digests, seed, data.len())
    }

    fn parallel(image: &GrayImage, seed: u64, workers: usize, plan: LanePlan) -> FrameIngest {
        let data = image.as_raw();
        let width = image.width();
        let height = image.height();
        let cursor = AtomicUsize::new(0);
        let partials: Vec<WorkerPartial> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut bins = [0u64; GRAY_LEVELS];
                        let mut digests = Vec::new();
                        loop {
                            // Lane payloads are read-only and results flow
                            // through join handles, which synchronize.
                            let lane = cursor.fetch_add(1, Ordering::Relaxed); // ordering: pure work distribution
                            if lane >= plan.lanes {
                                break;
                            }
                            let range = plan.byte_range(width, height, lane);
                            let digest =
                                ingest_lane(&data[range], lane_seed(seed, lane), &mut bins);
                            digests.push((lane, digest));
                        }
                        (bins, digests)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("ingest worker panicked"))
                .collect()
        });

        let mut bins = [0u64; GRAY_LEVELS];
        let mut digests = vec![(0u64, 0u64); plan.lanes];
        for (partial_bins, partial_digests) in partials {
            for (total, partial) in bins.iter_mut().zip(partial_bins.iter()) {
                *total += partial;
            }
            for (lane, digest) in partial_digests {
                digests[lane] = digest;
            }
        }
        Self::assemble(bins, &digests, seed, data.len())
    }

    fn assemble(
        bins: [u64; GRAY_LEVELS],
        digests: &[(u64, u64)],
        seed: u64,
        total_bytes: usize,
    ) -> FrameIngest {
        let histogram = Histogram::from_counts(bins);
        let signature = HistogramSignature::of(&histogram);
        FrameIngest {
            signature,
            content_hash: fold_lanes(digests, seed, total_bytes),
            histogram,
        }
    }

    /// The frame's full 256-bin histogram.
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// The frame's 32-bin coarse signature.
    pub fn signature(&self) -> HistogramSignature {
        self.signature
    }

    /// The seeded 128-bit exact-key content hash.
    pub fn content_hash(&self) -> u128 {
        self.content_hash
    }

    /// Decomposes into `(histogram, signature, content_hash)`.
    pub fn into_parts(self) -> (Histogram, HistogramSignature, u128) {
        (self.histogram, self.signature, self.content_hash)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    /// Shapes chosen to exercise every lane/tail case: degenerate 1×N and
    /// N×1, widths that are not multiples of the 8-byte hash chunk,
    /// multi-lane frames, and a lane whose byte count is odd (forcing the
    /// padded-tail path inside a middle-of-frame lane).
    const SHAPES: &[(u32, u32)] = &[
        (1, 1),
        (1, 7),
        (7, 1),
        (13, 9),
        (32, 32),
        (100, 1),
        (1, 100),
        (640, 3),
        (1024, 600),
        (513, 517),
    ];

    fn random_frame(rng: &mut StdRng, width: u32, height: u32) -> GrayImage {
        GrayImage::from_fn(width, height, |_, _| (rng.next_u64() & 0xFF) as u8)
    }

    #[test]
    fn lane_plan_covers_the_frame_exactly() {
        for &(width, height) in SHAPES {
            let plan = LanePlan::of(width, height);
            let mut covered = 0usize;
            for lane in 0..plan.lanes {
                let range = plan.byte_range(width, height, lane);
                assert_eq!(range.start, covered, "{width}x{height} lane {lane}");
                assert!(!range.is_empty(), "{width}x{height} lane {lane} empty");
                covered = range.end;
            }
            assert_eq!(covered, (width * height) as usize);
        }
    }

    #[test]
    fn large_frames_decompose_into_multiple_lanes() {
        let plan = LanePlan::of(1024, 600);
        assert_eq!(plan.rows_per_lane, 256);
        assert_eq!(plan.lanes, 3);
        // Last lane is short: 600 - 2*256 = 88 rows.
        assert_eq!(plan.byte_range(1024, 600, 2).len(), 88 * 1024);
    }

    #[test]
    fn fused_ingest_matches_the_separate_passes() {
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for &(width, height) in SHAPES {
            let frame = random_frame(&mut rng, width, height);
            let ingest = FrameIngest::compute(&frame, 42);
            let histogram = Histogram::of(&frame);
            assert_eq!(*ingest.histogram(), histogram, "{width}x{height}");
            assert_eq!(
                ingest.signature(),
                HistogramSignature::of(&histogram),
                "{width}x{height}"
            );
            assert_eq!(
                ingest.content_hash(),
                frame_hash128(&frame, 42),
                "{width}x{height}"
            );
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial_for_every_worker_count() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for &(width, height) in &[(1024, 600), (513, 517), (32, 32)] {
            let frame = random_frame(&mut rng, width, height);
            let serial = FrameIngest::compute(&frame, 9);
            for workers in 1..=5 {
                let parallel = FrameIngest::compute_parallel(&frame, 9, workers);
                assert_eq!(
                    parallel.content_hash(),
                    serial.content_hash(),
                    "{width}x{height} workers={workers}"
                );
                assert_eq!(*parallel.histogram(), *serial.histogram());
                assert_eq!(parallel.signature(), serial.signature());
            }
        }
    }

    #[test]
    fn compute_auto_matches_compute() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        // One frame below the parallel threshold, one above it.
        for &(width, height) in &[(64, 64), (1024, 600)] {
            let frame = random_frame(&mut rng, width, height);
            let auto = FrameIngest::compute_auto(&frame, 3);
            let serial = FrameIngest::compute(&frame, 3);
            assert_eq!(auto.content_hash(), serial.content_hash());
            assert_eq!(*auto.histogram(), *serial.histogram());
        }
    }

    #[test]
    fn hash_is_seed_sensitive() {
        let frame = GrayImage::filled(16, 16, 128);
        assert_ne!(frame_hash128(&frame, 1), frame_hash128(&frame, 2));
    }

    #[test]
    fn hash_is_content_sensitive_in_every_position() {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let base = random_frame(&mut rng, 37, 11);
        let reference = frame_hash128(&base, 0);
        for index in [0usize, 7, 8, 36, 37, 200, 37 * 11 - 1] {
            let mut altered = base.clone();
            altered.as_raw_mut()[index] ^= 0x40;
            assert_ne!(frame_hash128(&altered, 0), reference, "index {index}");
        }
    }

    #[test]
    fn equal_shapes_with_shifted_content_do_not_collide() {
        // Same multiset of bytes, different order: the hash must see
        // position, not just the histogram.
        let a = GrayImage::from_raw(4, 2, vec![1, 2, 3, 4, 5, 6, 7, 8]).expect("shape");
        let b = GrayImage::from_raw(4, 2, vec![8, 7, 6, 5, 4, 3, 2, 1]).expect("shape");
        assert_ne!(frame_hash128(&a, 0), frame_hash128(&b, 0));
    }

    #[test]
    fn ingest_records_exactly_one_traversal_even_when_parallel() {
        let frame = GrayImage::filled(1024, 600, 77);
        let before = traversals::count();
        let _ = FrameIngest::compute_parallel(&frame, 0, 4);
        assert_eq!(traversals::count() - before, 1);
        let _ = FrameIngest::compute(&frame, 0);
        assert_eq!(traversals::count() - before, 2);
        let _ = frame_hash128(&frame, 0);
        assert_eq!(traversals::count() - before, 3);
    }
}
