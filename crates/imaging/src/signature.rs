//! Quantized histogram signatures for transform caching.
//!
//! Consecutive video frames are usually near-identical: their histograms
//! differ only by sensor noise and small object motion, so the HEBS
//! transformation computed for one frame is (to the quantization of the
//! reference driver) also the right transformation for the next. A
//! [`HistogramSignature`] collapses the 256-bin histogram into a small,
//! coarsely quantized fingerprint that is equal for such near-identical
//! frames and can be used as a hash-map key by the runtime's transformation
//! cache.

use crate::histogram::{Histogram, GRAY_LEVELS};

/// Number of downsampled bins in a [`HistogramSignature`] (8 consecutive
/// grayscale levels per bin).
pub const SIGNATURE_BINS: usize = 32;

/// Default quantization resolution: each bin's mass fraction is rounded to
/// multiples of `1/16`, which absorbs a few levels of sensor noise while
/// still separating visually distinct scenes.
pub const DEFAULT_SIGNATURE_RESOLUTION: u8 = 16;

/// A compact, quantized fingerprint of an image histogram.
///
/// Two frames whose pixel-value distributions differ by less than the
/// quantization step map to the same signature; frames from different scenes
/// essentially never do. The signature is `Copy`, cheap to compute (one pass
/// over the 256 histogram bins) and implements `Hash`/`Eq`, so it can key a
/// cache directly.
///
/// ```
/// use hebs_imaging::{GrayImage, Histogram, HistogramSignature};
///
/// let frame = GrayImage::from_fn(32, 32, |x, y| ((x * y) % 256) as u8);
/// let sig = HistogramSignature::of(&Histogram::of(&frame));
/// assert_eq!(sig, HistogramSignature::of(&Histogram::of(&frame)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramSignature {
    bins: [u8; SIGNATURE_BINS],
}

impl HistogramSignature {
    /// Computes the signature of a histogram at the default resolution.
    pub fn of(histogram: &Histogram) -> Self {
        Self::with_resolution(histogram, DEFAULT_SIGNATURE_RESOLUTION)
    }

    /// Computes the signature with an explicit quantization resolution.
    ///
    /// Each downsampled bin's mass fraction is rounded to multiples of
    /// `1/resolution`: higher resolutions distinguish more histograms (fewer
    /// cache hits, smaller approximation error), lower resolutions merge
    /// more (more hits, larger error).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is 0.
    pub fn with_resolution(histogram: &Histogram, resolution: u8) -> Self {
        assert!(resolution > 0, "signature resolution must be nonzero");
        let mut bins = [0u8; SIGNATURE_BINS];
        let total = histogram.total();
        if total == 0 {
            return HistogramSignature { bins };
        }
        let levels_per_bin = GRAY_LEVELS / SIGNATURE_BINS;
        let counts = histogram.counts();
        for (bin, slot) in bins.iter_mut().enumerate() {
            let start = bin * levels_per_bin;
            let mass: u64 = counts[start..start + levels_per_bin].iter().sum();
            let fraction = mass as f64 / total as f64;
            *slot = (fraction * f64::from(resolution)).round() as u8;
        }
        HistogramSignature { bins }
    }

    /// Reconstructs a signature from previously extracted bins (see
    /// [`HistogramSignature::bins`]). Intended for deserialization paths
    /// that persist signatures across processes; the bins are taken as-is,
    /// so the caller is responsible for having produced them with
    /// [`HistogramSignature::of`] or
    /// [`HistogramSignature::with_resolution`] at a matching resolution.
    pub fn from_bins(bins: [u8; SIGNATURE_BINS]) -> Self {
        HistogramSignature { bins }
    }

    /// The quantized per-bin mass values.
    pub fn bins(&self) -> &[u8; SIGNATURE_BINS] {
        &self.bins
    }

    /// L1 distance between two signatures, in quantization steps. Useful as
    /// a cheap diagnostic of how different two frames' distributions are.
    pub fn distance(&self, other: &HistogramSignature) -> u32 {
        self.bins
            .iter()
            .zip(other.bins.iter())
            .map(|(&a, &b)| u32::from(a.abs_diff(b)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::GrayImage;
    use crate::synthetic;

    #[test]
    fn identical_images_share_a_signature() {
        let img = synthetic::portrait(64, 64, 3);
        let a = HistogramSignature::of(&Histogram::of(&img));
        let b = HistogramSignature::of(&Histogram::of(&img.clone()));
        assert_eq!(a, b);
        assert_eq!(a.distance(&b), 0);
    }

    #[test]
    fn sensor_noise_usually_does_not_change_the_signature() {
        let img = synthetic::still_life(64, 64, 5);
        let base = HistogramSignature::of(&Histogram::of(&img));
        let mut noisy_matches = 0;
        for seed in 0..8 {
            let mut noisy = img.clone();
            synthetic::add_sensor_noise(&mut noisy, 2, seed);
            let sig = HistogramSignature::of(&Histogram::of(&noisy));
            if sig == base {
                noisy_matches += 1;
            }
            // Even on a miss the distributions are nearly identical.
            assert!(sig.distance(&base) <= 4, "distance {}", sig.distance(&base));
        }
        assert!(
            noisy_matches >= 4,
            "only {noisy_matches}/8 noisy frames matched"
        );
    }

    #[test]
    fn different_scenes_have_different_signatures() {
        let dark = HistogramSignature::of(&Histogram::of(&synthetic::low_key(64, 64, 7)));
        let bright = HistogramSignature::of(&Histogram::of(&synthetic::high_key(64, 64, 7)));
        assert_ne!(dark, bright);
        assert!(dark.distance(&bright) > 4);
    }

    #[test]
    fn signature_mass_roughly_sums_to_resolution() {
        let img = GrayImage::from_fn(64, 64, |x, _| (x * 4) as u8);
        let sig = HistogramSignature::of(&Histogram::of(&img));
        let mass: u32 = sig.bins().iter().map(|&b| u32::from(b)).sum();
        let res = u32::from(DEFAULT_SIGNATURE_RESOLUTION);
        assert!(
            (res.saturating_sub(SIGNATURE_BINS as u32)..=res + SIGNATURE_BINS as u32)
                .contains(&mass)
        );
    }

    #[test]
    fn empty_histogram_yields_the_zero_signature() {
        let sig = HistogramSignature::of(&Histogram::new());
        assert!(sig.bins().iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "resolution must be nonzero")]
    fn zero_resolution_rejected() {
        let _ = HistogramSignature::with_resolution(&Histogram::new(), 0);
    }
}
