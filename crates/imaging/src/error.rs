//! Error type shared by the imaging crate.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ImageError>;

/// Error raised by image construction, manipulation or I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum ImageError {
    /// The requested dimensions are invalid (zero, or inconsistent with the
    /// supplied pixel buffer length).
    InvalidDimensions {
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
        /// Length of the pixel buffer that was supplied.
        buffer_len: usize,
    },
    /// A pixel coordinate fell outside of the image bounds.
    OutOfBounds {
        /// Requested x coordinate.
        x: u32,
        /// Requested y coordinate.
        y: u32,
        /// Image width in pixels.
        width: u32,
        /// Image height in pixels.
        height: u32,
    },
    /// A PGM/PPM stream could not be decoded.
    Decode(String),
    /// An underlying I/O operation failed.
    Io(std::io::Error),
}

impl fmt::Display for ImageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageError::InvalidDimensions {
                width,
                height,
                buffer_len,
            } => write!(
                f,
                "invalid image dimensions {width}x{height} for buffer of {buffer_len} bytes"
            ),
            ImageError::OutOfBounds {
                x,
                y,
                width,
                height,
            } => write!(
                f,
                "pixel coordinate ({x}, {y}) is outside of a {width}x{height} image"
            ),
            ImageError::Decode(msg) => write!(f, "failed to decode image: {msg}"),
            ImageError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for ImageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ImageError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ImageError {
    fn from(err: std::io::Error) -> Self {
        ImageError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_dimensions() {
        let err = ImageError::InvalidDimensions {
            width: 3,
            height: 4,
            buffer_len: 5,
        };
        let text = err.to_string();
        assert!(text.contains("3x4"));
        assert!(text.contains("5 bytes"));
    }

    #[test]
    fn display_out_of_bounds() {
        let err = ImageError::OutOfBounds {
            x: 10,
            y: 20,
            width: 8,
            height: 8,
        };
        assert!(err.to_string().contains("(10, 20)"));
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = ImageError::from(io);
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ImageError>();
    }
}
