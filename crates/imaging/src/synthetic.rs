//! Procedural generation of test and benchmark images.
//!
//! The HEBS paper evaluates on photographs from the USC SIPI database. Those
//! photographs cannot be redistributed, and the behaviour of backlight
//! scaling policies depends on the *histogram shape* and the amount of local
//! structure of an image rather than on its semantic content. This module
//! therefore provides deterministic, seeded generators that produce images
//! with controlled tonal distributions: smooth gradients, object-like blobs,
//! fine texture, dark (low-key) and bright (high-key) scenes and synthetic
//! test patterns.
//!
//! All generators are deterministic for a given seed, so benchmark results
//! are reproducible run to run.

use crate::image::GrayImage;
use crate::rng::StdRng;

/// Clamps a float to the 8-bit level range and rounds.
fn to_level(value: f64) -> u8 {
    value.round().clamp(0.0, 255.0) as u8
}

/// A horizontal or vertical linear gradient spanning `[lo, hi]`.
///
/// ```
/// use hebs_imaging::synthetic::linear_gradient;
/// let g = linear_gradient(128, 32, 0, 255, true);
/// assert_eq!(g.get(0, 0), Some(0));
/// assert_eq!(g.get(127, 0), Some(255));
/// ```
pub fn linear_gradient(width: u32, height: u32, lo: u8, hi: u8, horizontal: bool) -> GrayImage {
    let span = f64::from(hi) - f64::from(lo);
    GrayImage::from_fn(width, height, |x, y| {
        let t = if horizontal {
            if width <= 1 {
                0.0
            } else {
                f64::from(x) / f64::from(width - 1)
            }
        } else if height <= 1 {
            0.0
        } else {
            f64::from(y) / f64::from(height - 1)
        };
        to_level(f64::from(lo) + t * span)
    })
}

/// A radial gradient: bright in the centre, falling off towards the corners.
pub fn radial_gradient(width: u32, height: u32, centre: u8, edge: u8) -> GrayImage {
    let cx = f64::from(width - 1) / 2.0;
    let cy = f64::from(height - 1) / 2.0;
    let max_r = (cx * cx + cy * cy).sqrt().max(1.0);
    GrayImage::from_fn(width, height, |x, y| {
        let dx = f64::from(x) - cx;
        let dy = f64::from(y) - cy;
        let r = (dx * dx + dy * dy).sqrt() / max_r;
        to_level(f64::from(centre) + (f64::from(edge) - f64::from(centre)) * r)
    })
}

/// A checkerboard with square cells of `cell` pixels alternating between two
/// levels. Useful for contrast and LUT sanity checks.
///
/// # Panics
///
/// Panics if `cell` is 0.
pub fn checkerboard(width: u32, height: u32, cell: u32, dark: u8, light: u8) -> GrayImage {
    assert!(cell > 0, "cell size must be nonzero");
    GrayImage::from_fn(width, height, |x, y| {
        if ((x / cell) + (y / cell)) % 2 == 0 {
            dark
        } else {
            light
        }
    })
}

/// Vertical bars stepping through `steps` evenly spaced grayscale levels.
///
/// The resulting histogram consists of `steps` equal spikes — a stand-in for
/// the SIPI `Testpat` chart.
///
/// # Panics
///
/// Panics if `steps` is 0.
pub fn bars(width: u32, height: u32, steps: u32) -> GrayImage {
    assert!(steps > 0, "steps must be nonzero");
    GrayImage::from_fn(width, height, |x, _| {
        let band = x * steps / width.max(1);
        let band = band.min(steps - 1);
        to_level(f64::from(band) * 255.0 / f64::from((steps - 1).max(1)))
    })
}

/// Adds a Gaussian intensity blob onto an existing image (saturating).
///
/// Blobs model bright coherent objects (faces, fruit, sails, …): pixels that
/// belong to one object occupy a narrow band of the histogram, which is what
/// the HEBS equalization exploits.
pub fn add_gaussian_blob(
    image: &mut GrayImage,
    centre_x: f64,
    centre_y: f64,
    sigma: f64,
    amplitude: f64,
) {
    let width = image.width();
    let height = image.height();
    let sigma = sigma.max(1e-6);
    for y in 0..height {
        for x in 0..width {
            let dx = f64::from(x) - centre_x;
            let dy = f64::from(y) - centre_y;
            let g = amplitude * (-(dx * dx + dy * dy) / (2.0 * sigma * sigma)).exp();
            let current = f64::from(image.get(x, y).expect("in bounds"));
            image.set(x, y, to_level(current + g)).expect("in bounds");
        }
    }
}

/// Smooth deterministic value noise in `[0, 1]` built from a seeded random
/// lattice with bilinear interpolation and three octaves.
///
/// `scale` is the lattice spacing in pixels of the coarsest octave; larger
/// values produce smoother fields.
///
/// # Panics
///
/// Panics if `scale` is 0.
pub fn value_noise(width: u32, height: u32, scale: u32, seed: u64) -> Vec<f64> {
    assert!(scale > 0, "noise scale must be nonzero");
    let mut field = vec![0.0f64; width as usize * height as usize];
    let mut total_weight = 0.0;
    let octaves = [
        (scale.max(1), 1.0),
        ((scale / 2).max(1), 0.5),
        ((scale / 4).max(1), 0.25),
    ];
    for (octave_index, &(spacing, weight)) in octaves.iter().enumerate() {
        let lattice_w = width / spacing + 2;
        let lattice_h = height / spacing + 2;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(octave_index as u64 * 0x9E37_79B9));
        let lattice: Vec<f64> = (0..lattice_w * lattice_h)
            .map(|_| rng.random_range(0.0..1.0))
            .collect();
        let sample = |ix: u32, iy: u32| lattice[(iy * lattice_w + ix) as usize];
        for y in 0..height {
            for x in 0..width {
                let fx = f64::from(x) / f64::from(spacing);
                let fy = f64::from(y) / f64::from(spacing);
                let x0 = fx.floor() as u32;
                let y0 = fy.floor() as u32;
                let tx = fx - f64::from(x0);
                let ty = fy - f64::from(y0);
                // Smoothstep the interpolation parameter for a softer field.
                let sx = tx * tx * (3.0 - 2.0 * tx);
                let sy = ty * ty * (3.0 - 2.0 * ty);
                let v00 = sample(x0, y0);
                let v10 = sample(x0 + 1, y0);
                let v01 = sample(x0, y0 + 1);
                let v11 = sample(x0 + 1, y0 + 1);
                let v0 = v00 + (v10 - v00) * sx;
                let v1 = v01 + (v11 - v01) * sx;
                let v = v0 + (v1 - v0) * sy;
                field[(y * width + x) as usize] += v * weight;
            }
        }
        total_weight += weight;
    }
    for v in &mut field {
        *v /= total_weight;
    }
    field
}

/// A textured image whose levels span `[lo, hi]`, built from value noise.
///
/// With a small `scale` this produces fine, high-variance texture (a stand-in
/// for SIPI `Baboon`); with a large `scale` it produces smooth cloudy scenes.
pub fn noise_texture(width: u32, height: u32, scale: u32, lo: u8, hi: u8, seed: u64) -> GrayImage {
    let field = value_noise(width, height, scale, seed);
    let span = f64::from(hi) - f64::from(lo);
    GrayImage::from_fn(width, height, |x, y| {
        let v = field[(y * width + x) as usize];
        to_level(f64::from(lo) + v * span)
    })
}

/// Applies a gamma curve to an image in place (`x' = x^gamma` on normalized
/// values). `gamma < 1` brightens (high-key), `gamma > 1` darkens (low-key).
///
/// # Panics
///
/// Panics if `gamma` is not finite and positive.
pub fn apply_gamma(image: &mut GrayImage, gamma: f64) {
    assert!(
        gamma.is_finite() && gamma > 0.0,
        "gamma must be finite and positive"
    );
    image.map_in_place(|v| {
        let x = f64::from(v) / 255.0;
        to_level(x.powf(gamma) * 255.0)
    });
}

/// Linearly remaps the occupied level range of an image onto `[lo, hi]`.
///
/// Used by the benchmark suite to give each synthetic scene a controlled
/// dynamic range.
pub fn stretch_to_range(image: &mut GrayImage, lo: u8, hi: u8) {
    let min = f64::from(image.min_level());
    let max = f64::from(image.max_level());
    let span_in = (max - min).max(1.0);
    let span_out = f64::from(hi) - f64::from(lo);
    image.map_in_place(|v| {
        let t = (f64::from(v) - min) / span_in;
        to_level(f64::from(lo) + t * span_out)
    });
}

/// Adds zero-mean uniform "sensor" noise of amplitude `±amplitude` levels to
/// every pixel (clamped to the 8-bit range).
///
/// Real photographs always carry a little sensor noise; the scene composites
/// add a couple of levels of it so that window-based quality metrics behave
/// on the synthetic suite the way they do on natural images.
pub fn add_sensor_noise(image: &mut GrayImage, amplitude: u8, seed: u64) {
    if amplitude == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_0123_4567_89AB);
    let amp = i16::from(amplitude);
    image.map_in_place(|v| {
        let noise: i16 = rng.random_range(-amp..=amp);
        (i16::from(v) + noise).clamp(0, 255) as u8
    });
}

/// Sprinkles salt-and-pepper noise over a fraction of the pixels.
///
/// `fraction` is clamped to `[0, 1]`. Used for failure-injection style tests
/// of the distortion metrics.
pub fn add_salt_and_pepper(image: &mut GrayImage, fraction: f64, seed: u64) {
    let fraction = fraction.clamp(0.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let count = (image.pixel_count() as f64 * fraction).round() as usize;
    let width = image.width();
    let height = image.height();
    for _ in 0..count {
        let x = rng.random_range(0..width);
        let y = rng.random_range(0..height);
        let level = if rng.random_bool(0.5) { 0 } else { 255 };
        image.set(x, y, level).expect("coordinates are in range");
    }
}

/// A portrait-like scene: dark background, a bright oval "face" and mid-tone
/// "clothing" — a trimodal histogram similar to SIPI `Lena` / `Girl`.
pub fn portrait(width: u32, height: u32, seed: u64) -> GrayImage {
    let mut img = noise_texture(width, height, width.max(8) / 4, 30, 80, seed);
    let cx = f64::from(width) * 0.5;
    let cy = f64::from(height) * 0.4;
    let sigma = f64::from(width.min(height)) * 0.18;
    // Face.
    add_gaussian_blob(&mut img, cx, cy, sigma, 150.0);
    // Shoulders / clothing.
    add_gaussian_blob(
        &mut img,
        cx,
        f64::from(height) * 0.85,
        f64::from(width) * 0.3,
        70.0,
    );
    // A bright highlight (hat / lamp).
    add_gaussian_blob(
        &mut img,
        f64::from(width) * 0.75,
        f64::from(height) * 0.2,
        sigma * 0.5,
        90.0,
    );
    add_sensor_noise(&mut img, 2, seed);
    img
}

/// A landscape-like scene: bright sky band over darker textured ground — a
/// bimodal histogram similar to SIPI `Trees` / `Sail`.
pub fn landscape(width: u32, height: u32, seed: u64) -> GrayImage {
    let horizon = height as f64 * 0.45;
    let ground = noise_texture(width, height, width.max(8) / 8, 40, 120, seed);
    let mut img = GrayImage::from_fn(width, height, |x, y| {
        if f64::from(y) < horizon {
            // Sky: bright gradient getting brighter towards the top.
            let t = f64::from(y) / horizon.max(1.0);
            to_level(230.0 - 60.0 * t)
        } else {
            ground.get(x, y).expect("in bounds")
        }
    });
    add_sensor_noise(&mut img, 2, seed);
    img
}

/// A still-life scene: several bright round objects on a mid-dark cloth,
/// similar to SIPI `Peppers` / `Onion` / `Pears`.
pub fn still_life(width: u32, height: u32, seed: u64) -> GrayImage {
    let mut img = noise_texture(width, height, width.max(8) / 3, 50, 90, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let objects = 5 + (seed % 3) as usize;
    for _ in 0..objects {
        let cx = rng.random_range(0.15..0.85) * f64::from(width);
        let cy = rng.random_range(0.2..0.85) * f64::from(height);
        let sigma = rng.random_range(0.06..0.14) * f64::from(width.min(height));
        let amplitude = rng.random_range(80.0..160.0);
        add_gaussian_blob(&mut img, cx, cy, sigma, amplitude);
    }
    add_sensor_noise(&mut img, 2, seed);
    img
}

/// Fine high-variance texture covering most of the tonal range, similar to
/// SIPI `Baboon`.
pub fn fine_texture(width: u32, height: u32, seed: u64) -> GrayImage {
    let mut img = noise_texture(width, height, 4, 10, 245, seed);
    // Boost local contrast slightly so the histogram has long tails.
    apply_gamma(&mut img, 0.95);
    img
}

/// A predominantly dark (low-key) scene with a few highlights, similar to a
/// night shot or SIPI `Splash`.
pub fn low_key(width: u32, height: u32, seed: u64) -> GrayImage {
    let mut img = noise_texture(width, height, width.max(8) / 4, 5, 90, seed);
    apply_gamma(&mut img, 1.6);
    add_gaussian_blob(
        &mut img,
        f64::from(width) * 0.3,
        f64::from(height) * 0.35,
        f64::from(width.min(height)) * 0.1,
        200.0,
    );
    add_sensor_noise(&mut img, 2, seed);
    img
}

/// A predominantly bright (high-key) scene, similar to an overexposed
/// daylight shot or SIPI `Autumn` sky.
pub fn high_key(width: u32, height: u32, seed: u64) -> GrayImage {
    let mut img = noise_texture(width, height, width.max(8) / 4, 140, 250, seed);
    apply_gamma(&mut img, 0.75);
    add_sensor_noise(&mut img, 2, seed);
    img
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn gradient_endpoints() {
        let g = linear_gradient(100, 10, 20, 220, true);
        assert_eq!(g.get(0, 0), Some(20));
        assert_eq!(g.get(99, 0), Some(220));
        let v = linear_gradient(10, 100, 0, 255, false);
        assert_eq!(v.get(0, 0), Some(0));
        assert_eq!(v.get(0, 99), Some(255));
    }

    #[test]
    fn gradient_single_column_does_not_divide_by_zero() {
        let g = linear_gradient(1, 1, 10, 200, true);
        assert_eq!(g.get(0, 0), Some(10));
    }

    #[test]
    fn radial_gradient_centre_brighter_than_corner() {
        let g = radial_gradient(65, 65, 240, 20);
        let centre = g.get(32, 32).unwrap();
        let corner = g.get(0, 0).unwrap();
        assert!(centre > corner);
        assert!(centre >= 230);
        assert!(corner <= 40);
    }

    #[test]
    fn checkerboard_alternates() {
        let c = checkerboard(8, 8, 2, 10, 240);
        assert_eq!(c.get(0, 0), Some(10));
        assert_eq!(c.get(2, 0), Some(240));
        assert_eq!(c.get(0, 2), Some(240));
        assert_eq!(c.get(2, 2), Some(10));
    }

    #[test]
    fn bars_histogram_has_expected_spikes() {
        let img = bars(160, 16, 8);
        let hist = Histogram::of(&img);
        assert_eq!(hist.occupied_levels(), 8);
        assert_eq!(hist.min_level(), Some(0));
        assert_eq!(hist.max_level(), Some(255));
    }

    #[test]
    fn value_noise_is_deterministic_and_bounded() {
        let a = value_noise(32, 32, 8, 42);
        let b = value_noise(32, 32, 8, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0.0..=1.0).contains(&v)));
        let c = value_noise(32, 32, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_texture_respects_bounds() {
        let img = noise_texture(64, 64, 8, 50, 200, 7);
        assert!(img.min_level() >= 50);
        assert!(img.max_level() <= 200);
    }

    #[test]
    fn gamma_direction() {
        let mut bright = linear_gradient(64, 1, 0, 255, true);
        let original_mean = bright.mean();
        apply_gamma(&mut bright, 0.5);
        assert!(bright.mean() > original_mean);

        let mut dark = linear_gradient(64, 1, 0, 255, true);
        apply_gamma(&mut dark, 2.0);
        assert!(dark.mean() < original_mean);
    }

    #[test]
    #[should_panic(expected = "gamma must be finite and positive")]
    fn gamma_rejects_nonpositive() {
        let mut img = GrayImage::filled(2, 2, 10);
        apply_gamma(&mut img, 0.0);
    }

    #[test]
    fn stretch_to_range_hits_endpoints() {
        let mut img = noise_texture(32, 32, 8, 100, 150, 3);
        stretch_to_range(&mut img, 10, 240);
        assert_eq!(img.min_level(), 10);
        assert_eq!(img.max_level(), 240);
    }

    #[test]
    fn sensor_noise_is_bounded_and_deterministic() {
        let mut a = GrayImage::filled(32, 32, 100);
        let mut b = GrayImage::filled(32, 32, 100);
        add_sensor_noise(&mut a, 2, 7);
        add_sensor_noise(&mut b, 2, 7);
        assert_eq!(a, b);
        assert!(a.pixels().all(|v| (98..=102).contains(&v)));
        // Mean stays close to the original level (zero-mean noise).
        assert!((a.mean() - 100.0).abs() < 1.0);
    }

    #[test]
    fn sensor_noise_zero_amplitude_is_noop() {
        let mut img = GrayImage::filled(8, 8, 42);
        add_sensor_noise(&mut img, 0, 3);
        assert!(img.pixels().all(|v| v == 42));
    }

    #[test]
    fn sensor_noise_clamps_at_level_extremes() {
        let mut img = GrayImage::filled(16, 16, 0);
        add_sensor_noise(&mut img, 3, 9);
        assert!(img.pixels().all(|v| v <= 3));
        let mut bright = GrayImage::filled(16, 16, 255);
        add_sensor_noise(&mut bright, 3, 9);
        assert!(bright.pixels().all(|v| v >= 252));
    }

    #[test]
    fn salt_and_pepper_changes_pixels() {
        let mut img = GrayImage::filled(64, 64, 128);
        add_salt_and_pepper(&mut img, 0.1, 11);
        let hist = Histogram::of(&img);
        assert!(hist.count(0) + hist.count(255) > 0);
        // Only roughly 10% of the pixels should be affected.
        assert!(hist.count(128) > (64 * 64) * 8 / 10);
    }

    #[test]
    fn salt_and_pepper_zero_fraction_is_noop() {
        let mut img = GrayImage::filled(16, 16, 77);
        add_salt_and_pepper(&mut img, 0.0, 3);
        assert!(img.pixels().all(|v| v == 77));
    }

    #[test]
    fn portrait_is_brighter_near_face_than_background() {
        let img = portrait(128, 128, 1);
        let face = img.get(64, 51).unwrap();
        let corner = img.get(2, 2).unwrap();
        assert!(face > corner);
    }

    #[test]
    fn landscape_sky_brighter_than_ground() {
        let img = landscape(128, 128, 2);
        let sky = img.get(64, 5).unwrap();
        let ground = img.get(64, 120).unwrap();
        assert!(sky > ground);
    }

    #[test]
    fn scene_generators_are_deterministic() {
        assert_eq!(portrait(64, 64, 9), portrait(64, 64, 9));
        assert_eq!(landscape(64, 64, 9), landscape(64, 64, 9));
        assert_eq!(still_life(64, 64, 9), still_life(64, 64, 9));
        assert_eq!(fine_texture(64, 64, 9), fine_texture(64, 64, 9));
        assert_eq!(low_key(64, 64, 9), low_key(64, 64, 9));
        assert_eq!(high_key(64, 64, 9), high_key(64, 64, 9));
    }

    #[test]
    fn low_key_is_darker_than_high_key() {
        let dark = low_key(96, 96, 5);
        let bright = high_key(96, 96, 5);
        assert!(dark.mean() + 40.0 < bright.mean());
    }

    #[test]
    fn fine_texture_has_wide_histogram() {
        let img = fine_texture(128, 128, 4);
        let hist = Histogram::of(&img);
        assert!(hist.dynamic_range() > 150);
        assert!(hist.entropy() > 5.0);
    }
}
