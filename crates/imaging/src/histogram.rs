//! Marginal and cumulative pixel-value histograms.
//!
//! The histogram is the central data structure of the HEBS algorithm: the
//! Global Histogram Equalization step maps the image's *cumulative*
//! histogram onto a uniform cumulative histogram of reduced dynamic range
//! (Eq. 5–7 of the paper).

use crate::image::GrayImage;
use crate::traversals;

/// Number of distinct grayscale levels of an 8-bit display.
pub const GRAY_LEVELS: usize = 256;

/// Marginal distribution histogram `h(x)` of an 8-bit grayscale image.
///
/// Bin `i` counts the number of pixels with value exactly `i`.
///
/// ```
/// use hebs_imaging::{GrayImage, Histogram};
///
/// let img = GrayImage::from_fn(4, 4, |x, _| if x < 2 { 10 } else { 200 });
/// let hist = Histogram::of(&img);
/// assert_eq!(hist.count(10), 8);
/// assert_eq!(hist.count(200), 8);
/// assert_eq!(hist.total(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: [u64; GRAY_LEVELS],
    total: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (all bins zero).
    pub fn new() -> Self {
        Histogram {
            bins: [0; GRAY_LEVELS],
            total: 0,
        }
    }

    /// Computes the histogram of an image.
    ///
    /// This is a full-frame pixel traversal (recorded by
    /// [`crate::traversals`]); serve paths that also need the content hash
    /// should use the fused [`crate::FrameIngest`] pass instead.
    pub fn of(image: &GrayImage) -> Self {
        traversals::record();
        let mut hist = Histogram::new();
        for value in image.pixels() {
            hist.bins[value as usize] += 1;
        }
        hist.total = image.pixel_count() as u64;
        hist
    }

    /// Builds a histogram directly from per-level counts.
    ///
    /// This is useful in tests and when synthesizing target distributions.
    pub fn from_counts(counts: [u64; GRAY_LEVELS]) -> Self {
        let total = counts.iter().sum();
        Histogram {
            bins: counts,
            total,
        }
    }

    /// Adds one observation of `level`.
    pub fn record(&mut self, level: u8) {
        self.bins[level as usize] += 1;
        self.total += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.bins.iter_mut().zip(other.bins.iter()) {
            *a += *b;
        }
        self.total += other.total;
    }

    /// Number of pixels with value exactly `level`.
    pub fn count(&self, level: u8) -> u64 {
        self.bins[level as usize]
    }

    /// Total number of observations (pixels).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Borrow of the raw per-level counts.
    pub fn counts(&self) -> &[u64; GRAY_LEVELS] {
        &self.bins
    }

    /// Relative frequency of `level` (`count / total`), 0 for an empty
    /// histogram.
    pub fn frequency(&self, level: u8) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[level as usize] as f64 / self.total as f64
        }
    }

    /// Smallest level with a nonzero count, or `None` for an empty histogram.
    pub fn min_level(&self) -> Option<u8> {
        self.bins.iter().position(|&c| c > 0).map(|i| i as u8)
    }

    /// Largest level with a nonzero count, or `None` for an empty histogram.
    pub fn max_level(&self) -> Option<u8> {
        self.bins.iter().rposition(|&c| c > 0).map(|i| i as u8)
    }

    /// Number of levels spanned by the occupied part of the histogram
    /// (`max − min + 1`), 0 for an empty histogram.
    pub fn dynamic_range(&self) -> u32 {
        match (self.min_level(), self.max_level()) {
            (Some(lo), Some(hi)) => u32::from(hi) - u32::from(lo) + 1,
            _ => 0,
        }
    }

    /// Number of distinct levels that actually occur in the image.
    pub fn occupied_levels(&self) -> usize {
        self.bins.iter().filter(|&&c| c > 0).count()
    }

    /// Mean pixel value.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| i as f64 * c as f64)
            .sum::<f64>()
            / self.total as f64
    }

    /// Population variance of the pixel values.
    pub fn variance(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mean = self.mean();
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let d = i as f64 - mean;
                d * d * c as f64
            })
            .sum::<f64>()
            / self.total as f64
    }

    /// Shannon entropy of the level distribution, in bits.
    ///
    /// A uniform histogram over `R` levels has entropy `log2(R)`; HEBS pushes
    /// the transformed histogram towards that maximum for its target range.
    pub fn entropy(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let n = self.total as f64;
        self.bins
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum()
    }

    /// The level below which `fraction` of the pixels lie (inclusive).
    ///
    /// `fraction` is clamped to `[0, 1]`. Returns `None` for an empty
    /// histogram.
    pub fn percentile(&self, fraction: f64) -> Option<u8> {
        if self.total == 0 {
            return None;
        }
        let fraction = fraction.clamp(0.0, 1.0);
        let target = (fraction * self.total as f64).ceil() as u64;
        let target = target.max(1);
        let mut cumulative = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(i as u8);
            }
        }
        self.max_level()
    }

    /// L1 distance between the *normalized* histograms, in `[0, 2]`.
    ///
    /// The paper mentions "the integral of the absolute value of the
    /// histogram differences" as a naïve (histogram-only) distortion measure;
    /// this method provides it as a diagnostic.
    pub fn l1_distance(&self, other: &Histogram) -> f64 {
        (0..GRAY_LEVELS)
            .map(|i| (self.frequency(i as u8) - other.frequency(i as u8)).abs())
            .sum()
    }

    /// Computes the cumulative histogram `H(x) = Σ_{k ≤ x} h(k)`.
    pub fn cumulative(&self) -> CumulativeHistogram {
        CumulativeHistogram::from_histogram(self)
    }
}

/// Cumulative distribution histogram `H(x)` of pixel values.
///
/// `H(x)` is the number of pixels with value `≤ x`; `H(255)` equals the total
/// pixel count `N`. The GHE transformation of the paper is
/// `Φ(x) = g_min + (g_max − g_min) · H(x) / N` (Eq. 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CumulativeHistogram {
    cumulative: [u64; GRAY_LEVELS],
    total: u64,
}

impl CumulativeHistogram {
    /// Builds the cumulative histogram from a marginal histogram.
    pub fn from_histogram(hist: &Histogram) -> Self {
        let mut cumulative = [0u64; GRAY_LEVELS];
        let mut running = 0u64;
        for (i, &c) in hist.counts().iter().enumerate() {
            running += c;
            cumulative[i] = running;
        }
        CumulativeHistogram {
            cumulative,
            total: hist.total(),
        }
    }

    /// Computes the cumulative histogram of an image.
    pub fn of(image: &GrayImage) -> Self {
        Self::from_histogram(&Histogram::of(image))
    }

    /// Number of pixels with value `≤ level`.
    pub fn up_to(&self, level: u8) -> u64 {
        self.cumulative[level as usize]
    }

    /// Total number of pixels `N`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Normalized CDF value `H(x)/N ∈ [0, 1]`; 0 for an empty histogram.
    pub fn normalized(&self, level: u8) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.cumulative[level as usize] as f64 / self.total as f64
        }
    }

    /// Borrow of the raw cumulative counts.
    pub fn values(&self) -> &[u64; GRAY_LEVELS] {
        &self.cumulative
    }

    /// The ideal *uniform* cumulative histogram `U(x)` supported on
    /// `[g_min, g_max]` with the same total `N` (footnote 3 of the paper):
    /// `U(x) = 0` below `g_min`, `N` above `g_max`, and linear in between.
    ///
    /// # Panics
    ///
    /// Panics if `g_min > g_max`.
    pub fn uniform_target(total: u64, g_min: u8, g_max: u8) -> Self {
        assert!(g_min <= g_max, "g_min must not exceed g_max");
        let mut cumulative = [0u64; GRAY_LEVELS];
        let lo = g_min as usize;
        let hi = g_max as usize;
        for (i, slot) in cumulative.iter_mut().enumerate() {
            *slot = if i < lo {
                0
            } else if i >= hi || hi == lo {
                total
            } else {
                let fraction = (i - lo) as f64 / (hi - lo) as f64;
                (fraction * total as f64).round() as u64
            };
        }
        CumulativeHistogram { cumulative, total }
    }

    /// Sum over all levels of the absolute difference with another cumulative
    /// histogram, normalized by the total count.
    ///
    /// This is the discrete version of the objective in Eq. 4 of the paper:
    /// `∫ |U(Φ(x)) − H(x)| dx`, used to check how close an equalized image
    /// gets to the uniform target.
    pub fn equalization_error(&self, other: &CumulativeHistogram) -> f64 {
        let n = self.total.max(other.total).max(1) as f64;
        (0..GRAY_LEVELS)
            .map(|i| (self.cumulative[i] as f64 - other.cumulative[i] as f64).abs() / n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_image() -> GrayImage {
        GrayImage::from_fn(256, 4, |x, _| x as u8)
    }

    #[test]
    fn histogram_of_ramp_is_flat() {
        let hist = Histogram::of(&ramp_image());
        assert!(hist.counts().iter().all(|&c| c == 4));
        assert_eq!(hist.total(), 1024);
        assert_eq!(hist.dynamic_range(), 256);
        assert_eq!(hist.occupied_levels(), 256);
    }

    #[test]
    fn histogram_of_constant_image() {
        let img = GrayImage::filled(10, 10, 42);
        let hist = Histogram::of(&img);
        assert_eq!(hist.count(42), 100);
        assert_eq!(hist.occupied_levels(), 1);
        assert_eq!(hist.dynamic_range(), 1);
        assert_eq!(hist.min_level(), Some(42));
        assert_eq!(hist.max_level(), Some(42));
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let hist = Histogram::new();
        assert_eq!(hist.total(), 0);
        assert_eq!(hist.min_level(), None);
        assert_eq!(hist.max_level(), None);
        assert_eq!(hist.dynamic_range(), 0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.variance(), 0.0);
        assert_eq!(hist.entropy(), 0.0);
        assert_eq!(hist.percentile(0.5), None);
    }

    #[test]
    fn record_and_merge() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(5);
        let mut b = Histogram::new();
        b.record(5);
        b.record(200);
        a.merge(&b);
        assert_eq!(a.count(5), 3);
        assert_eq!(a.count(200), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn frequency_sums_to_one() {
        let hist = Histogram::of(&ramp_image());
        let sum: f64 = (0..=255u8).map(|l| hist.frequency(l)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_and_variance_of_flat_histogram() {
        let hist = Histogram::of(&ramp_image());
        assert!((hist.mean() - 127.5).abs() < 1e-9);
        // Variance of discrete uniform over 0..=255 is (256^2 - 1) / 12.
        let expected = (256.0f64 * 256.0 - 1.0) / 12.0;
        assert!((hist.variance() - expected).abs() < 1e-6);
    }

    #[test]
    fn entropy_of_uniform_is_eight_bits() {
        let hist = Histogram::of(&ramp_image());
        assert!((hist.entropy() - 8.0).abs() < 1e-9);
        let constant = Histogram::of(&GrayImage::filled(8, 8, 7));
        assert_eq!(constant.entropy(), 0.0);
    }

    #[test]
    fn percentile_of_ramp() {
        let hist = Histogram::of(&ramp_image());
        assert_eq!(hist.percentile(0.0), Some(0));
        assert_eq!(hist.percentile(1.0), Some(255));
        let median = hist.percentile(0.5).unwrap();
        assert!((126..=129).contains(&median));
    }

    #[test]
    fn l1_distance_properties() {
        let a = Histogram::of(&GrayImage::filled(4, 4, 0));
        let b = Histogram::of(&GrayImage::filled(4, 4, 255));
        assert_eq!(a.l1_distance(&a), 0.0);
        assert!((a.l1_distance(&b) - 2.0).abs() < 1e-9);
        assert!((a.l1_distance(&b) - b.l1_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let cum = CumulativeHistogram::of(&ramp_image());
        let mut prev = 0;
        for &v in cum.values() {
            assert!(v >= prev);
            prev = v;
        }
        assert_eq!(cum.up_to(255), cum.total());
        assert_eq!(cum.total(), 1024);
        assert!((cum.normalized(255) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_target_shape() {
        let target = CumulativeHistogram::uniform_target(1000, 50, 150);
        assert_eq!(target.up_to(0), 0);
        assert_eq!(target.up_to(49), 0);
        assert_eq!(target.up_to(150), 1000);
        assert_eq!(target.up_to(255), 1000);
        // Midpoint of the band holds roughly half of the pixels.
        let mid = target.up_to(100);
        assert!((450..=550).contains(&mid));
    }

    #[test]
    fn uniform_target_degenerate_band() {
        let target = CumulativeHistogram::uniform_target(10, 100, 100);
        assert_eq!(target.up_to(99), 0);
        assert_eq!(target.up_to(100), 10);
    }

    #[test]
    #[should_panic(expected = "g_min must not exceed g_max")]
    fn uniform_target_rejects_inverted_band() {
        let _ = CumulativeHistogram::uniform_target(10, 200, 100);
    }

    #[test]
    fn equalization_error_zero_for_identical() {
        let cum = CumulativeHistogram::of(&ramp_image());
        assert_eq!(cum.equalization_error(&cum), 0.0);
    }

    #[test]
    fn ramp_is_close_to_uniform_target() {
        let cum = CumulativeHistogram::of(&ramp_image());
        let target = CumulativeHistogram::uniform_target(1024, 0, 255);
        // A full ramp is (nearly) perfectly equalized already.
        assert!(cum.equalization_error(&target) < 2.0);
    }

    #[test]
    fn from_counts_matches_of() {
        let img = GrayImage::from_fn(16, 16, |x, y| ((x * 16 + y) % 256) as u8);
        let hist = Histogram::of(&img);
        let rebuilt = Histogram::from_counts(*hist.counts());
        assert_eq!(hist, rebuilt);
    }
}
