//! Dependency-free PGM / PPM (Netpbm) codec.
//!
//! The HEBS tooling writes intermediate and transformed images as Netpbm
//! files so they can be inspected with standard viewers. Both the binary
//! (`P5`/`P6`) and ASCII (`P2`/`P3`) variants are supported for reading;
//! writing always uses the binary variants.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{ImageError, Result};
use crate::image::{GrayImage, RgbImage};
use crate::pixel::Rgb;

/// Writes a grayscale image as a binary PGM (`P5`) stream.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_pgm<W: Write>(image: &GrayImage, mut writer: W) -> Result<()> {
    write!(writer, "P5\n{} {}\n255\n", image.width(), image.height())?;
    writer.write_all(image.as_raw())?;
    Ok(())
}

/// Writes a grayscale image as a binary PGM file at `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be created or written.
pub fn save_pgm<P: AsRef<Path>>(image: &GrayImage, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_pgm(image, BufWriter::new(file))
}

/// Writes an RGB image as a binary PPM (`P6`) stream.
///
/// # Errors
///
/// Returns an error if the underlying writer fails.
pub fn write_ppm<W: Write>(image: &RgbImage, mut writer: W) -> Result<()> {
    write!(writer, "P6\n{} {}\n255\n", image.width(), image.height())?;
    let mut buffer = Vec::with_capacity(image.pixel_count() * 3);
    for pixel in image.pixels() {
        buffer.extend_from_slice(&[pixel.r, pixel.g, pixel.b]);
    }
    writer.write_all(&buffer)?;
    Ok(())
}

/// Writes an RGB image as a binary PPM file at `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be created or written.
pub fn save_ppm<P: AsRef<Path>>(image: &RgbImage, path: P) -> Result<()> {
    let file = File::create(path)?;
    write_ppm(image, BufWriter::new(file))
}

/// Reads a PGM (`P2` or `P5`) stream into a grayscale image.
///
/// Maximum values other than 255 are rescaled to the 8-bit range.
///
/// # Errors
///
/// Returns [`ImageError::Decode`] on malformed input and [`ImageError::Io`]
/// if the reader fails.
pub fn read_pgm<R: Read>(mut reader: R) -> Result<GrayImage> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let mut parser = NetpbmParser::new(&bytes);
    let magic = parser.magic()?;
    match magic {
        b"P2" | b"P5" => {}
        _ => {
            return Err(ImageError::Decode(format!(
                "expected PGM magic P2 or P5, found {:?}",
                String::from_utf8_lossy(magic)
            )))
        }
    }
    let width = parser.integer()? as u32;
    let height = parser.integer()? as u32;
    let max_val = parser.integer()?;
    if max_val == 0 || max_val > 65_535 {
        return Err(ImageError::Decode(format!("invalid maxval {max_val}")));
    }
    let count = width as usize * height as usize;
    let raw = if magic == b"P5" {
        parser.binary_samples(count, max_val)?
    } else {
        parser.ascii_samples(count, max_val)?
    };
    GrayImage::from_raw(width, height, raw)
}

/// Reads a PGM file from `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be opened or decoded.
pub fn load_pgm<P: AsRef<Path>>(path: P) -> Result<GrayImage> {
    let file = File::open(path)?;
    read_pgm(BufReader::new(file))
}

/// Reads a PPM (`P3` or `P6`) stream into an RGB image.
///
/// # Errors
///
/// Returns [`ImageError::Decode`] on malformed input and [`ImageError::Io`]
/// if the reader fails.
pub fn read_ppm<R: Read>(mut reader: R) -> Result<RgbImage> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    let mut parser = NetpbmParser::new(&bytes);
    let magic = parser.magic()?;
    match magic {
        b"P3" | b"P6" => {}
        _ => {
            return Err(ImageError::Decode(format!(
                "expected PPM magic P3 or P6, found {:?}",
                String::from_utf8_lossy(magic)
            )))
        }
    }
    let width = parser.integer()? as u32;
    let height = parser.integer()? as u32;
    let max_val = parser.integer()?;
    if max_val == 0 || max_val > 65_535 {
        return Err(ImageError::Decode(format!("invalid maxval {max_val}")));
    }
    let count = width as usize * height as usize * 3;
    let raw = if magic == b"P6" {
        parser.binary_samples(count, max_val)?
    } else {
        parser.ascii_samples(count, max_val)?
    };
    let mut image = RgbImage::new(width, height)?;
    for y in 0..height {
        for x in 0..width {
            let idx = (y as usize * width as usize + x as usize) * 3;
            image.set(x, y, Rgb::new(raw[idx], raw[idx + 1], raw[idx + 2]))?;
        }
    }
    Ok(image)
}

/// Reads a PPM file from `path`.
///
/// # Errors
///
/// Returns an error if the file cannot be opened or decoded.
pub fn load_ppm<P: AsRef<Path>>(path: P) -> Result<RgbImage> {
    let file = File::open(path)?;
    read_ppm(BufReader::new(file))
}

/// Minimal Netpbm header/body tokenizer shared by the PGM and PPM readers.
struct NetpbmParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> NetpbmParser<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        NetpbmParser { bytes, pos: 0 }
    }

    fn magic(&mut self) -> Result<&'a [u8]> {
        self.skip_whitespace_and_comments();
        if self.pos + 2 > self.bytes.len() {
            return Err(ImageError::Decode("truncated magic number".to_string()));
        }
        let magic = &self.bytes[self.pos..self.pos + 2];
        self.pos += 2;
        Ok(magic)
    }

    fn integer(&mut self) -> Result<u64> {
        self.skip_whitespace_and_comments();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(ImageError::Decode(
                "expected an integer in the header".to_string(),
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ImageError::Decode("non-utf8 header".to_string()))?;
        text.parse::<u64>()
            .map_err(|_| ImageError::Decode(format!("integer out of range: {text}")))
    }

    fn binary_samples(&mut self, count: usize, max_val: u64) -> Result<Vec<u8>> {
        // Exactly one whitespace byte separates the header from the raster.
        if self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        let bytes_per_sample = if max_val > 255 { 2 } else { 1 };
        let needed = count * bytes_per_sample;
        if self.bytes.len() < self.pos + needed {
            return Err(ImageError::Decode(format!(
                "raster truncated: expected {needed} bytes, found {}",
                self.bytes.len() - self.pos
            )));
        }
        let raster = &self.bytes[self.pos..self.pos + needed];
        self.pos += needed;
        let samples: Vec<u8> = if bytes_per_sample == 1 {
            if max_val == 255 {
                raster.to_vec()
            } else {
                raster
                    .iter()
                    .map(|&b| rescale(u64::from(b), max_val))
                    .collect()
            }
        } else {
            raster
                .chunks_exact(2)
                .map(|pair| rescale(u64::from(pair[0]) << 8 | u64::from(pair[1]), max_val))
                .collect()
        };
        Ok(samples)
    }

    fn ascii_samples(&mut self, count: usize, max_val: u64) -> Result<Vec<u8>> {
        let mut samples = Vec::with_capacity(count);
        for _ in 0..count {
            let value = self.integer()?;
            if value > max_val {
                return Err(ImageError::Decode(format!(
                    "sample {value} exceeds maxval {max_val}"
                )));
            }
            samples.push(rescale(value, max_val));
        }
        Ok(samples)
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#' {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }
}

/// Rescales a sample from a `[0, max_val]` range to `[0, 255]`.
fn rescale(value: u64, max_val: u64) -> u8 {
    if max_val == 255 {
        value.min(255) as u8
    } else {
        ((value as f64 / max_val as f64) * 255.0)
            .round()
            .clamp(0.0, 255.0) as u8
    }
}

/// Helper for pixel normalization used in doc examples and harness output.
///
/// Equivalent to `level as f64 / 255.0`.
pub fn normalize_level(level: u8) -> f64 {
    f64::from(level) / 255.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_round_trip() {
        let img = GrayImage::from_fn(13, 7, |x, y| (x * 19 + y * 3) as u8);
        let mut buffer = Vec::new();
        write_pgm(&img, &mut buffer).unwrap();
        let decoded = read_pgm(&buffer[..]).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn ppm_round_trip() {
        let img = RgbImage::from_fn(5, 4, |x, y| Rgb::new(x as u8, y as u8, (x * y) as u8));
        let mut buffer = Vec::new();
        write_ppm(&img, &mut buffer).unwrap();
        let decoded = read_ppm(&buffer[..]).unwrap();
        assert_eq!(decoded, img);
    }

    #[test]
    fn ascii_pgm_is_accepted() {
        let text = b"P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n";
        let img = read_pgm(&text[..]).unwrap();
        assert_eq!(img.width(), 3);
        assert_eq!(img.height(), 2);
        assert_eq!(img.get(1, 0), Some(128));
        assert_eq!(img.get(2, 1), Some(30));
    }

    #[test]
    fn ascii_ppm_is_accepted() {
        let text = b"P3\n2 1\n255\n255 0 0  0 0 255\n";
        let img = read_ppm(&text[..]).unwrap();
        assert_eq!(img.get(0, 0), Some(Rgb::new(255, 0, 0)));
        assert_eq!(img.get(1, 0), Some(Rgb::new(0, 0, 255)));
    }

    #[test]
    fn maxval_rescaling() {
        let text = b"P2\n2 1\n100\n0 100\n";
        let img = read_pgm(&text[..]).unwrap();
        assert_eq!(img.get(0, 0), Some(0));
        assert_eq!(img.get(1, 0), Some(255));
    }

    #[test]
    fn sixteen_bit_binary_pgm() {
        // 2x1 image with maxval 65535, samples 0 and 65535 (big endian).
        let mut data = b"P5\n2 1\n65535\n".to_vec();
        data.extend_from_slice(&[0x00, 0x00, 0xFF, 0xFF]);
        let img = read_pgm(&data[..]).unwrap();
        assert_eq!(img.get(0, 0), Some(0));
        assert_eq!(img.get(1, 0), Some(255));
    }

    #[test]
    fn rejects_wrong_magic() {
        assert!(read_pgm(&b"P6\n1 1\n255\n\x00\x00\x00"[..]).is_err());
        assert!(read_ppm(&b"P5\n1 1\n255\n\x00"[..]).is_err());
    }

    #[test]
    fn rejects_truncated_raster() {
        let data = b"P5\n4 4\n255\n\x00\x01";
        assert!(read_pgm(&data[..]).is_err());
    }

    #[test]
    fn rejects_zero_maxval() {
        assert!(read_pgm(&b"P2\n1 1\n0\n0\n"[..]).is_err());
    }

    #[test]
    fn rejects_ascii_sample_above_maxval() {
        assert!(read_pgm(&b"P2\n1 1\n10\n11\n"[..]).is_err());
    }

    #[test]
    fn comments_anywhere_in_header() {
        let text = b"P2 # magic\n# width next\n2\n# height\n1\n# maxval\n255\n1 2\n";
        let img = read_pgm(&text[..]).unwrap();
        assert_eq!(img.width(), 2);
        assert_eq!(img.get(1, 0), Some(2));
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("hebs_imaging_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let gray_path = dir.join("test.pgm");
        let rgb_path = dir.join("test.ppm");

        let gray = GrayImage::from_fn(9, 9, |x, y| (x * y) as u8);
        save_pgm(&gray, &gray_path).unwrap();
        assert_eq!(load_pgm(&gray_path).unwrap(), gray);

        let rgb = RgbImage::from_fn(3, 3, |x, y| Rgb::new(x as u8, y as u8, 9));
        save_ppm(&rgb, &rgb_path).unwrap();
        assert_eq!(load_ppm(&rgb_path).unwrap(), rgb);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn normalize_level_bounds() {
        assert_eq!(normalize_level(0), 0.0);
        assert_eq!(normalize_level(255), 1.0);
    }
}
