//! Synthetic video (frame-sequence) generation.
//!
//! Backlight scaling in practice runs on video: the policy must be cheap
//! enough to evaluate per frame and the backlight level should not flicker
//! between frames. This module generates deterministic frame sequences with
//! the temporal behaviours that stress those requirements: static scenes
//! with sensor noise, slow pans, fades to black/white and hard scene cuts.

use crate::image::GrayImage;
use crate::rng::StdRng;
use crate::synthetic;

/// The kind of temporal behaviour a generated scene exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SceneKind {
    /// A static scene with small per-frame sensor noise; the backlight level
    /// should stay constant.
    Static,
    /// A slow horizontal pan across a wide gradient; the histogram drifts
    /// slowly frame to frame.
    Pan,
    /// A fade from the scene to black over the sequence; the optimal
    /// backlight level decreases steadily.
    FadeToBlack,
    /// A hard cut from a dark scene to a bright scene half way through.
    SceneCut,
}

impl SceneKind {
    /// All supported scene kinds.
    pub const ALL: [SceneKind; 4] = [
        SceneKind::Static,
        SceneKind::Pan,
        SceneKind::FadeToBlack,
        SceneKind::SceneCut,
    ];
}

impl std::fmt::Display for SceneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SceneKind::Static => "static",
            SceneKind::Pan => "pan",
            SceneKind::FadeToBlack => "fade-to-black",
            SceneKind::SceneCut => "scene-cut",
        };
        f.write_str(name)
    }
}

/// A deterministic generator of video frames.
///
/// ```
/// use hebs_imaging::{FrameSequence, SceneKind};
///
/// let seq = FrameSequence::new(SceneKind::Pan, 64, 64, 10, 7);
/// let frames: Vec<_> = seq.frames().collect();
/// assert_eq!(frames.len(), 10);
/// assert_eq!(frames[0].width(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct FrameSequence {
    kind: SceneKind,
    width: u32,
    height: u32,
    frame_count: usize,
    seed: u64,
}

impl FrameSequence {
    /// Creates a frame sequence description.
    ///
    /// # Panics
    ///
    /// Panics if either dimension or the frame count is 0.
    pub fn new(kind: SceneKind, width: u32, height: u32, frame_count: usize, seed: u64) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be nonzero");
        assert!(frame_count > 0, "frame count must be nonzero");
        FrameSequence {
            kind,
            width,
            height,
            frame_count,
            seed,
        }
    }

    /// Scene kind of this sequence.
    pub fn kind(&self) -> SceneKind {
        self.kind
    }

    /// Number of frames the sequence will produce.
    pub fn frame_count(&self) -> usize {
        self.frame_count
    }

    /// Frame width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Frame height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Generates the `index`-th frame (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= frame_count`.
    pub fn frame(&self, index: usize) -> GrayImage {
        assert!(
            index < self.frame_count,
            "frame index {index} out of range (sequence has {} frames)",
            self.frame_count
        );
        let progress = if self.frame_count <= 1 {
            0.0
        } else {
            index as f64 / (self.frame_count - 1) as f64
        };
        match self.kind {
            SceneKind::Static => self.static_frame(index),
            SceneKind::Pan => self.pan_frame(progress),
            SceneKind::FadeToBlack => self.fade_frame(progress),
            SceneKind::SceneCut => self.cut_frame(progress),
        }
    }

    /// Iterator over all frames in order.
    pub fn frames(&self) -> impl Iterator<Item = GrayImage> + '_ {
        (0..self.frame_count).map(move |i| self.frame(i))
    }

    fn base_scene(&self) -> GrayImage {
        synthetic::still_life(self.width, self.height, self.seed)
    }

    fn static_frame(&self, index: usize) -> GrayImage {
        let mut frame = self.base_scene();
        // Small zero-mean sensor noise, different per frame but deterministic.
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(index as u64 * 7919));
        frame.map_in_place(|v| {
            let noise: i16 = rng.random_range(-3..=3);
            (i16::from(v) + noise).clamp(0, 255) as u8
        });
        frame
    }

    fn pan_frame(&self, progress: f64) -> GrayImage {
        // Pan a viewport across a wide gradient-plus-texture background.
        let wide_width = self.width * 3;
        let background = synthetic::noise_texture(wide_width, self.height, 16, 20, 235, self.seed);
        let max_offset = wide_width - self.width;
        let offset = (progress * f64::from(max_offset)).round() as u32;
        GrayImage::from_fn(self.width, self.height, |x, y| {
            background
                .get(x + offset, y)
                .expect("viewport is in bounds")
        })
    }

    fn fade_frame(&self, progress: f64) -> GrayImage {
        let scale = 1.0 - progress;
        self.base_scene()
            .map(|v| (f64::from(v) * scale).round().clamp(0.0, 255.0) as u8)
    }

    fn cut_frame(&self, progress: f64) -> GrayImage {
        if progress < 0.5 {
            synthetic::low_key(self.width, self.height, self.seed)
        } else {
            synthetic::high_key(self.width, self.height, self.seed.wrapping_add(1))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_produces_requested_number_of_frames() {
        let seq = FrameSequence::new(SceneKind::Static, 32, 32, 5, 1);
        assert_eq!(seq.frames().count(), 5);
        assert_eq!(seq.frame_count(), 5);
        assert_eq!(seq.kind(), SceneKind::Static);
        assert_eq!(seq.width(), 32);
        assert_eq!(seq.height(), 32);
    }

    #[test]
    fn frames_are_deterministic() {
        let a = FrameSequence::new(SceneKind::Pan, 48, 32, 6, 3);
        let b = FrameSequence::new(SceneKind::Pan, 48, 32, 6, 3);
        for i in 0..6 {
            assert_eq!(a.frame(i), b.frame(i));
        }
    }

    #[test]
    fn static_scene_changes_only_slightly() {
        let seq = FrameSequence::new(SceneKind::Static, 48, 48, 3, 5);
        let f0 = seq.frame(0);
        let f1 = seq.frame(1);
        let mean_abs_diff: f64 = f0
            .pixels()
            .zip(f1.pixels())
            .map(|(a, b)| (f64::from(a) - f64::from(b)).abs())
            .sum::<f64>()
            / f0.pixel_count() as f64;
        assert!(mean_abs_diff < 5.0);
    }

    #[test]
    fn fade_to_black_reduces_mean() {
        let seq = FrameSequence::new(SceneKind::FadeToBlack, 48, 48, 8, 2);
        let first_mean = seq.frame(0).mean();
        let last_mean = seq.frame(7).mean();
        assert!(last_mean < first_mean * 0.2);
        assert_eq!(seq.frame(7).max_level(), 0);
    }

    #[test]
    fn scene_cut_switches_brightness() {
        let seq = FrameSequence::new(SceneKind::SceneCut, 48, 48, 10, 4);
        let dark = seq.frame(0).mean();
        let bright = seq.frame(9).mean();
        assert!(bright > dark + 40.0);
    }

    #[test]
    fn pan_progresses_across_background() {
        let seq = FrameSequence::new(SceneKind::Pan, 32, 32, 4, 8);
        assert_ne!(seq.frame(0), seq.frame(3));
    }

    #[test]
    #[should_panic(expected = "frame index")]
    fn out_of_range_frame_panics() {
        let seq = FrameSequence::new(SceneKind::Static, 16, 16, 2, 1);
        let _ = seq.frame(2);
    }

    #[test]
    #[should_panic(expected = "frame count must be nonzero")]
    fn zero_frames_rejected() {
        let _ = FrameSequence::new(SceneKind::Static, 16, 16, 0, 1);
    }

    #[test]
    fn scene_kind_display_and_all() {
        assert_eq!(SceneKind::ALL.len(), 4);
        assert_eq!(SceneKind::FadeToBlack.to_string(), "fade-to-black");
    }
}
