//! A small, dependency-free deterministic pseudo-random number generator.
//!
//! The synthetic image and video generators only need a reproducible stream
//! of uniform samples — cryptographic quality is irrelevant, but determinism
//! for a given seed is essential because every benchmark result must be
//! stable run to run. This module provides a [SplitMix64]-based generator
//! with the tiny slice of the `rand` API the workspace actually uses, so the
//! offline build carries no external dependency.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//!
//! ```
//! use hebs_imaging::rng::StdRng;
//!
//! let mut a = StdRng::seed_from_u64(7);
//! let mut b = StdRng::seed_from_u64(7);
//! assert_eq!(a.random_range(0..100u32), b.random_range(0..100u32));
//! ```

use std::ops::{Range, RangeInclusive};

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// The name mirrors `rand::rngs::StdRng` so generator code reads the same as
/// it would with the external crate; the algorithm and stream differ.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (half-open or inclusive, see
    /// [`SampleRange`]).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

/// A range that can produce uniform samples of `T` from a [`StdRng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Uniform integer in `[0, bound)`. The modulo bias is below `2^-32` for
/// every bound the generators use, far beneath anything the image statistics
/// can resolve.
fn uniform_below(rng: &mut StdRng, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample an empty range");
    rng.next_u64() % bound
}

macro_rules! impl_int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as $wide - self.start as $wide) as u64;
                (self.start as $wide + uniform_below(rng, span) as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as $wide - start as $wide) as u64 + 1;
                (start as $wide + uniform_below(rng, span) as $wide) as $t
            }
        }
    )*};
}

impl_int_sample_range!(
    u8 => i64,
    u16 => i64,
    u32 => i64,
    i16 => i64,
    i32 => i64,
    usize => i128,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..8).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut other = StdRng::seed_from_u64(43);
        assert_ne!(a[0], other.next_u64());
    }

    #[test]
    fn float_samples_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn integer_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v: u32 = rng.random_range(0..8u32);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..500 {
            match rng.random_range(-2..=2i16) {
                -2 => lo = true,
                2 => hi = true,
                v => assert!((-2..=2).contains(&v)),
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn random_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(4);
        let trues = (0..2000).filter(|_| rng.random_bool(0.3)).count();
        assert!((400..=800).contains(&trues), "got {trues}");
        assert!(!StdRng::seed_from_u64(5).random_bool(0.0));
        assert!(StdRng::seed_from_u64(5).random_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(6).random_range(5..5u32);
    }
}
