//! Image containers, histograms, I/O and synthetic benchmark generation for
//! the HEBS (Histogram Equalization for Backlight Scaling) reproduction.
//!
//! The HEBS paper (Iranli, Fatemi, Pedram — DATE 2005) operates on 8-bit
//! grayscale images: it inspects the image *histogram*, derives a pixel
//! transformation function from it, and evaluates the distortion between the
//! original and the transformed image. This crate provides everything those
//! steps need from the imaging side:
//!
//! * [`GrayImage`] / [`RgbImage`] — simple owned raster containers.
//! * [`Histogram`] / [`CumulativeHistogram`] — marginal and cumulative pixel
//!   value distributions, the central data structure of the algorithm.
//! * [`FrameIngest`] / [`frame_hash128`] — the fused single-pass serve-path
//!   ingest: histogram, 32-bin signature and seeded 128-bit content hash from
//!   one traversal of the pixel buffer, optionally fanned out over scoped
//!   threads; [`traversals`] counts full-frame walks so tests can pin the
//!   serve path's traversal budget.
//! * [`io`] — a dependency-free PGM/PPM codec so images can be inspected with
//!   ordinary tools.
//! * [`synthetic`] and [`suite`] — procedural generators that stand in for
//!   the USC SIPI benchmark photographs used by the paper (which cannot be
//!   redistributed), producing images with controlled histogram shapes.
//! * [`video`] — frame-sequence generation for the video-playback use case
//!   the paper's introduction motivates.
//!
//! # Example
//!
//! ```
//! use hebs_imaging::{GrayImage, Histogram};
//!
//! let image = GrayImage::from_fn(64, 64, |x, y| ((x + y) % 256) as u8);
//! let hist = Histogram::of(&image);
//! assert_eq!(hist.total(), 64 * 64);
//! assert!(hist.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod histogram;
mod image;
mod ingest;
pub mod io;
mod ops;
mod pixel;
pub mod rng;
mod signature;
mod stats;
pub mod suite;
pub mod synthetic;
pub mod traversals;
pub mod video;

pub use error::{ImageError, Result};
pub use histogram::{CumulativeHistogram, Histogram, GRAY_LEVELS};
pub use image::{GrayImage, RgbImage};
pub use ingest::{available_ingest_workers, frame_hash128, FrameIngest, PARALLEL_INGEST_THRESHOLD};
pub use ops::{apply_lut, apply_lut_into, crop, downsample, flip_horizontal, flip_vertical};
pub use pixel::{Rgb, MAX_LEVEL};
pub use signature::{HistogramSignature, DEFAULT_SIGNATURE_RESOLUTION, SIGNATURE_BINS};
pub use stats::{covariance, ImageStats};
pub use suite::{SipiImage, SipiSuite};
pub use video::{FrameSequence, SceneKind};
