//! Owned raster image containers.

use crate::error::{ImageError, Result};
use crate::pixel::{normalize, Rgb, MAX_LEVEL};

/// An owned 8-bit grayscale image stored in row-major order.
///
/// This is the primary data type of the HEBS pipeline: the pixel values are
/// the grayscale levels `X ∈ [0, 255]` whose histogram drives the backlight
/// scaling policy.
///
/// ```
/// use hebs_imaging::GrayImage;
///
/// let ramp = GrayImage::from_fn(256, 1, |x, _| x as u8);
/// assert_eq!(ramp.get(0, 0), Some(0));
/// assert_eq!(ramp.get(255, 0), Some(255));
/// assert_eq!(ramp.dynamic_range(), 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    width: u32,
    height: u32,
    data: Vec<u8>,
}

impl GrayImage {
    /// Creates a black (all-zero) image of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] when either dimension is 0.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions {
                width,
                height,
                buffer_len: 0,
            });
        }
        Ok(GrayImage {
            width,
            height,
            data: vec![0; width as usize * height as usize],
        })
    }

    /// Creates an image filled with a constant level.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn filled(width: u32, height: u32, level: u8) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        GrayImage {
            width,
            height,
            data: vec![level; width as usize * height as usize],
        }
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn from_fn<F>(width: u32, height: u32, mut f: F) -> Self
    where
        F: FnMut(u32, u32) -> u8,
    {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major pixel buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] when the buffer length does
    /// not equal `width * height` or either dimension is 0.
    pub fn from_raw(width: u32, height: u32, data: Vec<u8>) -> Result<Self> {
        if width == 0 || height == 0 || data.len() != width as usize * height as usize {
            return Err(ImageError::InvalidDimensions {
                width,
                height,
                buffer_len: data.len(),
            });
        }
        Ok(GrayImage {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels in the image.
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the raw row-major pixel buffer.
    pub fn as_raw(&self) -> &[u8] {
        &self.data
    }

    /// Mutable borrow of the raw row-major pixel buffer.
    pub fn as_raw_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reshapes the image in place to the given dimensions, reusing the
    /// existing allocation whenever its capacity suffices. The pixel
    /// contents after a reshape are unspecified; callers are expected to
    /// overwrite every pixel. This is the primitive behind the pipeline's
    /// reusable frame-buffer scratch.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn reshape(&mut self, width: u32, height: u32) {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        self.width = width;
        self.height = height;
        self.data.resize(width as usize * height as usize, 0);
    }

    /// Consumes the image and returns the raw row-major pixel buffer.
    pub fn into_raw(self) -> Vec<u8> {
        self.data
    }

    /// Returns the pixel at `(x, y)`, or `None` if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Option<u8> {
        if x < self.width && y < self.height {
            Some(self.data[self.index(x, y)])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfBounds`] when `(x, y)` is outside of the
    /// image.
    pub fn set(&mut self, x: u32, y: u32, level: u8) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImageError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        let idx = self.index(x, y);
        self.data[idx] = level;
        Ok(())
    }

    /// Iterator over all pixel values in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = u8> + '_ {
        self.data.iter().copied()
    }

    /// Iterator over `(x, y, value)` triples in row-major order.
    pub fn enumerate_pixels(&self) -> impl Iterator<Item = (u32, u32, u8)> + '_ {
        let width = self.width;
        self.data.iter().enumerate().map(move |(i, &v)| {
            let x = (i as u32) % width;
            let y = (i as u32) / width;
            (x, y, v)
        })
    }

    /// Returns a new image with `f` applied to every pixel value.
    pub fn map<F>(&self, mut f: F) -> GrayImage
    where
        F: FnMut(u8) -> u8,
    {
        GrayImage {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every pixel value in place.
    pub fn map_in_place<F>(&mut self, mut f: F)
    where
        F: FnMut(u8) -> u8,
    {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Minimum pixel level present in the image.
    pub fn min_level(&self) -> u8 {
        self.data.iter().copied().min().unwrap_or(0)
    }

    /// Maximum pixel level present in the image.
    pub fn max_level(&self) -> u8 {
        self.data.iter().copied().max().unwrap_or(0)
    }

    /// Dynamic range of the image: number of levels spanned,
    /// `max − min + 1`.
    ///
    /// The paper's transformation targets a *reduced* dynamic range `R`; this
    /// accessor measures the range actually occupied by an image.
    pub fn dynamic_range(&self) -> u32 {
        u32::from(self.max_level()) - u32::from(self.min_level()) + 1
    }

    /// Mean pixel value (as a float level in `[0, 255]`).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&v| f64::from(v)).sum::<f64>() / self.data.len() as f64
    }

    /// Mean of the *normalized* pixel values `x = X/255`.
    pub fn normalized_mean(&self) -> f64 {
        self.mean() / f64::from(MAX_LEVEL)
    }

    /// Iterator over normalized pixel values `x = X/255`.
    pub fn normalized_pixels(&self) -> impl Iterator<Item = f64> + '_ {
        self.data.iter().map(|&v| normalize(v))
    }

    fn index(&self, x: u32, y: u32) -> usize {
        y as usize * self.width as usize + x as usize
    }
}

/// An owned 8-bit RGB image stored in row-major order.
///
/// HEBS operates on luminance; color images are converted with
/// [`RgbImage::to_luminance`] before being fed to the pipeline, and the
/// resulting pixel transformation is applied per channel.
///
/// ```
/// use hebs_imaging::{Rgb, RgbImage};
///
/// let img = RgbImage::from_fn(4, 4, |x, y| Rgb::new((x * 60) as u8, (y * 60) as u8, 0));
/// let luma = img.to_luminance();
/// assert_eq!(luma.width(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RgbImage {
    width: u32,
    height: u32,
    data: Vec<Rgb>,
}

impl RgbImage {
    /// Creates a black image of the given size.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::InvalidDimensions`] when either dimension is 0.
    pub fn new(width: u32, height: u32) -> Result<Self> {
        if width == 0 || height == 0 {
            return Err(ImageError::InvalidDimensions {
                width,
                height,
                buffer_len: 0,
            });
        }
        Ok(RgbImage {
            width,
            height,
            data: vec![Rgb::default(); width as usize * height as usize],
        })
    }

    /// Builds an image by evaluating `f(x, y)` for every pixel.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is 0.
    pub fn from_fn<F>(width: u32, height: u32, mut f: F) -> Self
    where
        F: FnMut(u32, u32) -> Rgb,
    {
        assert!(width > 0 && height > 0, "image dimensions must be nonzero");
        let mut data = Vec::with_capacity(width as usize * height as usize);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        RgbImage {
            width,
            height,
            data,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels in the image.
    pub fn pixel_count(&self) -> usize {
        self.data.len()
    }

    /// Returns the pixel at `(x, y)`, or `None` if out of bounds.
    pub fn get(&self, x: u32, y: u32) -> Option<Rgb> {
        if x < self.width && y < self.height {
            Some(self.data[y as usize * self.width as usize + x as usize])
        } else {
            None
        }
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Errors
    ///
    /// Returns [`ImageError::OutOfBounds`] when `(x, y)` is outside of the
    /// image.
    pub fn set(&mut self, x: u32, y: u32, pixel: Rgb) -> Result<()> {
        if x >= self.width || y >= self.height {
            return Err(ImageError::OutOfBounds {
                x,
                y,
                width: self.width,
                height: self.height,
            });
        }
        let idx = y as usize * self.width as usize + x as usize;
        self.data[idx] = pixel;
        Ok(())
    }

    /// Iterator over all pixels in row-major order.
    pub fn pixels(&self) -> impl Iterator<Item = Rgb> + '_ {
        self.data.iter().copied()
    }

    /// Converts the image to grayscale using Rec. 601 luma weights.
    pub fn to_luminance(&self) -> GrayImage {
        GrayImage {
            width: self.width,
            height: self.height,
            data: self.data.iter().map(|p| p.luminance()).collect(),
        }
    }

    /// Returns a new image with `f` applied to every channel of every pixel.
    ///
    /// This is how a grayscale pixel-transformation function (a lookup table
    /// on levels) is applied to a colour image: each of R, G and B is pushed
    /// through the same curve, which preserves hue to first order while
    /// raising transmittance.
    pub fn map_channels<F>(&self, mut f: F) -> RgbImage
    where
        F: FnMut(u8) -> u8,
    {
        RgbImage {
            width: self.width,
            height: self.height,
            data: self
                .data
                .iter()
                .map(|p| Rgb::new(f(p.r), f(p.g), f(p.b)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dimensions() {
        assert!(GrayImage::new(0, 10).is_err());
        assert!(GrayImage::new(10, 0).is_err());
        assert!(RgbImage::new(0, 1).is_err());
    }

    #[test]
    fn from_raw_checks_length() {
        assert!(GrayImage::from_raw(2, 2, vec![0; 4]).is_ok());
        assert!(GrayImage::from_raw(2, 2, vec![0; 5]).is_err());
        assert!(GrayImage::from_raw(2, 2, vec![0; 3]).is_err());
    }

    #[test]
    fn get_set_round_trip() {
        let mut img = GrayImage::new(4, 3).unwrap();
        img.set(2, 1, 200).unwrap();
        assert_eq!(img.get(2, 1), Some(200));
        assert_eq!(img.get(4, 1), None);
        assert!(img.set(0, 3, 1).is_err());
    }

    #[test]
    fn from_fn_is_row_major() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 3 + x) as u8);
        assert_eq!(img.as_raw(), &[0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn enumerate_pixels_coordinates() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        let collected: Vec<_> = img.enumerate_pixels().collect();
        assert_eq!(collected[0], (0, 0, 0));
        assert_eq!(collected[4], (1, 1, 11));
        assert_eq!(collected.len(), 6);
    }

    #[test]
    fn map_preserves_dimensions() {
        let img = GrayImage::filled(5, 7, 10);
        let doubled = img.map(|v| v * 2);
        assert_eq!(doubled.width(), 5);
        assert_eq!(doubled.height(), 7);
        assert!(doubled.pixels().all(|v| v == 20));
    }

    #[test]
    fn map_in_place_matches_map() {
        let img = GrayImage::from_fn(8, 8, |x, y| (x * y) as u8);
        let mapped = img.map(|v| v.saturating_add(5));
        let mut in_place = img.clone();
        in_place.map_in_place(|v| v.saturating_add(5));
        assert_eq!(mapped, in_place);
    }

    #[test]
    fn reshape_reuses_capacity_and_sets_dimensions() {
        let mut img = GrayImage::filled(8, 8, 3);
        let capacity_before = img.data.capacity();
        img.reshape(4, 4);
        assert_eq!((img.width(), img.height()), (4, 4));
        assert_eq!(img.pixel_count(), 16);
        assert_eq!(img.data.capacity(), capacity_before, "shrink keeps buffer");
        img.as_raw_mut().fill(9);
        assert!(img.pixels().all(|v| v == 9));
        img.reshape(16, 2);
        assert_eq!(img.pixel_count(), 32);
    }

    #[test]
    #[should_panic(expected = "dimensions must be nonzero")]
    fn reshape_rejects_zero_dimensions() {
        GrayImage::filled(2, 2, 0).reshape(0, 2);
    }

    #[test]
    fn dynamic_range_of_constant_image_is_one() {
        let img = GrayImage::filled(4, 4, 128);
        assert_eq!(img.dynamic_range(), 1);
        assert_eq!(img.min_level(), 128);
        assert_eq!(img.max_level(), 128);
    }

    #[test]
    fn dynamic_range_of_full_ramp() {
        let img = GrayImage::from_fn(256, 1, |x, _| x as u8);
        assert_eq!(img.dynamic_range(), 256);
    }

    #[test]
    fn mean_of_ramp() {
        let img = GrayImage::from_fn(256, 1, |x, _| x as u8);
        assert!((img.mean() - 127.5).abs() < 1e-9);
        assert!((img.normalized_mean() - 0.5).abs() < 1e-3);
    }

    #[test]
    fn rgb_to_luminance_of_gray_image_is_identity() {
        let img = RgbImage::from_fn(4, 4, |x, y| Rgb::gray((x * 16 + y) as u8));
        let luma = img.to_luminance();
        for (x, y, v) in luma.enumerate_pixels() {
            assert_eq!(v, (x * 16 + y) as u8);
        }
    }

    #[test]
    fn rgb_map_channels_applies_curve() {
        let img = RgbImage::from_fn(2, 2, |_, _| Rgb::new(10, 20, 30));
        let brighter = img.map_channels(|v| v + 100);
        assert_eq!(brighter.get(0, 0), Some(Rgb::new(110, 120, 130)));
    }

    #[test]
    fn rgb_get_set() {
        let mut img = RgbImage::new(3, 3).unwrap();
        img.set(1, 2, Rgb::new(1, 2, 3)).unwrap();
        assert_eq!(img.get(1, 2), Some(Rgb::new(1, 2, 3)));
        assert_eq!(img.get(3, 0), None);
        assert!(img.set(9, 9, Rgb::default()).is_err());
    }

    #[test]
    fn normalized_pixels_in_unit_interval() {
        let img = GrayImage::from_fn(16, 16, |x, y| (x * 16 + y) as u8);
        assert!(img.normalized_pixels().all(|x| (0.0..=1.0).contains(&x)));
    }
}
