//! Versioned characteristic snapshots: the warm-start wire format.
//!
//! A restarted engine re-learns its distortion characteristics from live
//! traffic — a blue-green deploy eats the full cold-start savings cliff
//! before the per-class bank recovers open-loop serving. This module gives
//! the learned state a durable form: a **snapshot** serializes a tenant's
//! installed characteristic bank (centroids, per-class curve samples,
//! [`CurveFit`] mode, generations) plus an optional spill of the hottest
//! transformation-cache entries, so a canary node can characterize once
//! and a whole fleet can restore and serve warm from its first frame.
//!
//! The format is deliberately boring: std-only, little-endian, versioned
//! and self-checking —
//!
//! * an 8-byte magic (`HEBSSNAP`), a format version (how bytes are laid
//!   out) and a schema version (what the records mean);
//! * per-section length framing (`BANK`, `CACHE`), so readers can skip or
//!   bound-check sections without trusting their contents;
//! * a trailing seeded 128-bit content checksum using the same
//!   SplitMix64-finalizer mixing as `hebs_imaging::frame_hash128`, so a
//!   truncated or bit-flipped file is refused before any record is
//!   interpreted.
//!
//! Decoding never panics: every failure is a typed [`SnapshotError`], and
//! the engine-level restore ([`Engine::restore_from_reader`]) counts the
//! rejection ([`EngineStats::snapshot_rejected`]) and keeps serving cold.
//! Restored state re-enters through the existing validated paths
//! (`install_bank`, normal cache inserts), so a snapshot can never place
//! the engine somewhere live traffic couldn't.
//!
//! [`Engine::restore_from_reader`]: crate::Engine::restore_from_reader
//! [`EngineStats::snapshot_rejected`]: crate::EngineStats::snapshot_rejected
//! [`CurveFit`]: hebs_core::CurveFit

use std::fmt;

use hebs_core::CurveFit;
use hebs_imaging::SIGNATURE_BINS;

/// Magic bytes opening every engine snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"HEBSSNAP";

/// Magic bytes opening a registry-level (multi-tenant) snapshot container.
pub const REGISTRY_MAGIC: [u8; 8] = *b"HEBSREGS";

/// Version of the byte layout. Bump when framing/encoding changes shape.
pub const SNAPSHOT_FORMAT_VERSION: u16 = 1;

/// Version of the record semantics (what the bank/cache sections mean).
/// Bump when the engine's characteristic or cache schema changes
/// incompatibly; old snapshots are then refused with
/// [`SnapshotError::SchemaMismatch`] and the engine cold-starts.
pub const SNAPSHOT_SCHEMA_VERSION: u16 = 1;

/// Section tag: the serialized characteristic bank.
const SECTION_BANK: u8 = 1;
/// Section tag: the spilled hot-cache entries.
const SECTION_CACHE: u8 = 2;

/// Hard ceilings a decoder enforces before allocating, so a corrupt length
/// field cannot balloon memory. Generous relative to any real deployment.
const MAX_CLASSES: usize = 4096;
const MAX_SAMPLES_PER_CLASS: usize = 1 << 20;
const MAX_SPILL_ENTRIES: usize = 1 << 16;
const MAX_STRING_BYTES: usize = 1 << 16;
const MAX_CURVE_POINTS: usize = 1 << 12;

/// Why a snapshot could not be saved or restored. Every variant degrades
/// the restoring engine to a cold start; none corrupts installed state.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The data ended before a complete record was read.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The leading magic bytes did not identify a snapshot.
    BadMagic,
    /// The byte-layout version is newer than this build understands.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build reads.
        supported: u16,
    },
    /// The record schema does not match this build's engine schema.
    SchemaMismatch {
        /// Schema version found in the header.
        found: u16,
        /// Schema version this build writes and reads.
        expected: u16,
    },
    /// The seeded 128-bit content checksum did not verify (truncation is
    /// reported as [`SnapshotError::Truncated`] instead when the framing
    /// already shows bytes missing).
    ChecksumMismatch,
    /// A record was structurally invalid (bad tag, out-of-range field,
    /// rejected by a validated constructor on restore).
    Malformed {
        /// What was being decoded or rebuilt.
        context: &'static str,
        /// Why it was refused.
        reason: String,
    },
    /// An I/O error from the caller's reader or writer.
    Io(std::io::Error),
    /// The engine has no installed characteristic bank to snapshot (it is
    /// closed-loop, or open-loop but not yet characterized).
    NoBank,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            SnapshotError::BadMagic => write!(f, "not a HEBS snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than supported {supported}"
            ),
            SnapshotError::SchemaMismatch { found, expected } => write!(
                f,
                "snapshot schema version {found} does not match engine schema {expected}"
            ),
            SnapshotError::ChecksumMismatch => {
                write!(f, "snapshot content checksum mismatch (corrupt file)")
            }
            SnapshotError::Malformed { context, reason } => {
                write!(f, "malformed snapshot {context}: {reason}")
            }
            SnapshotError::Io(err) => write!(f, "snapshot i/o: {err}"),
            SnapshotError::NoBank => {
                write!(f, "engine has no installed characteristic bank to snapshot")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(err: std::io::Error) -> Self {
        SnapshotError::Io(err)
    }
}

/// What a successful restore installed, returned by
/// [`Engine::restore_from_reader`](crate::Engine::restore_from_reader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RestoreReport {
    /// Content classes in the installed bank.
    pub classes: usize,
    /// The bank's largest characteristic generation after the install.
    pub generation: u64,
    /// Spilled cache entries re-admitted through the normal insert path.
    pub cache_restored: usize,
    /// Spilled cache entries skipped (mode/band mismatch with this
    /// engine's cache, refused by the byte budget, or individually
    /// malformed). Skipped entries are cold misses later, never errors.
    pub cache_skipped: usize,
}

// ---------------------------------------------------------------------------
// Records: the decoded form, decoupled from engine internals. The engine
// builds these from its installed state and rebuilds state from them
// through the validated install/insert paths.
// ---------------------------------------------------------------------------

/// One characterization sample of a class curve.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct SampleRecord {
    pub(crate) image: String,
    pub(crate) dynamic_range: u32,
    pub(crate) distortion: f64,
    pub(crate) power_saving: f64,
}

/// One content class: its routing centroid, the generation it served under
/// when snapshotted (informational — restores stamp fresh generations), and
/// the samples its curve is refit from.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClassRecord {
    pub(crate) centroid: [f64; SIGNATURE_BINS],
    pub(crate) generation: u64,
    pub(crate) samples: Vec<SampleRecord>,
}

/// The serialized characteristic bank.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BankRecord {
    pub(crate) fit: CurveFit,
    pub(crate) classes: Vec<ClassRecord>,
}

/// A spilled exact-mode cache entry: the stored frame plus the full
/// outcome it replays.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ExactSpillRecord {
    pub(crate) width: u32,
    pub(crate) height: u32,
    pub(crate) budget_band: u32,
    pub(crate) class: u16,
    pub(crate) pixels: Vec<u8>,
    pub(crate) outcome: OutcomeRecord,
}

/// The serializable parts of a [`hebs_core::ScalingOutcome`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OutcomeRecord {
    pub(crate) policy: String,
    pub(crate) beta: f64,
    pub(crate) dynamic_range: Option<u32>,
    pub(crate) distortion: f64,
    /// `(ccfl, panel, controller, beta)` of the power breakdown.
    pub(crate) power: [f64; 4],
    pub(crate) power_saving: f64,
    pub(crate) lut: [u8; 256],
    pub(crate) displayed_width: u32,
    pub(crate) displayed_height: u32,
    pub(crate) displayed: Vec<u8>,
    pub(crate) fit_evaluations: u32,
}

/// A spilled approximate-mode cache entry: the signature key parts plus
/// the fitted transform (its display response is recomposed on restore).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ApproxSpillRecord {
    pub(crate) width: u32,
    pub(crate) height: u32,
    pub(crate) budget_band: u32,
    pub(crate) class: u16,
    pub(crate) signature: [u8; SIGNATURE_BINS],
    pub(crate) target_min: u8,
    pub(crate) target_max: u8,
    pub(crate) beta: f64,
    pub(crate) blend_weight: f64,
    pub(crate) points: Vec<(f64, f64)>,
    pub(crate) lut: [u8; 256],
}

/// The spilled hot-cache section, in the keying mode of the source cache.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CacheRecord {
    Exact {
        /// Budget-band width the spilled bands were quantized with.
        band_width: f64,
        entries: Vec<ExactSpillRecord>,
    },
    Approximate {
        /// Budget-band width the spilled bands were quantized with.
        band_width: f64,
        /// Signature quantization resolution of the spilled keys.
        resolution: u8,
        entries: Vec<ApproxSpillRecord>,
    },
}

// ---------------------------------------------------------------------------
// Checksum: seeded two-lane 128-bit mixing over the framed bytes, built
// from the same SplitMix64 finalizer as `frame_hash128` and the seeded
// interleaving schedule hash.
// ---------------------------------------------------------------------------

/// SplitMix64 finalizer — a cheap, well-distributed bit mixer.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Seeded 128-bit content checksum over `data`: two independently seeded
/// 64-bit lanes, each folding every 8-byte word through the finalizer, so
/// single-bit flips and block swaps both disturb the digest.
pub(crate) fn checksum128(seed: u64, data: &[u8]) -> u128 {
    let mut hi = mix(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut lo = mix(seed.rotate_left(32) ^ 0xbf58_476d_1ce4_e5b9);
    for (index, chunk) in data.chunks(8).enumerate() {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        let word = u64::from_le_bytes(word) ^ mix(index as u64);
        hi = mix(hi ^ word);
        lo = mix(lo.wrapping_add(word).rotate_left(17));
    }
    (u128::from(hi) << 64) | u128::from(lo)
}

// ---------------------------------------------------------------------------
// Little-endian primitives.
// ---------------------------------------------------------------------------

/// An append-only little-endian byte writer.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Floats travel as IEEE-754 bit patterns so round-trips are exact.
    pub(crate) fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub(crate) fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed (u32) byte run.
    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        self.u32(bytes.len() as u32);
        self.raw(bytes);
    }

    /// Length-prefixed (u16) UTF-8 string, truncated at the prefix bound
    /// (sample image names are short identifiers in practice).
    pub(crate) fn str16(&mut self, s: &str) {
        let bytes = s.as_bytes();
        let len = bytes.len().min(u16::MAX as usize);
        self.u16(len as u16);
        self.raw(&bytes[..len]);
    }
}

/// A bounds-checked little-endian reader over a byte slice. Every read
/// names its context so truncation errors say what was being decoded.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    pub(crate) fn take(
        &mut self,
        len: usize,
        context: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < len {
            return Err(SnapshotError::Truncated { context });
        }
        let slice = &self.data[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, SnapshotError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u16(&mut self, context: &'static str) -> Result<u16, SnapshotError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, SnapshotError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, context)?;
        let mut buf = [0u8; 8];
        buf.copy_from_slice(b);
        Ok(u64::from_le_bytes(buf))
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Length-prefixed (u32) byte run, bounded by `max`.
    pub(crate) fn bytes(
        &mut self,
        max: usize,
        context: &'static str,
    ) -> Result<&'a [u8], SnapshotError> {
        let len = self.u32(context)? as usize;
        if len > max {
            return Err(SnapshotError::Malformed {
                context,
                reason: format!("length {len} exceeds bound {max}"),
            });
        }
        self.take(len, context)
    }

    /// Length-prefixed (u16) UTF-8 string.
    pub(crate) fn str16(&mut self, context: &'static str) -> Result<String, SnapshotError> {
        let len = usize::from(self.u16(context)?);
        if len > MAX_STRING_BYTES {
            return Err(SnapshotError::Malformed {
                context,
                reason: format!("string length {len} exceeds bound {MAX_STRING_BYTES}"),
            });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed {
            context,
            reason: "invalid UTF-8".to_string(),
        })
    }
}

// ---------------------------------------------------------------------------
// Record encoding.
// ---------------------------------------------------------------------------

fn fit_tag(fit: CurveFit) -> u8 {
    match fit {
        CurveFit::Average => 0,
        CurveFit::Envelope => 1,
        CurveFit::WorstCase => 2,
    }
}

fn fit_from_tag(tag: u8) -> Result<CurveFit, SnapshotError> {
    match tag {
        0 => Ok(CurveFit::Average),
        1 => Ok(CurveFit::Envelope),
        2 => Ok(CurveFit::WorstCase),
        other => Err(SnapshotError::Malformed {
            context: "curve fit",
            reason: format!("unknown fit tag {other}"),
        }),
    }
}

fn encode_bank(w: &mut ByteWriter, bank: &BankRecord) {
    w.u8(fit_tag(bank.fit));
    w.u32(bank.classes.len() as u32);
    for class in &bank.classes {
        w.u64(class.generation);
        for &coord in &class.centroid {
            w.f64(coord);
        }
        w.u32(class.samples.len() as u32);
        for sample in &class.samples {
            w.str16(&sample.image);
            w.u32(sample.dynamic_range);
            w.f64(sample.distortion);
            w.f64(sample.power_saving);
        }
    }
}

fn decode_bank(r: &mut ByteReader<'_>) -> Result<BankRecord, SnapshotError> {
    let fit = fit_from_tag(r.u8("bank fit")?)?;
    let class_count = r.u32("bank class count")? as usize;
    if class_count == 0 || class_count > MAX_CLASSES {
        return Err(SnapshotError::Malformed {
            context: "bank class count",
            reason: format!("{class_count} outside 1..={MAX_CLASSES}"),
        });
    }
    let mut classes = Vec::with_capacity(class_count);
    for _ in 0..class_count {
        let generation = r.u64("class generation")?;
        let mut centroid = [0.0; SIGNATURE_BINS];
        for coord in &mut centroid {
            *coord = r.f64("class centroid")?;
        }
        let sample_count = r.u32("class sample count")? as usize;
        if sample_count > MAX_SAMPLES_PER_CLASS {
            return Err(SnapshotError::Malformed {
                context: "class sample count",
                reason: format!("{sample_count} exceeds bound {MAX_SAMPLES_PER_CLASS}"),
            });
        }
        let mut samples = Vec::with_capacity(sample_count);
        for _ in 0..sample_count {
            samples.push(SampleRecord {
                image: r.str16("sample image")?,
                dynamic_range: r.u32("sample range")?,
                distortion: r.f64("sample distortion")?,
                power_saving: r.f64("sample saving")?,
            });
        }
        classes.push(ClassRecord {
            centroid,
            generation,
            samples,
        });
    }
    Ok(BankRecord { fit, classes })
}

fn encode_outcome(w: &mut ByteWriter, outcome: &OutcomeRecord) {
    w.str16(&outcome.policy);
    w.f64(outcome.beta);
    match outcome.dynamic_range {
        Some(range) => {
            w.u8(1);
            w.u32(range);
        }
        None => w.u8(0),
    }
    w.f64(outcome.distortion);
    for &p in &outcome.power {
        w.f64(p);
    }
    w.f64(outcome.power_saving);
    w.raw(&outcome.lut);
    w.u32(outcome.displayed_width);
    w.u32(outcome.displayed_height);
    w.bytes(&outcome.displayed);
    w.u32(outcome.fit_evaluations);
}

fn decode_outcome(r: &mut ByteReader<'_>) -> Result<OutcomeRecord, SnapshotError> {
    let policy = r.str16("outcome policy")?;
    let beta = r.f64("outcome beta")?;
    let dynamic_range = match r.u8("outcome range flag")? {
        0 => None,
        1 => Some(r.u32("outcome range")?),
        other => {
            return Err(SnapshotError::Malformed {
                context: "outcome range flag",
                reason: format!("unknown flag {other}"),
            })
        }
    };
    let distortion = r.f64("outcome distortion")?;
    let mut power = [0.0; 4];
    for p in &mut power {
        *p = r.f64("outcome power")?;
    }
    let power_saving = r.f64("outcome saving")?;
    let mut lut = [0u8; 256];
    lut.copy_from_slice(r.take(256, "outcome lut")?);
    let displayed_width = r.u32("outcome displayed width")?;
    let displayed_height = r.u32("outcome displayed height")?;
    let expected = displayed_width as usize * displayed_height as usize;
    let displayed = r.bytes(expected.max(1), "outcome displayed pixels")?;
    if displayed.len() != expected {
        return Err(SnapshotError::Malformed {
            context: "outcome displayed pixels",
            reason: format!(
                "{} bytes for a {displayed_width}×{displayed_height} frame",
                displayed.len()
            ),
        });
    }
    let fit_evaluations = r.u32("outcome evaluations")?;
    Ok(OutcomeRecord {
        policy,
        beta,
        dynamic_range,
        distortion,
        power,
        power_saving,
        lut,
        displayed_width,
        displayed_height,
        displayed: displayed.to_vec(),
        fit_evaluations,
    })
}

fn encode_cache(w: &mut ByteWriter, cache: &CacheRecord) {
    match cache {
        CacheRecord::Exact {
            band_width,
            entries,
        } => {
            w.u8(0);
            w.f64(*band_width);
            w.u32(entries.len() as u32);
            for entry in entries {
                w.u32(entry.width);
                w.u32(entry.height);
                w.u32(entry.budget_band);
                w.u16(entry.class);
                w.bytes(&entry.pixels);
                encode_outcome(w, &entry.outcome);
            }
        }
        CacheRecord::Approximate {
            band_width,
            resolution,
            entries,
        } => {
            w.u8(1);
            w.f64(*band_width);
            w.u8(*resolution);
            w.u32(entries.len() as u32);
            for entry in entries {
                w.u32(entry.width);
                w.u32(entry.height);
                w.u32(entry.budget_band);
                w.u16(entry.class);
                w.raw(&entry.signature);
                w.u8(entry.target_min);
                w.u8(entry.target_max);
                w.f64(entry.beta);
                w.f64(entry.blend_weight);
                w.u32(entry.points.len() as u32);
                for &(x, y) in &entry.points {
                    w.f64(x);
                    w.f64(y);
                }
                w.raw(&entry.lut);
            }
        }
    }
}

fn decode_cache(r: &mut ByteReader<'_>) -> Result<CacheRecord, SnapshotError> {
    let mode = r.u8("cache mode")?;
    let band_width = r.f64("cache band width")?;
    match mode {
        0 => {
            let count = r.u32("cache entry count")? as usize;
            if count > MAX_SPILL_ENTRIES {
                return Err(SnapshotError::Malformed {
                    context: "cache entry count",
                    reason: format!("{count} exceeds bound {MAX_SPILL_ENTRIES}"),
                });
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let width = r.u32("spill width")?;
                let height = r.u32("spill height")?;
                let budget_band = r.u32("spill band")?;
                let class = r.u16("spill class")?;
                let expected = width as usize * height as usize;
                let pixels = r.bytes(expected.max(1), "spill pixels")?;
                if pixels.len() != expected {
                    return Err(SnapshotError::Malformed {
                        context: "spill pixels",
                        reason: format!("{} bytes for a {width}×{height} frame", pixels.len()),
                    });
                }
                let outcome = decode_outcome(r)?;
                entries.push(ExactSpillRecord {
                    width,
                    height,
                    budget_band,
                    class,
                    pixels: pixels.to_vec(),
                    outcome,
                });
            }
            Ok(CacheRecord::Exact {
                band_width,
                entries,
            })
        }
        1 => {
            let resolution = r.u8("cache resolution")?;
            let count = r.u32("cache entry count")? as usize;
            if count > MAX_SPILL_ENTRIES {
                return Err(SnapshotError::Malformed {
                    context: "cache entry count",
                    reason: format!("{count} exceeds bound {MAX_SPILL_ENTRIES}"),
                });
            }
            let mut entries = Vec::with_capacity(count);
            for _ in 0..count {
                let width = r.u32("spill width")?;
                let height = r.u32("spill height")?;
                let budget_band = r.u32("spill band")?;
                let class = r.u16("spill class")?;
                let mut signature = [0u8; SIGNATURE_BINS];
                signature.copy_from_slice(r.take(SIGNATURE_BINS, "spill signature")?);
                let target_min = r.u8("spill target min")?;
                let target_max = r.u8("spill target max")?;
                let beta = r.f64("spill beta")?;
                let blend_weight = r.f64("spill blend")?;
                let point_count = r.u32("spill point count")? as usize;
                if point_count > MAX_CURVE_POINTS {
                    return Err(SnapshotError::Malformed {
                        context: "spill point count",
                        reason: format!("{point_count} exceeds bound {MAX_CURVE_POINTS}"),
                    });
                }
                let mut points = Vec::with_capacity(point_count);
                for _ in 0..point_count {
                    let x = r.f64("spill point")?;
                    let y = r.f64("spill point")?;
                    points.push((x, y));
                }
                let mut lut = [0u8; 256];
                lut.copy_from_slice(r.take(256, "spill lut")?);
                entries.push(ApproxSpillRecord {
                    width,
                    height,
                    budget_band,
                    class,
                    signature,
                    target_min,
                    target_max,
                    beta,
                    blend_weight,
                    points,
                    lut,
                });
            }
            Ok(CacheRecord::Approximate {
                band_width,
                resolution,
                entries,
            })
        }
        other => Err(SnapshotError::Malformed {
            context: "cache mode",
            reason: format!("unknown mode tag {other}"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Top-level framing.
// ---------------------------------------------------------------------------

/// Serializes a bank (and optional cache spill) into the framed,
/// checksummed snapshot byte form. `seed` seeds the content checksum and
/// is stored in the header, so any seed verifies on any reader.
pub(crate) fn encode(bank: &BankRecord, cache: Option<&CacheRecord>, seed: u64) -> Vec<u8> {
    let mut body = ByteWriter::new();
    body.raw(&SNAPSHOT_MAGIC);
    body.u16(SNAPSHOT_FORMAT_VERSION);
    body.u16(SNAPSHOT_SCHEMA_VERSION);
    body.u64(seed);
    let sections = 1 + usize::from(cache.is_some());
    body.u32(sections as u32);

    let mut section = ByteWriter::new();
    encode_bank(&mut section, bank);
    let payload = section.into_bytes();
    body.u8(SECTION_BANK);
    body.u64(payload.len() as u64);
    body.raw(&payload);

    if let Some(cache) = cache {
        let mut section = ByteWriter::new();
        encode_cache(&mut section, cache);
        let payload = section.into_bytes();
        body.u8(SECTION_CACHE);
        body.u64(payload.len() as u64);
        body.raw(&payload);
    }

    let mut framed = body.into_bytes();
    let digest = checksum128(seed, &framed);
    framed.extend_from_slice(&digest.to_le_bytes());
    framed
}

/// Parses and verifies a snapshot: magic, versions, section framing and
/// the trailing seeded checksum, then the records themselves. Never
/// panics; every malformation is a typed [`SnapshotError`].
pub(crate) fn decode(data: &[u8]) -> Result<(BankRecord, Option<CacheRecord>), SnapshotError> {
    // Header + checksum are the minimum viable snapshot.
    let header_len = 8 + 2 + 2 + 8 + 4;
    if data.len() < header_len + 16 {
        return Err(SnapshotError::Truncated { context: "header" });
    }
    let (framed, trailer) = data.split_at(data.len() - 16);
    let mut r = ByteReader::new(framed);
    if r.take(8, "magic")? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let format = r.u16("format version")?;
    if format > SNAPSHOT_FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion {
            found: format,
            supported: SNAPSHOT_FORMAT_VERSION,
        });
    }
    let schema = r.u16("schema version")?;
    if schema != SNAPSHOT_SCHEMA_VERSION {
        return Err(SnapshotError::SchemaMismatch {
            found: schema,
            expected: SNAPSHOT_SCHEMA_VERSION,
        });
    }
    let seed = r.u64("checksum seed")?;
    let mut expected = [0u8; 16];
    expected.copy_from_slice(trailer);
    if checksum128(seed, framed) != u128::from_le_bytes(expected) {
        return Err(SnapshotError::ChecksumMismatch);
    }

    let sections = r.u32("section count")? as usize;
    let mut bank = None;
    let mut cache = None;
    for _ in 0..sections {
        let tag = r.u8("section tag")?;
        let len = r.u64("section length")? as usize;
        let payload = r.take(len, "section payload")?;
        let mut section = ByteReader::new(payload);
        match tag {
            SECTION_BANK => bank = Some(decode_bank(&mut section)?),
            SECTION_CACHE => cache = Some(decode_cache(&mut section)?),
            other => {
                return Err(SnapshotError::Malformed {
                    context: "section tag",
                    reason: format!("unknown section {other}"),
                })
            }
        }
        if section.remaining() != 0 {
            return Err(SnapshotError::Malformed {
                context: "section payload",
                reason: format!("{} trailing bytes in section {tag}", section.remaining()),
            });
        }
    }
    if r.remaining() != 0 {
        return Err(SnapshotError::Malformed {
            context: "snapshot frame",
            reason: format!("{} trailing bytes after sections", r.remaining()),
        });
    }
    let bank = bank.ok_or(SnapshotError::Malformed {
        context: "snapshot frame",
        reason: "no bank section".to_string(),
    })?;
    Ok((bank, cache))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u32) -> SampleRecord {
        SampleRecord {
            image: format!("s{i}"),
            dynamic_range: 40 + 10 * i,
            distortion: 0.3 - 0.02 * f64::from(i),
            power_saving: 0.4,
        }
    }

    fn bank_record(classes: usize) -> BankRecord {
        BankRecord {
            fit: CurveFit::WorstCase,
            classes: (0..classes)
                .map(|c| ClassRecord {
                    centroid: [c as f64; SIGNATURE_BINS],
                    generation: c as u64 + 1,
                    samples: (1..=5).map(sample).collect(),
                })
                .collect(),
        }
    }

    fn cache_record() -> CacheRecord {
        CacheRecord::Approximate {
            band_width: 0.01,
            resolution: 16,
            entries: vec![ApproxSpillRecord {
                width: 8,
                height: 8,
                budget_band: 10,
                class: 0,
                signature: [3; SIGNATURE_BINS],
                target_min: 0,
                target_max: 127,
                beta: 0.5,
                blend_weight: 1.0,
                points: vec![(0.0, 0.0), (1.0, 0.5)],
                lut: [7; 256],
            }],
        }
    }

    #[test]
    fn round_trips_bank_and_cache_sections() {
        let bank = bank_record(3);
        let cache = cache_record();
        let bytes = encode(&bank, Some(&cache), 42);
        let (decoded_bank, decoded_cache) = decode(&bytes).unwrap();
        assert_eq!(decoded_bank, bank);
        assert_eq!(decoded_cache, Some(cache));

        let bytes = encode(&bank, None, 7);
        let (decoded_bank, decoded_cache) = decode(&bytes).unwrap();
        assert_eq!(decoded_bank, bank);
        assert_eq!(decoded_cache, None);
    }

    #[test]
    fn exact_cache_round_trips() {
        let cache = CacheRecord::Exact {
            band_width: 0.01,
            entries: vec![ExactSpillRecord {
                width: 4,
                height: 2,
                budget_band: 9,
                class: 1,
                pixels: vec![1, 2, 3, 4, 5, 6, 7, 8],
                outcome: OutcomeRecord {
                    policy: "hebs".to_string(),
                    beta: 0.6,
                    dynamic_range: Some(128),
                    distortion: 0.05,
                    power: [1.0, 2.0, 0.5, 0.6],
                    power_saving: 0.3,
                    lut: [9; 256],
                    displayed_width: 4,
                    displayed_height: 2,
                    displayed: vec![0; 8],
                    fit_evaluations: 1,
                },
            }],
        };
        let bytes = encode(&bank_record(1), Some(&cache), 3);
        let (_, decoded) = decode(&bytes).unwrap();
        assert_eq!(decoded, Some(cache));
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let bytes = encode(&bank_record(2), Some(&cache_record()), 11);
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch
                ),
                "unexpected error at length {len}: {err}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode(&bank_record(1), None, 99);
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                decode(&corrupt).is_err(),
                "bit flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn bad_magic_and_versions_are_typed() {
        let bytes = encode(&bank_record(1), None, 1);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        // The magic is checked before the checksum, so the error names it.
        assert!(matches!(decode(&bad_magic), Err(SnapshotError::BadMagic)));

        let mut newer = bytes.clone();
        newer[8] = 0xFF;
        newer[9] = 0xFF;
        assert!(matches!(
            decode(&newer),
            Err(SnapshotError::UnsupportedVersion { .. })
        ));

        let mut schema = bytes.clone();
        schema[10] = 0xEE;
        assert!(matches!(
            decode(&schema),
            Err(SnapshotError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn checksum_is_seed_and_content_sensitive() {
        let a = checksum128(1, b"hello snapshot");
        assert_ne!(a, checksum128(2, b"hello snapshot"), "seed matters");
        assert_ne!(a, checksum128(1, b"hello snapshoT"), "content matters");
        assert_ne!(
            checksum128(1, b"ab"),
            checksum128(1, b"ba"),
            "order matters"
        );
        assert_eq!(a, checksum128(1, b"hello snapshot"), "deterministic");
    }

    #[test]
    fn errors_display_and_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotError>();
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::NoBank.to_string().contains("bank"));
        assert!(SnapshotError::Truncated { context: "header" }
            .to_string()
            .contains("header"));
        assert!(SnapshotError::SchemaMismatch {
            found: 9,
            expected: 1
        }
        .to_string()
        .contains('9'));
    }
}
