//! The concurrent frame-serving engine.
//!
//! [`Engine`] wraps a [`HebsPolicy`] with a worker pool and a transformation
//! cache and exposes two entry points:
//!
//! * [`Engine::process_batch`] — fan a slice of frames out across the pool
//!   and collect per-frame results *in input order*.
//! * [`Engine::stream`] — pull frames from an iterator through a bounded
//!   queue (backpressure: the producer blocks when the pool falls behind)
//!   and yield results in input order as they complete.
//!
//! Both paths serve each frame the same way: look the frame up in the
//! transformation cache, replay the cached fit on a hit, run the full HEBS
//! policy on a miss and remember its fit. Per-frame latency and cache
//! statistics are collected on the fly.

use std::cmp::Reverse;
use std::collections::hash_map::RandomState;
use std::collections::BinaryHeap;
use std::hash::BuildHasher;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::{JoinHandle, Scope, ScopedJoinHandle};
use std::time::{Duration, Instant};

use hebs_analysis::{interleave, lock_healthy, LockClass, OrderedMutex};

use hebs_core::{
    evaluate_range_from_histogram, BankClass, CharacteristicBank, CharacterizationSample,
    DistortionCharacteristic, FitScratch, FrameTransform, HebsError, HebsPolicy, PowerBreakdown,
    ScalingOutcome, TargetRange,
};
use hebs_imaging::{
    frame_hash128, FrameIngest, GrayImage, Histogram, HistogramSignature, SIGNATURE_BINS,
};
use hebs_transform::{ControlPoint, LookupTable, PiecewiseLinear};

use crate::cache::{
    budget_band, transform_bytes, ApproximateCache, CacheConfig, ExactCache, ExactEntry, ExactKey,
    SignatureKey, TransformCache,
};
use crate::error::{Result, RuntimeError};
use crate::serving::{CurveBank, CurveState, OpenLoopState, RebuildPlan, ServingMode};
use crate::snapshot::{
    self, ApproxSpillRecord, BankRecord, CacheRecord, ClassRecord, ExactSpillRecord, OutcomeRecord,
    RestoreReport, SampleRecord, SnapshotError,
};
use crate::stats::{EngineStats, ServeKind, StatsCollector};

/// Upper bound on configurable content classes (the class id is a `u16` in
/// every cache key; 256 is far beyond any useful clustering of 32-bin
/// signatures).
const MAX_CLASSES: usize = 256;

/// How many hottest cache entries [`Engine::snapshot_to_writer`] spills
/// alongside the characteristic bank. Enough to pre-warm the working set
/// of a steady scene without making snapshots frame-archive sized.
const SNAPSHOT_SPILL_TOP_K: usize = 64;

/// Domain-separation input for the per-snapshot checksum seed (the magic
/// bytes as a little-endian word).
const SNAPSHOT_MAGIC_SEED: [u8; 8] = crate::snapshot::SNAPSHOT_MAGIC;

/// Configuration of the serving engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads; 0 selects the machine's available
    /// parallelism.
    pub workers: usize,
    /// Depth of the bounded streaming queues (frames in flight between the
    /// producer and the pool); 0 selects `2 × workers`.
    pub queue_depth: usize,
    /// Distortion budget handed to the policy for every frame.
    pub max_distortion: f64,
    /// Transformation cache configuration; `None` disables caching.
    pub cache: Option<CacheConfig>,
    /// How cache misses are fitted: the closed-loop range search (default)
    /// or the open-loop characteristic lookup with background
    /// re-characterization (see [`ServingMode`]).
    pub mode: ServingMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 0,
            queue_depth: 0,
            max_distortion: 0.10,
            cache: Some(CacheConfig::default()),
            mode: ServingMode::ClosedLoop,
        }
    }
}

impl EngineConfig {
    /// A single-threaded, cache-less configuration — the reference baseline
    /// the throughput bench compares against.
    pub fn sequential(max_distortion: f64) -> Self {
        EngineConfig {
            workers: 1,
            queue_depth: 0,
            max_distortion,
            cache: None,
            mode: ServingMode::ClosedLoop,
        }
    }
}

/// The result of serving one frame.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Position of the frame in the input order.
    pub index: usize,
    /// The policy outcome for this frame. Shared: exact-cache hits hand out
    /// the cached allocation instead of deep-copying the displayed frame.
    pub outcome: Arc<ScalingOutcome>,
    /// Whether the transformation cache served this frame.
    pub cache_hit: bool,
    /// Wall-clock time this frame spent being served (excluding queueing).
    pub latency: Duration,
}

/// The results of one [`Engine::process_batch`] call.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-frame results, in input order.
    pub results: Vec<FrameResult>,
    /// Wall-clock time for the whole batch.
    pub wall_time: Duration,
}

impl BatchReport {
    /// Number of frames in the batch.
    pub fn frames(&self) -> usize {
        self.results.len()
    }

    /// Frames served per wall-clock second.
    pub fn throughput_fps(&self) -> f64 {
        let secs = self.wall_time.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.results.len() as f64 / secs
        }
    }

    /// Fraction of frames served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().filter(|r| r.cache_hit).count() as f64 / self.results.len() as f64
        }
    }

    /// Mean per-frame serving latency.
    pub fn mean_latency(&self) -> Duration {
        if self.results.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.results.iter().map(|r| r.latency).sum();
        total / self.results.len() as u32
    }

    /// The `q`-quantile (`0 ≤ q ≤ 1`) of the per-frame latencies, by the
    /// nearest-rank method. Returns zero for an empty batch.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        if self.results.is_empty() {
            return Duration::ZERO;
        }
        let mut latencies: Vec<Duration> = self.results.iter().map(|r| r.latency).collect();
        latencies.sort_unstable();
        let rank = (q.clamp(0.0, 1.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[rank]
    }

    /// Mean fractional power saving over the batch.
    pub fn mean_power_saving(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| r.outcome.power_saving)
            .sum::<f64>()
            / self.results.len() as f64
    }

    /// Mean measured distortion over the batch.
    pub fn mean_distortion(&self) -> f64 {
        if self.results.is_empty() {
            return 0.0;
        }
        self.results
            .iter()
            .map(|r| r.outcome.distortion)
            .sum::<f64>()
            / self.results.len() as f64
    }
}

/// Per-request serving options for [`Engine::process_frame_with_options`]
/// (and, through a [`TenantRegistry`](crate::TenantRegistry), for
/// multi-tenant serves).
///
/// The default (`ServeOptions::default()`) reproduces
/// [`Engine::process_frame`]: the engine-wide budget and no deadline.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Per-request distortion budget; `None` uses the engine-wide
    /// [`EngineConfig::max_distortion`].
    pub max_distortion: Option<f64>,
    /// Serve-by deadline. A frame whose open-loop fit drifts over budget
    /// *past this instant* skips the closed-loop drift recheck and serves
    /// the installed per-class curve's fit directly — trading the per-frame
    /// distortion contract for bounded latency — and is counted in
    /// [`EngineStats::deadline_degraded`](crate::EngineStats). Before the
    /// deadline (or with no installed curve to degrade to) serving is
    /// unchanged.
    pub deadline: Option<Instant>,
}

impl ServeOptions {
    /// Sets a per-request distortion budget.
    pub fn with_budget(mut self, max_distortion: f64) -> Self {
        self.max_distortion = Some(max_distortion);
        self
    }

    /// Sets the serve-by deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Shared state behind an [`Engine`] handle.
struct EngineInner {
    policy: HebsPolicy,
    cache: Option<Arc<TransformCache>>,
    max_distortion: f64,
    workers: usize,
    queue_depth: usize,
    serving: Option<OpenLoopState>,
    /// The tenant id stamped into this engine's cache keys and charged for
    /// its cache bytes — 0 for a standalone engine, the registry-assigned
    /// id for a tenant engine sharing its cache.
    tenant: u16,
    /// Serializes snapshot saves/restores against each other (a restore
    /// swapping the bank mid-snapshot would tear the serialized state).
    /// Rank `Snapshot` (15): below every serve-path lock, so serving never
    /// waits on snapshot I/O, and a snapshot may read bank/cache state
    /// (which takes serve-path locks) while holding the gate.
    snapshot_gate: OrderedMutex<()>,
    totals: StatsCollector,
}

/// The result of one trip through `EngineInner::serve`: the outcome (or the
/// pipeline error), how the cache was involved, how many cached candidates
/// were rejected by verification along the way, how many candidate fits
/// were evaluated (0 on a replay), and whether the open-loop drift check
/// fell back to the closed-loop search.
struct Served {
    outcome: std::result::Result<Arc<ScalingOutcome>, HebsError>,
    kind: ServeKind,
    rejections: u64,
    fit_evaluations: u64,
    open_loop_fallback: bool,
    /// The serve ran past its deadline and served the installed curve's
    /// over-budget fit instead of the closed-loop drift recheck.
    deadline_degraded: bool,
    /// The content class the frame routed to (0 outside multi-class
    /// open-loop serving) — the per-class sketch and triggers it feeds.
    class: u16,
    /// The frame's histogram, produced by the serve's single fused ingest
    /// pass — reused by cache keys, class routing, the fit and the
    /// open-loop traffic sketch, so sampling never re-reads the pixels.
    histogram: Histogram,
}

/// One completed fit: the outcome, its reusable transform, and whether it
/// came from the open-loop drift fallback (or skipped that fallback because
/// the serve was past its deadline).
struct Fitted {
    outcome: ScalingOutcome,
    transform: Arc<FrameTransform>,
    open_loop_fallback: bool,
    deadline_degraded: bool,
}

impl EngineInner {
    /// The generation stamped into cache keys: the installed characteristic
    /// curve's generation in open-loop mode, 0 in closed-loop mode. A
    /// re-characterization swap bumps it, so fits made under a stale curve
    /// are never probed again.
    fn policy_generation(&self) -> u64 {
        self.serving.as_ref().map_or(0, OpenLoopState::generation)
    }

    /// Fits one frame according to the serving mode.
    ///
    /// Closed-loop (or open-loop before any curve is installed): the full
    /// range search. Open-loop with an installed curve: a single evaluation
    /// at the curve's predicted range, followed by the *drift check* — a
    /// fit whose measured distortion exceeds the budget is re-served
    /// through the closed-loop search (its evaluations are charged on top
    /// of the open-loop one) and counted as a fallback, so the distortion
    /// contract holds in either mode.
    ///
    /// `curve` is the serve's snapshot of the installed curve — taken once
    /// per serve, together with the generation its cache key carries, so
    /// an install landing mid-serve can never pair an old-generation key
    /// with a new-curve fit (which would strand the entry under a key no
    /// future lookup probes).
    ///
    /// `deadline` is the serve's deadline, consulted only when the
    /// open-loop fit drifts over budget: past the deadline the closed-loop
    /// recheck is skipped and the curve's fit served as-is, marked
    /// `deadline_degraded` (the check costs one clock read, and only on
    /// drift).
    fn fit(
        &self,
        frame: &GrayImage,
        histogram: &Histogram,
        budget: f64,
        curve: Option<&Arc<CurveState>>,
        deadline: Option<Instant>,
        scratch: &mut FitScratch,
    ) -> std::result::Result<Fitted, HebsError> {
        if let Some(curve) = curve {
            let (outcome, transform) = curve
                .policy
                .optimize_with_transform_using_histogram(frame, histogram, budget, scratch)?;
            if outcome.distortion <= budget {
                return Ok(Fitted {
                    outcome,
                    transform,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                });
            }
            if deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                // Past the deadline: a closed-loop recheck would make the
                // frame later still. Serve the curve's fit as-is and let
                // the caller count the degradation (and feed the drift
                // trigger so the curve is rebuilt).
                return Ok(Fitted {
                    outcome,
                    transform,
                    open_loop_fallback: false,
                    deadline_degraded: true,
                });
            }
            // Drift: the curve under-provisioned the range for this frame.
            // Honour the budget through the closed-loop search and let the
            // caller feed the drift trigger. The discarded open-loop
            // frame's buffer goes back to the scratch for the refit.
            let open_evaluations = outcome.fit_evaluations;
            scratch.recycle_output(outcome.displayed);
            let (mut outcome, transform) = self
                .policy
                .optimize_with_transform_using_histogram(frame, histogram, budget, scratch)?;
            outcome.fit_evaluations += open_evaluations;
            return Ok(Fitted {
                outcome,
                transform,
                open_loop_fallback: true,
                deadline_degraded: false,
            });
        }
        let (outcome, transform) = self
            .policy
            .optimize_with_transform_using_histogram(frame, histogram, budget, scratch)?;
        Ok(Fitted {
            outcome,
            transform,
            open_loop_fallback: false,
            deadline_degraded: false,
        })
    }

    /// Serves one frame through the cache (when enabled) or the full policy.
    /// `scratch` is the worker's reusable frame buffer: steady-state fits
    /// write intermediate candidate images into it instead of allocating.
    // lint: hot-path
    fn serve(
        &self,
        frame: &GrayImage,
        budget: f64,
        deadline: Option<Instant>,
        scratch: &mut FitScratch,
    ) -> Served {
        // The fused ingest: one traversal of the pixel buffer yields the
        // histogram, the routing signature and the exact-key content hash
        // for every later stage (cache key, class routing, fit, sketch
        // sampling). The hash is seeded with the exact cache's per-cache
        // seed; other modes never consume it, so 0 is fine.
        let seed = match self.cache.as_deref() {
            Some(TransformCache::Exact(cache)) => cache.seed,
            _ => 0,
        };
        let (histogram, signature, content_hash) =
            FrameIngest::compute_auto(frame, seed).into_parts();
        // One coherent snapshot of the open-loop bank per serve: the cache
        // key's (class, generation) pair and the fitting curve always
        // agree, even when an install lands while this frame is in flight.
        // A multi-class bank routes the frame by the ingest's signature.
        let bank = self.serving.as_ref().and_then(OpenLoopState::current);
        let (curve, class, generation) = match &bank {
            None => (None, 0u16, 0u64),
            Some(bank) if bank.is_single() => {
                let state = &bank.classes[0];
                (Some(state), 0, state.generation)
            }
            Some(bank) => {
                let class = bank.classify(&signature);
                let state = &bank.classes[class];
                (Some(state), class as u16, state.generation)
            }
        };
        match self.cache.as_deref() {
            None => match self.fit(frame, &histogram, budget, curve, deadline, scratch) {
                Ok(fitted) => Served {
                    fit_evaluations: u64::from(fitted.outcome.fit_evaluations),
                    outcome: Ok(Arc::new(fitted.outcome)),
                    kind: ServeKind::Uncached,
                    rejections: 0,
                    open_loop_fallback: fitted.open_loop_fallback,
                    deadline_degraded: fitted.deadline_degraded,
                    class,
                    histogram,
                },
                Err(err) => Served {
                    outcome: Err(err),
                    kind: ServeKind::Uncached,
                    rejections: 0,
                    fit_evaluations: 0,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                    class,
                    histogram,
                },
            },
            Some(TransformCache::Exact(cache)) => self.serve_exact(
                cache,
                frame,
                content_hash,
                budget,
                curve,
                deadline,
                class,
                generation,
                histogram,
                scratch,
            ),
            Some(TransformCache::Approximate(cache)) => self.serve_approximate(
                cache, frame, budget, curve, deadline, class, generation, histogram, scratch,
            ),
        }
    }

    /// Exact mode: probe by content hash, verify the stored frame and the
    /// cached fit's measured distortion on a hit, and run at most one fit
    /// per key across all concurrent workers (single flight).
    ///
    /// The hit path performs zero full-frame allocations and zero pixel
    /// traversals of its own: the key hash arrives precomputed from the
    /// serve's fused ingest, verification is one memcmp, and the returned
    /// outcome is a shared `Arc`.
    #[allow(clippy::too_many_arguments)]
    fn serve_exact(
        &self,
        cache: &ExactCache,
        frame: &GrayImage,
        content_hash: u128,
        budget: f64,
        curve: Option<&Arc<CurveState>>,
        deadline: Option<Instant>,
        class: u16,
        generation: u64,
        histogram: Histogram,
        scratch: &mut FitScratch,
    ) -> Served {
        let key = ExactKey::of(
            frame,
            content_hash,
            budget_band(budget, cache.band_width),
            self.tenant,
            class,
            generation,
        );
        let mut rejections = 0u64;
        let satisfies =
            |entry: &ExactEntry| entry.matches(frame) && entry.outcome.distortion <= budget;
        if let Some((entry, generation)) = cache.store.get(&key) {
            if satisfies(&entry) {
                return Served {
                    outcome: Ok(entry.outcome),
                    kind: ServeKind::Hit,
                    rejections,
                    fit_evaluations: 0,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                    class,
                    histogram,
                };
            }
            // Hash collision or a same-band fit whose measured distortion
            // exceeds this (stricter) budget: evict it so other workers
            // stop paying for the known-bad entry, and refit.
            cache.store.reject(&key, generation);
            rejections += 1;
        }
        // Single flight: the first misser leads (holding the guard for the
        // duration of its fit); concurrent missers wait. Everyone re-probes
        // after joining — a waiter picks up the leader's freshly inserted
        // fit, and a late leader (one whose probe raced a completing fit)
        // avoids a redundant fit. A thread whose re-probe cannot serve it
        // (nothing inserted, or the fit fails its stricter budget) falls
        // through to its own fit in parallel rather than re-queueing, so an
        // uncacheable key (e.g. an entry refused as oversized) degrades to
        // v1's concurrent fits instead of serializing them.
        let _flight = cache.flights.join(&key);
        if let Some((entry, generation)) = cache.store.get_after_wait(&key) {
            if satisfies(&entry) {
                return Served {
                    outcome: Ok(entry.outcome),
                    kind: ServeKind::CoalescedHit,
                    rejections,
                    fit_evaluations: 0,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                    class,
                    histogram,
                };
            }
            cache.store.reject_after_wait(&key, generation);
            rejections += 1;
        }
        let fitted = match self.fit(frame, &histogram, budget, curve, deadline, scratch) {
            Ok(fitted) => fitted,
            Err(err) => {
                return Served {
                    outcome: Err(err),
                    kind: ServeKind::Miss,
                    rejections,
                    fit_evaluations: 0,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                    class,
                    histogram,
                }
            }
        };
        let fit_evaluations = u64::from(fitted.outcome.fit_evaluations);
        let outcome = Arc::new(fitted.outcome);
        // A deadline-degraded fit is over budget for its band: caching it
        // would poison the key for every on-time request, so it serves this
        // frame only.
        if !fitted.deadline_degraded {
            let entry = ExactEntry::new(frame, Arc::clone(&outcome));
            let weight = entry.weight();
            cache.store.insert_for(self.tenant, key, entry, weight);
        }
        Served {
            outcome: Ok(outcome),
            kind: ServeKind::Miss,
            rejections,
            fit_evaluations,
            open_loop_fallback: fitted.open_loop_fallback,
            deadline_degraded: fitted.deadline_degraded,
            class,
            histogram,
        }
    }

    /// Approximate mode: probe by quantized histogram signature, revalidate
    /// the cached transform against the actual frame's distortion budget
    /// (in the histogram domain when the measure allows — a rejected
    /// candidate then never touches a pixel), and honour the policy's
    /// distortion contract by only serving outcomes within the requesting
    /// budget. Misses are single-flight like the exact mode. (A frame that
    /// is infeasible even for a full fit keeps missing, which is correct if
    /// not cheap.)
    #[allow(clippy::too_many_arguments)]
    fn serve_approximate(
        &self,
        cache: &ApproximateCache,
        frame: &GrayImage,
        budget: f64,
        curve: Option<&Arc<CurveState>>,
        deadline: Option<Instant>,
        class: u16,
        generation: u64,
        histogram: Histogram,
        scratch: &mut FitScratch,
    ) -> Served {
        let key = SignatureKey::of(
            frame,
            &histogram,
            cache.resolution,
            budget_band(budget, cache.band_width),
            self.tenant,
            class,
            generation,
        );
        let mut rejections = 0u64;
        // Replays a cached transform against the actual frame. `Ok(Some)` is
        // a servable outcome; `Ok(None)` means the entry was rejected (and
        // evicted — only while it is still the generation we looked at, so
        // a slow recheck never throws away a fresh concurrent refit — so
        // workers refit or coalesce onto our refit instead of repeatedly
        // paying a wasted recheck on the known-bad transform); `Err`
        // propagates an apply failure.
        let check = |histogram: &Histogram,
                     transform: Arc<FrameTransform>,
                     generation: u64,
                     after_wait: bool,
                     rejections: &mut u64,
                     scratch: &mut FitScratch|
         -> std::result::Result<Option<ScalingOutcome>, HebsError> {
            match self
                .policy
                .replay_frame_transform_with_scratch(frame, histogram, &transform, budget, scratch)
            {
                Ok(Some(outcome)) => Ok(Some(outcome)),
                Ok(None) => {
                    if after_wait {
                        cache.store.reject_after_wait(&key, generation);
                    } else {
                        cache.store.reject(&key, generation);
                    }
                    *rejections += 1;
                    Ok(None)
                }
                Err(err) => {
                    if after_wait {
                        cache.store.reject_after_wait(&key, generation);
                    } else {
                        cache.store.reject(&key, generation);
                    }
                    *rejections += 1;
                    Err(err)
                }
            }
        };
        if let Some((transform, generation)) = cache.store.get(&key) {
            match check(
                &histogram,
                transform,
                generation,
                false,
                &mut rejections,
                scratch,
            ) {
                Ok(Some(outcome)) => {
                    return Served {
                        outcome: Ok(Arc::new(outcome)),
                        kind: ServeKind::Hit,
                        rejections,
                        fit_evaluations: 0,
                        open_loop_fallback: false,
                        deadline_degraded: false,
                        class,
                        histogram,
                    }
                }
                Ok(None) => {}
                Err(err) => {
                    return Served {
                        outcome: Err(err),
                        kind: ServeKind::Miss,
                        rejections,
                        fit_evaluations: 0,
                        open_loop_fallback: false,
                        deadline_degraded: false,
                        class,
                        histogram,
                    }
                }
            }
        }
        // Single flight, exactly as the exact mode: lead or wait, re-probe,
        // and fall through to a parallel fit when the re-probe cannot serve
        // this frame's budget.
        let _flight = cache.flights.join(&key);
        if let Some((transform, generation)) = cache.store.get_after_wait(&key) {
            match check(
                &histogram,
                transform,
                generation,
                true,
                &mut rejections,
                scratch,
            ) {
                Ok(Some(outcome)) => {
                    return Served {
                        outcome: Ok(Arc::new(outcome)),
                        kind: ServeKind::CoalescedHit,
                        rejections,
                        fit_evaluations: 0,
                        open_loop_fallback: false,
                        deadline_degraded: false,
                        class,
                        histogram,
                    }
                }
                Ok(None) => {}
                Err(err) => {
                    return Served {
                        outcome: Err(err),
                        kind: ServeKind::Miss,
                        rejections,
                        fit_evaluations: 0,
                        open_loop_fallback: false,
                        deadline_degraded: false,
                        class,
                        histogram,
                    }
                }
            }
        }
        let fitted = match self.fit(frame, &histogram, budget, curve, deadline, scratch) {
            Ok(fitted) => fitted,
            Err(err) => {
                return Served {
                    outcome: Err(err),
                    kind: ServeKind::Miss,
                    rejections,
                    fit_evaluations: 0,
                    open_loop_fallback: false,
                    deadline_degraded: false,
                    class,
                    histogram,
                }
            }
        };
        let fit_evaluations = u64::from(fitted.outcome.fit_evaluations);
        // As in the exact mode, a deadline-degraded transform is over
        // budget for its band and must not be cached.
        if !fitted.deadline_degraded {
            let weight = transform_bytes(&fitted.transform);
            cache
                .store
                .insert_for(self.tenant, key, fitted.transform, weight);
        }
        Served {
            outcome: Ok(Arc::new(fitted.outcome)),
            kind: ServeKind::Miss,
            rejections,
            fit_evaluations,
            open_loop_fallback: fitted.open_loop_fallback,
            deadline_degraded: fitted.deadline_degraded,
            class,
            histogram,
        }
    }

    /// Serves one frame and records its latency in the cumulative stats.
    /// In open-loop mode, also feeds the traffic sketch and the rebuild
    /// triggers, and performs a due re-characterization on this worker
    /// (single-flight: concurrent workers keep serving off the old curve).
    // lint: hot-path
    fn serve_timed(
        &self,
        index: usize,
        frame: &GrayImage,
        budget: f64,
        deadline: Option<Instant>,
        scratch: &mut FitScratch,
    ) -> Result<FrameResult> {
        let start = Instant::now();
        let served = self.serve(frame, budget, deadline, scratch);
        let latency = start.elapsed();
        self.totals.record_frame(
            latency,
            served.kind,
            served.rejections,
            served.fit_evaluations,
            served.open_loop_fallback,
            served.deadline_degraded,
        );
        if let Some(state) = &self.serving {
            // A deadline-degraded serve also drifted (its open-loop fit was
            // over budget), so it feeds the drift trigger like a fallback:
            // sustained degradation rebuilds the curve.
            state.record_serve(
                served.class as usize,
                &served.histogram,
                served.open_loop_fallback || served.deadline_degraded,
            );
            self.maybe_recharacterize(state);
        }
        let outcome = served.outcome.map_err(RuntimeError::Core)?;
        Ok(FrameResult {
            index,
            outcome,
            cache_hit: served.kind.is_hit(),
            latency,
        })
    }

    /// Rebuilds a distortion characteristic from a traffic sketch when a
    /// trigger is due, and swaps it into the bank slot. At most one worker
    /// rebuilds at a time; the losers (and every other worker) continue
    /// serving with the current bank, so a rebuild never blocks the serve
    /// path.
    ///
    /// With no bank installed the bootstrap clusters the pre-bank sketch
    /// into up to `classes` content classes; afterwards each class rebuilds
    /// *only itself* from its own sketch, bumping only its own cache-key
    /// generation. Trigger counters are consumed by the amount observed at
    /// rebuild time (never stored to zero), so fallbacks recorded by
    /// concurrent workers while the rebuild runs still count toward the
    /// next drift trigger.
    // lint: cold-path
    fn maybe_recharacterize(&self, state: &OpenLoopState) {
        if state.rebuild_plan().is_none() || !state.begin_rebuild() {
            return;
        }
        // Re-derive the plan under the single-flight claim (another worker
        // may have completed a rebuild between the probe and the claim).
        if let Some(plan) = state.rebuild_plan() {
            match plan {
                RebuildPlan::Bootstrap => self.bootstrap_bank(state),
                RebuildPlan::Class(class) => self.recharacterize_class(state, class),
            }
        }
        // Piggy-back on the rebuild cadence (and its single-flight claim)
        // to re-partition the sketch budget by each class's observed
        // traffic share, so skewed traffic doesn't starve rare classes'
        // rebuilds.
        state.rebalance_sketch_capacities();
        state.end_rebuild();
    }

    /// The first characterization of an open-loop engine that was never
    /// seeded: clusters the pre-bank sketch into a fresh bank (a single
    /// class when `classes` is 1 — the classic flow).
    fn bootstrap_bank(&self, state: &OpenLoopState) {
        let (frames, drifts) = state.observed_triggers(0);
        let histograms = state.sketch_snapshot(0);
        let config = self.policy.config();
        let installed = if state.recharacterize.classes > 1 {
            CharacteristicBank::build(
                config,
                &histograms,
                &state.recharacterize.ranges,
                state.recharacterize.classes,
            )
            .map(|bank| state.install_bank(config, &bank))
            .is_ok()
        } else {
            DistortionCharacteristic::characterize_from_histograms(
                config,
                &histograms,
                &state.recharacterize.ranges,
            )
            .map(|curve| state.install(config.clone(), Arc::new(curve)))
            .is_ok()
        };
        if installed {
            self.totals.record_recharacterization();
        } else {
            // Characterization failed (e.g. incapable measure slipping
            // through, too few samples): consume the observed counts so the
            // next attempt waits for a full interval instead of retrying
            // every frame.
            state.consume_triggers(0, frames, drifts);
        }
    }

    /// Rebuilds one class's curve from its own sketch and swaps it into the
    /// bank — invalidating (via the class's key generation) only that
    /// class's cached fits.
    fn recharacterize_class(&self, state: &OpenLoopState, class: usize) {
        let (frames, drifts) = state.observed_triggers(class);
        let histograms = state.sketch_snapshot(class);
        // On characterization failure (e.g. too few samples) the current
        // curve simply stays installed.
        if let Ok(curve) = DistortionCharacteristic::characterize_from_histograms(
            self.policy.config(),
            &histograms,
            &state.recharacterize.ranges,
        ) {
            // Swapping bumps the class's key generation and thereby
            // discards its cached fits — only worth it when the rebuilt
            // curve actually predicts differently. Drift triggers firing
            // on stationary but heterogeneous traffic otherwise wipe the
            // class every `drift_limit` fallbacks for nothing.
            let unchanged = state.current().is_some_and(|bank| {
                bank.classes.get(class).is_some_and(|installed| {
                    installed
                        .characteristic
                        .max_prediction_delta(&curve, &state.recharacterize.ranges)
                        <= state.recharacterize.min_swap_delta
                })
            });
            if !unchanged
                && state
                    .install_class(class, self.policy.config().clone(), Arc::new(curve))
                    .is_some()
            {
                self.totals.record_recharacterization();
            }
        }
        // Consume what this rebuild observed — anything recorded while it
        // ran keeps counting toward the class's next trigger.
        state.consume_triggers(class, frames, drifts);
    }
}

/// A concurrent, cache-accelerated HEBS frame-serving engine.
///
/// The handle is cheap to clone and fully thread-safe; all clones share the
/// same cache and cumulative statistics.
///
/// ```
/// use hebs_core::{HebsPolicy, PipelineConfig};
/// use hebs_imaging::{FrameSequence, SceneKind};
/// use hebs_runtime::{Engine, EngineConfig};
///
/// let policy = HebsPolicy::closed_loop(PipelineConfig::default());
/// let engine = Engine::new(policy, EngineConfig::default())?;
/// let frames: Vec<_> = FrameSequence::new(SceneKind::SceneCut, 32, 32, 8, 7)
///     .frames()
///     .collect();
/// let report = engine.process_batch(&frames)?;
/// assert_eq!(report.frames(), 8);
/// // Identical repeated frames are served from the cache.
/// assert!(report.cache_hit_rate() > 0.5);
/// # Ok::<(), hebs_runtime::RuntimeError>(())
/// ```
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.inner.workers)
            .field("queue_depth", &self.inner.queue_depth)
            .field("max_distortion", &self.inner.max_distortion)
            .field("cached_fits", &self.inner.cache.as_ref().map(|c| c.len()))
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Creates an engine around a HEBS policy.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] if `max_distortion` is outside
    /// `[0, 1]` or a cache parameter is 0.
    pub fn new(policy: HebsPolicy, config: EngineConfig) -> Result<Self> {
        Self::build(policy, config, None)
    }

    /// Builds a tenant engine that shares a registry's transformation
    /// cache: the engine stamps `tenant` into every cache key (so no
    /// cross-tenant replay is possible) and charges its entries to that
    /// tenant's byte partition. `config.cache` is ignored in favour of the
    /// shared cache.
    pub(crate) fn with_shared_cache(
        policy: HebsPolicy,
        config: EngineConfig,
        cache: Arc<TransformCache>,
        tenant: u16,
    ) -> Result<Self> {
        Self::build(policy, config, Some((cache, tenant)))
    }

    fn build(
        policy: HebsPolicy,
        config: EngineConfig,
        shared: Option<(Arc<TransformCache>, u16)>,
    ) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.max_distortion) || !config.max_distortion.is_finite() {
            return Err(RuntimeError::InvalidConfig {
                name: "max_distortion",
                reason: format!("{} is outside [0, 1]", config.max_distortion),
            });
        }
        if let Some(cache) = &config.cache {
            validate_cache_config(cache)?;
        }
        let serving = match config.mode {
            ServingMode::ClosedLoop => None,
            ServingMode::OpenLoop { recharacterize } => {
                // The engine supplies the open-loop lookup itself; the
                // wrapped policy is the drift *fallback* and must really be
                // closed-loop, or an over-budget open-loop fit would "fall
                // back" to the identical characteristic lookup and the
                // distortion contract would silently break.
                if policy.characteristic().is_some() {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode",
                        reason: "ServingMode::OpenLoop requires a closed-loop base policy \
                                 (the engine performs the characteristic lookup itself; \
                                 install curves via Engine::install_characteristic)"
                            .to_string(),
                    });
                }
                if recharacterize.sample_period == 0 {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.sample_period",
                        reason: "must be nonzero".to_string(),
                    });
                }
                if recharacterize.sample_capacity == 0 {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.sample_capacity",
                        reason: "must be nonzero".to_string(),
                    });
                }
                if recharacterize.classes == 0 {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.classes",
                        reason: "must be nonzero (1 reproduces the single-curve flow)".to_string(),
                    });
                }
                if recharacterize.classes > MAX_CLASSES {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.classes",
                        reason: format!(
                            "{} exceeds the maximum of {MAX_CLASSES} content classes",
                            recharacterize.classes
                        ),
                    });
                }
                if recharacterize.ranges.is_empty() {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.ranges",
                        reason: "must name at least one dynamic range".to_string(),
                    });
                }
                if let Some(range) = recharacterize
                    .ranges
                    .iter()
                    .find(|r| !(2..=256).contains(*r))
                {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.ranges",
                        reason: format!("range {range} is outside [2, 256]"),
                    });
                }
                if !recharacterize.min_swap_delta.is_finite() || recharacterize.min_swap_delta < 0.0
                {
                    return Err(RuntimeError::InvalidConfig {
                        name: "mode.recharacterize.min_swap_delta",
                        reason: format!(
                            "{} is not a nonnegative finite distortion delta",
                            recharacterize.min_swap_delta
                        ),
                    });
                }
                // Probe whether the configured measure supports the
                // histogram-domain evaluation the sketch rebuild needs.
                // Windowed measures still serve open-loop off an installed
                // curve; they just never rebuild it from the sketch.
                // Build-time capability probe on a 4x4 constant frame, not a
                // served frame; the fused-ingest rule does not apply here.
                let probe = Histogram::of(&GrayImage::filled(4, 4, 128)); // lint: allow(frame-ingest)
                let full = TargetRange::from_span(256).map_err(RuntimeError::Core)?;
                let histogram_capable =
                    evaluate_range_from_histogram(policy.config(), &probe, full)
                        .map_err(RuntimeError::Core)?
                        .is_some();
                Some(OpenLoopState::new(recharacterize, histogram_capable))
            }
        };
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            config.workers
        };
        let queue_depth = if config.queue_depth == 0 {
            workers * 2
        } else {
            config.queue_depth
        };
        let (cache, tenant) = match shared {
            Some((cache, tenant)) => (Some(cache), tenant),
            None => (
                config
                    .cache
                    .as_ref()
                    .map(|config| Arc::new(TransformCache::new(config))),
                0,
            ),
        };
        Ok(Engine {
            inner: Arc::new(EngineInner {
                policy,
                cache,
                max_distortion: config.max_distortion,
                workers,
                queue_depth,
                serving,
                tenant,
                snapshot_gate: OrderedMutex::new(LockClass::Snapshot, ()),
                totals: StatsCollector::default(),
            }),
        })
    }

    /// Number of worker threads the engine fans work out to.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// The distortion budget applied to every frame.
    pub fn max_distortion(&self) -> f64 {
        self.inner.max_distortion
    }

    /// Cumulative statistics over everything this engine has served,
    /// including the bytes currently resident in the transformation cache.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.inner.totals.snapshot();
        stats.cache_bytes = self.cached_bytes() as u64;
        stats.poison_recoveries += self
            .inner
            .cache
            .as_ref()
            .map_or(0, |cache| cache.poison_recoveries())
            + self
                .inner
                .serving
                .as_ref()
                .map_or(0, OpenLoopState::poison_recoveries);
        stats
    }

    /// Number of fitted transforms currently cached (0 when the cache is
    /// disabled).
    pub fn cached_fits(&self) -> usize {
        self.inner.cache.as_ref().map_or(0, |cache| cache.len())
    }

    /// Bytes currently resident in the transformation cache (0 when the
    /// cache is disabled). Each entry charges its stored pixels, displayed
    /// image and LUT against the configured byte budget.
    pub fn cached_bytes(&self) -> usize {
        self.inner.cache.as_ref().map_or(0, |cache| cache.bytes())
    }

    /// The cache's own served-lookup counters (`None` when the cache is
    /// disabled), for reconciliation against [`Engine::stats`]: on every
    /// serving path — hits, misses, single-flight waits and rejected hits —
    /// these agree with the engine's accounting.
    pub fn cache_counters(&self) -> Option<crate::CacheCounters> {
        self.inner.cache.as_ref().map(|cache| cache.counters())
    }

    /// Installs (or replaces) the open-loop distortion characteristic
    /// curve, as a deployment would with an offline-characterized seed. The
    /// swap is atomic — concurrent workers finish their current frame on
    /// the old curve — and bumps the characteristic generation, so cached
    /// fits made under the old curve are never replayed. Returns the new
    /// generation.
    ///
    /// The engine re-characterizes on its own from live traffic (see
    /// [`RecharacterizePolicy`](crate::RecharacterizePolicy)); seeding is
    /// only needed to skip the closed-loop bootstrap phase or when the
    /// configured measure cannot characterize from histograms.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when the engine is in
    /// closed-loop mode.
    pub fn install_characteristic(&self, characteristic: DistortionCharacteristic) -> Result<u64> {
        let state = self.serving_state()?;
        Ok(state.install(self.inner.policy.config().clone(), Arc::new(characteristic)))
    }

    /// Installs (or replaces) a per-class characteristic **bank**: frames
    /// are routed by histogram-signature cluster to the class whose curve
    /// was fitted on traffic shaped like them, which recovers most of the
    /// closed-loop saving on heterogeneous traffic where a single
    /// worst-case curve refuses to dim. Each class gets a fresh cache-key
    /// generation, and later per-class rebuilds invalidate only their own
    /// class's fits. Returns the largest new generation.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when the engine is in
    /// closed-loop mode or the bank holds more classes than
    /// [`RecharacterizePolicy::classes`](crate::RecharacterizePolicy)
    /// provisioned (the per-class sketches and rebuild triggers are sized
    /// at engine construction).
    pub fn install_bank(&self, bank: CharacteristicBank) -> Result<u64> {
        let state = self.serving_state()?;
        if bank.len() > state.class_count() {
            return Err(RuntimeError::InvalidConfig {
                name: "bank",
                reason: format!(
                    "{} classes exceed the engine's {} configured classes \
                     (raise RecharacterizePolicy::classes)",
                    bank.len(),
                    state.class_count()
                ),
            });
        }
        Ok(state.install_bank(self.inner.policy.config(), &bank))
    }

    fn serving_state(&self) -> Result<&OpenLoopState> {
        self.inner
            .serving
            .as_ref()
            .ok_or_else(|| RuntimeError::InvalidConfig {
                name: "mode",
                reason: "a closed-loop engine has no characteristic slot".to_string(),
            })
    }

    /// The currently installed open-loop characteristic curve of the first
    /// content class (`None` in closed-loop mode or before the first
    /// install/bootstrap). Multi-class banks expose their size via
    /// [`Engine::characteristic_classes`].
    pub fn characteristic(&self) -> Option<Arc<DistortionCharacteristic>> {
        self.inner
            .serving
            .as_ref()
            .and_then(OpenLoopState::current)
            .map(|bank| Arc::clone(&bank.classes[0].characteristic))
    }

    /// Number of content classes in the installed characteristic bank (0 in
    /// closed-loop mode or before the first install/bootstrap).
    pub fn characteristic_classes(&self) -> usize {
        self.inner
            .serving
            .as_ref()
            .and_then(OpenLoopState::current)
            .map_or(0, |bank| bank.classes.len())
    }

    /// Largest generation of the installed characteristic bank: 0 in
    /// closed-loop mode (and in open-loop mode before any curve exists),
    /// bumped by every install and background re-characterization. Cache
    /// keys carry a per-class generation tag, so a bump invalidates the
    /// rebuilt class's previously cached fits (and only those).
    pub fn characteristic_generation(&self) -> u64 {
        self.inner.policy_generation()
    }

    /// Serializes the engine's learned warm-start state into `writer`: the
    /// installed characteristic bank (centroids, per-class curve samples,
    /// fit mode, generations) plus a spill of the hottest transformation
    /// cache entries, in the versioned, checksummed snapshot format (see
    /// the `snapshot` module). A restarted engine — or a whole fleet — can
    /// [`Engine::restore_from_reader`] this and serve open-loop from its
    /// first frame instead of re-learning from live traffic.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Snapshot`] with [`SnapshotError::NoBank`]
    /// when the engine is closed-loop or has no bank installed yet, and
    /// [`SnapshotError::Io`] when `writer` fails.
    pub fn snapshot_to_writer<W: Write>(&self, writer: &mut W) -> Result<()> {
        self.snapshot_with_spill(writer, SNAPSHOT_SPILL_TOP_K)
    }

    /// [`Engine::snapshot_to_writer`] with an explicit cache-spill size:
    /// the `top_k` most recently used cache entries belonging to this
    /// engine's tenant and current characteristic generations are carried
    /// along (0 omits the cache section entirely).
    pub fn snapshot_with_spill<W: Write>(&self, writer: &mut W, top_k: usize) -> Result<()> {
        // Serialize against concurrent restores; serves are unaffected
        // (they never take this lock).
        let _gate = lock_healthy(self.inner.snapshot_gate.lock(), || {
            self.inner.totals.record_poison_recovery()
        });
        let bank = self
            .inner
            .serving
            .as_ref()
            .and_then(OpenLoopState::current)
            .ok_or(RuntimeError::Snapshot(SnapshotError::NoBank))?;
        let record = self.bank_record(&bank)?;
        let cache = if top_k == 0 {
            None
        } else {
            self.spill_cache(top_k, &bank)
        };
        // Random checksum seed per snapshot: the seed travels in the
        // header, so any reader verifies, while the digest of a given
        // payload is not globally predictable.
        let seed = RandomState::new().hash_one(u64::from_le_bytes(SNAPSHOT_MAGIC_SEED));
        let bytes = snapshot::encode(&record, cache.as_ref(), seed);
        writer
            .write_all(&bytes) // lint: allow(guard-across-fit) -- the snapshot gate exists to serialize whole-bank writes against concurrent restores; serves never take it, so holding it across the write blocks nothing on the serve path
            .map_err(|err| RuntimeError::Snapshot(SnapshotError::Io(err)))
    }

    /// Builds the serializable bank record from the installed bank. The
    /// per-class curves re-fit from their samples on restore, so the
    /// samples — not the fitted spline coefficients — are the wire form.
    fn bank_record(&self, bank: &CurveBank) -> Result<BankRecord> {
        let state = self.serving_state()?;
        let centroids = bank.centroids();
        let mut classes = Vec::with_capacity(bank.classes.len());
        for (index, class) in bank.classes.iter().enumerate() {
            // A single-class bank routes without centroids; serialize zeros
            // so the record shape is uniform.
            let centroid = centroids
                .get(index)
                .copied()
                .unwrap_or([0.0; SIGNATURE_BINS]);
            let samples = class
                .characteristic
                .samples()
                .iter()
                .map(|sample| SampleRecord {
                    image: sample.image.clone(),
                    dynamic_range: sample.dynamic_range,
                    distortion: sample.distortion,
                    power_saving: sample.power_saving,
                })
                .collect();
            classes.push(ClassRecord {
                centroid,
                generation: class.generation,
                samples,
            });
        }
        Ok(BankRecord {
            fit: state.recharacterize.fit,
            classes,
        })
    }

    /// Spills the `top_k` most recently used cache entries that belong to
    /// this engine's tenant and were fitted under a currently installed
    /// class generation (stale-generation fits would never be probed and
    /// are not worth carrying).
    fn spill_cache(&self, top_k: usize, bank: &CurveBank) -> Option<CacheRecord> {
        let cache = self.inner.cache.as_deref()?;
        let tenant = self.inner.tenant;
        let live = |class: u16, generation: u64| {
            bank.classes
                .get(usize::from(class))
                .is_some_and(|state| state.generation == generation)
        };
        match cache {
            TransformCache::Exact(cache) => {
                let entries = cache
                    .store
                    .recent_entries(top_k)
                    .into_iter()
                    .filter(|(key, _)| {
                        key.tenant() == tenant && live(key.class(), key.generation())
                    })
                    .map(|(key, entry)| ExactSpillRecord {
                        width: key.width(),
                        height: key.height(),
                        budget_band: key.budget_band(),
                        class: key.class(),
                        pixels: entry.pixels().to_vec(),
                        outcome: outcome_record(&entry.outcome),
                    })
                    .collect();
                Some(CacheRecord::Exact {
                    band_width: cache.band_width,
                    entries,
                })
            }
            TransformCache::Approximate(cache) => {
                let entries = cache
                    .store
                    .recent_entries(top_k)
                    .into_iter()
                    .filter(|(key, _)| {
                        key.tenant() == tenant && live(key.class(), key.generation())
                    })
                    .map(|(key, transform)| ApproxSpillRecord {
                        width: key.width(),
                        height: key.height(),
                        budget_band: key.budget_band(),
                        class: key.class(),
                        signature: *key.signature().bins(),
                        target_min: transform.target.g_min(),
                        target_max: transform.target.g_max(),
                        beta: transform.beta,
                        blend_weight: transform.blend_weight,
                        points: transform
                            .curve
                            .points()
                            .iter()
                            .map(|p| (p.x, p.y))
                            .collect(),
                        lut: *transform.lut.entries(),
                    })
                    .collect();
                Some(CacheRecord::Approximate {
                    band_width: cache.band_width,
                    resolution: cache.resolution,
                    entries,
                })
            }
        }
    }

    /// Restores warm-start state saved by [`Engine::snapshot_to_writer`]:
    /// the characteristic bank re-enters through the validated
    /// [`Engine::install_bank`] path (fresh generations, atomic swap) and
    /// spilled cache entries re-enter through the normal insert path (the
    /// tenant partition and byte budget are respected; entries that don't
    /// fit this engine's cache mode are skipped, never errors).
    ///
    /// # Errors
    ///
    /// A corrupt, truncated or schema-mismatched snapshot returns
    /// [`RuntimeError::Snapshot`] and bumps
    /// [`EngineStats::snapshot_rejected`]; the engine keeps serving
    /// exactly as before the call (cold-start degradation, never a panic
    /// and never partially installed state).
    pub fn restore_from_reader<R: Read>(&self, reader: &mut R) -> Result<RestoreReport> {
        let _gate = lock_healthy(self.inner.snapshot_gate.lock(), || {
            self.inner.totals.record_poison_recovery()
        });
        let mut bytes = Vec::new();
        let restored = match reader.read_to_end(&mut bytes) {
            Ok(_) => self.restore_locked(&bytes),
            Err(err) => Err(SnapshotError::Io(err)),
        };
        restored.map_err(|err| {
            self.inner.totals.record_snapshot_rejection();
            RuntimeError::Snapshot(err)
        })
    }

    /// The restore body, under the snapshot gate: decode → validate →
    /// rebuild the bank → install → re-admit spilled cache entries.
    fn restore_locked(&self, bytes: &[u8]) -> std::result::Result<RestoreReport, SnapshotError> {
        let (record, cache_record) = snapshot::decode(bytes)?;
        let state = self.inner.serving.as_ref().ok_or(SnapshotError::NoBank)?;
        if record.fit != state.recharacterize.fit {
            // A bank serialized under a different fit mode would predict
            // differently than the canary that learned it; refuse rather
            // than silently change the distortion contract.
            return Err(SnapshotError::Malformed {
                context: "bank fit",
                reason: format!(
                    "snapshot fit {:?} does not match the engine's configured {:?}",
                    record.fit, state.recharacterize.fit
                ),
            });
        }
        if record.classes.len() > state.class_count() {
            return Err(SnapshotError::Malformed {
                context: "bank classes",
                reason: format!(
                    "{} classes exceed the engine's {} configured classes",
                    record.classes.len(),
                    state.class_count()
                ),
            });
        }
        let mut classes = Vec::with_capacity(record.classes.len());
        for class in &record.classes {
            let samples = class
                .samples
                .iter()
                .map(|sample| CharacterizationSample {
                    image: sample.image.clone(),
                    dynamic_range: sample.dynamic_range,
                    distortion: sample.distortion,
                    power_saving: sample.power_saving,
                })
                .collect();
            let characteristic =
                DistortionCharacteristic::from_samples(samples).map_err(|err| {
                    SnapshotError::Malformed {
                        context: "class curve",
                        reason: err.to_string(),
                    }
                })?;
            classes.push(BankClass {
                centroid: class.centroid,
                characteristic: Arc::new(characteristic),
                members: class.samples.len(),
            });
        }
        let bank =
            CharacteristicBank::from_classes(classes).map_err(|err| SnapshotError::Malformed {
                context: "bank",
                reason: err.to_string(),
            })?;
        // The restore-vs-serve race seam: a seeded interleaving schedule
        // can force serves between the decode above and the swap below.
        interleave::point("snapshot.restore");
        let generation = state.install_bank(self.inner.policy.config(), &bank);
        let installed = state.current().ok_or(SnapshotError::Malformed {
            context: "bank install",
            reason: "installed bank not visible after swap".to_string(),
        })?;
        let (cache_restored, cache_skipped) = match cache_record {
            None => (0, 0),
            Some(record) => self.restore_cache(record, &installed),
        };
        Ok(RestoreReport {
            classes: installed.classes.len(),
            generation,
            cache_restored,
            cache_skipped,
        })
    }

    /// Re-admits spilled cache entries through the normal insert path,
    /// re-keyed under this cache's own hash seed and the freshly installed
    /// class generations. Returns `(restored, skipped)` — a mode or
    /// band-width mismatch with this engine's cache skips entries rather
    /// than failing the restore.
    fn restore_cache(&self, record: CacheRecord, bank: &CurveBank) -> (usize, usize) {
        let tenant = self.inner.tenant;
        match (self.inner.cache.as_deref(), record) {
            (
                Some(TransformCache::Exact(cache)),
                CacheRecord::Exact {
                    band_width,
                    entries,
                },
            ) => {
                if band_width.to_bits() != cache.band_width.to_bits() {
                    return (0, entries.len());
                }
                let mut restored = 0;
                let mut skipped = 0;
                for entry in entries {
                    let Some(class) = bank.classes.get(usize::from(entry.class)) else {
                        skipped += 1;
                        continue;
                    };
                    let Ok(frame) = GrayImage::from_raw(entry.width, entry.height, entry.pixels)
                    else {
                        skipped += 1;
                        continue;
                    };
                    let Some(outcome) = rebuild_outcome(entry.outcome) else {
                        skipped += 1;
                        continue;
                    };
                    // Stored content hashes are not portable (the hash seed
                    // is random per cache instance); recompute under ours.
                    let key = ExactKey::of(
                        &frame,
                        frame_hash128(&frame, cache.seed),
                        entry.budget_band,
                        tenant,
                        entry.class,
                        class.generation,
                    );
                    let value = ExactEntry::new(&frame, Arc::new(outcome));
                    let weight = value.weight();
                    cache.store.insert_for(tenant, key, value, weight);
                    restored += 1;
                }
                (restored, skipped)
            }
            (
                Some(TransformCache::Approximate(cache)),
                CacheRecord::Approximate {
                    band_width,
                    resolution,
                    entries,
                },
            ) => {
                if band_width.to_bits() != cache.band_width.to_bits()
                    || resolution != cache.resolution
                {
                    return (0, entries.len());
                }
                let mut restored = 0;
                let mut skipped = 0;
                for entry in entries {
                    let Some(class) = bank.classes.get(usize::from(entry.class)) else {
                        skipped += 1;
                        continue;
                    };
                    let Some(transform) = rebuild_transform(self.inner.policy.config(), &entry)
                    else {
                        skipped += 1;
                        continue;
                    };
                    let key = SignatureKey::from_parts(
                        entry.width,
                        entry.height,
                        HistogramSignature::from_bins(entry.signature),
                        entry.budget_band,
                        tenant,
                        entry.class,
                        class.generation,
                    );
                    let weight = transform_bytes(&transform);
                    cache
                        .store
                        .insert_for(tenant, key, Arc::new(transform), weight);
                    restored += 1;
                }
                (restored, skipped)
            }
            // No cache, or the snapshot's mode differs from ours: the bank
            // alone still warm-starts serving; the spill is simply dropped.
            (_, CacheRecord::Exact { entries, .. }) => (0, entries.len()),
            (_, CacheRecord::Approximate { entries, .. }) => (0, entries.len()),
        }
    }

    /// Serves a single frame synchronously on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates policy and display errors.
    pub fn process_frame(&self, frame: &GrayImage) -> Result<FrameResult> {
        let mut scratch = FitScratch::default();
        self.inner
            .serve_timed(0, frame, self.inner.max_distortion, None, &mut scratch)
    }

    /// Serves a single frame with per-request [`ServeOptions`]: an optional
    /// per-request distortion budget and an optional serve-by deadline (a
    /// late frame degrades to the installed open-loop curve instead of
    /// paying the closed-loop drift recheck — see
    /// [`ServeOptions::deadline`]).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidBudget`] if the requested budget is
    /// outside `[0, 1]`; otherwise propagates policy and display errors.
    pub fn process_frame_with_options(
        &self,
        frame: &GrayImage,
        options: &ServeOptions,
    ) -> Result<FrameResult> {
        let budget = options.max_distortion.unwrap_or(self.inner.max_distortion);
        if !(0.0..=1.0).contains(&budget) || !budget.is_finite() {
            return Err(RuntimeError::InvalidBudget { budget });
        }
        let mut scratch = FitScratch::default();
        self.inner
            .serve_timed(0, frame, budget, options.deadline, &mut scratch)
    }

    /// Records one shed arrival against this engine's cumulative stats
    /// (used by the admission controller; shed frames never reach the
    /// serve path).
    pub(crate) fn record_shed(&self) {
        self.inner.totals.record_shed();
    }

    /// Serves a single frame with a per-request distortion budget instead
    /// of the engine-wide one.
    ///
    /// Budgets that quantize into the same band (see
    /// [`CacheConfig::budget_band_width`]) share cache entries: a fit made
    /// for a strict budget serves looser requests in its band directly,
    /// and a cached fit is only replayed when its *measured* distortion
    /// satisfies the requesting budget.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidBudget`] if `max_distortion` is
    /// outside `[0, 1]`; otherwise propagates policy and display errors.
    pub fn process_frame_with_budget(
        &self,
        frame: &GrayImage,
        max_distortion: f64,
    ) -> Result<FrameResult> {
        if !(0.0..=1.0).contains(&max_distortion) || !max_distortion.is_finite() {
            return Err(RuntimeError::InvalidBudget {
                budget: max_distortion,
            });
        }
        let mut scratch = FitScratch::default();
        self.inner
            .serve_timed(0, frame, max_distortion, None, &mut scratch)
    }

    /// Serves a batch of frames across the worker pool and returns the
    /// per-frame results in input order.
    ///
    /// Frames are distributed by work stealing (an atomic cursor over the
    /// slice), so a slow frame never stalls the others; the output order is
    /// nevertheless exactly the input order.
    ///
    /// # Errors
    ///
    /// Returns the first per-frame error encountered (by input order).
    pub fn process_batch(&self, frames: &[GrayImage]) -> Result<BatchReport> {
        let start = Instant::now();
        let worker_count = self.inner.workers.min(frames.len()).max(1);
        let mut slots: Vec<Option<Result<FrameResult>>> = Vec::new();
        slots.resize_with(frames.len(), || None);
        // Stats class: the highest rank, so a worker that still held a serve
        // path lock here would be caught by lockdep — results are only
        // recorded after the serve completed and released everything.
        let slots = OrderedMutex::new(LockClass::Stats, slots);
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| {
                    // One reusable frame-buffer scratch per worker: the
                    // steady-state fit path performs no intermediate
                    // per-frame allocations.
                    let mut scratch = FitScratch::default();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed); // ordering: work-steal ticket; the RMW itself is the only coordination needed
                        if index >= frames.len() {
                            break;
                        }
                        let result = self.inner.serve_timed(
                            index,
                            &frames[index],
                            self.inner.max_distortion,
                            None,
                            &mut scratch,
                        );
                        lock_healthy(slots.lock(), || self.inner.totals.record_poison_recovery())
                            [index] = Some(result);
                    }
                });
            }
        });

        let mut results = Vec::with_capacity(frames.len());
        let slots = lock_healthy(slots.into_inner(), || {
            self.inner.totals.record_poison_recovery()
        });
        for slot in slots {
            let result = slot.expect("frame index claimed by a worker"); // lint: allow(no-unwrap) the cursor hands out each index exactly once
            results.push(result?);
        }
        Ok(BatchReport {
            results,
            wall_time: start.elapsed(),
        })
    }

    /// Streams frames from an iterator through the worker pool, yielding
    /// results in input order as they complete.
    ///
    /// The producer iterator is drained on a dedicated feeder thread through
    /// a bounded queue of depth [`EngineConfig::queue_depth`], so a slow
    /// consumer or a saturated pool exerts backpressure on the producer
    /// instead of buffering the whole stream. Dropping the returned stream
    /// early tears the pipeline down.
    pub fn stream<I>(&self, frames: I) -> FrameStream
    where
        I: IntoIterator<Item = GrayImage>,
        I::IntoIter: Send + 'static,
    {
        let (core, handles) = stream_pipeline(&self.inner, frames.into_iter(), |task| {
            std::thread::spawn(task)
        });
        FrameStream { core, handles }
    }

    /// Streams frames from a *borrowing* producer iterator through the
    /// worker pool, inside a [`std::thread::scope`]. Identical semantics to
    /// [`Engine::stream`] — bounded queues, input-order results, the same
    /// failure accounting — but the producer only needs to live for the
    /// scope, so it can borrow from the caller's stack (a frame buffer, a
    /// decoder) instead of satisfying a `'static` bound.
    ///
    /// The returned stream must be consumed (or dropped) inside the scope;
    /// the pipeline threads are joined when the stream drops, and at the
    /// latest when the scope ends.
    ///
    /// ```
    /// use hebs_core::{HebsPolicy, PipelineConfig};
    /// use hebs_imaging::{FrameSequence, SceneKind};
    /// use hebs_runtime::{Engine, EngineConfig};
    ///
    /// let policy = HebsPolicy::closed_loop(PipelineConfig::default());
    /// let engine = Engine::new(policy, EngineConfig::default())?;
    /// let frames: Vec<_> = FrameSequence::new(SceneKind::Static, 24, 24, 4, 3)
    ///     .frames()
    ///     .collect();
    /// let served = std::thread::scope(|scope| {
    ///     // The producer borrows `frames` — no cloning, no 'static.
    ///     let stream = engine.stream_scoped(scope, frames.iter().cloned());
    ///     stream.count()
    /// });
    /// assert_eq!(served, 4);
    /// # Ok::<(), hebs_runtime::RuntimeError>(())
    /// ```
    pub fn stream_scoped<'scope, I>(
        &self,
        scope: &'scope Scope<'scope, '_>,
        frames: I,
    ) -> ScopedFrameStream<'scope>
    where
        I: IntoIterator<Item = GrayImage>,
        I::IntoIter: Send + 'scope,
    {
        let (core, handles) =
            stream_pipeline(&self.inner, frames.into_iter(), |task| scope.spawn(task));
        ScopedFrameStream { core, handles }
    }
}

/// Flattens a cached outcome into its serializable snapshot record.
fn outcome_record(outcome: &ScalingOutcome) -> OutcomeRecord {
    OutcomeRecord {
        policy: outcome.policy.clone(),
        beta: outcome.beta,
        dynamic_range: outcome.dynamic_range,
        distortion: outcome.distortion,
        power: [
            outcome.power.ccfl,
            outcome.power.panel,
            outcome.power.controller,
            outcome.power.beta,
        ],
        power_saving: outcome.power_saving,
        lut: *outcome.lut.entries(),
        displayed_width: outcome.displayed.width(),
        displayed_height: outcome.displayed.height(),
        displayed: outcome.displayed.as_raw().to_vec(),
        fit_evaluations: outcome.fit_evaluations,
    }
}

/// Rebuilds a [`ScalingOutcome`] from its spilled record; `None` when the
/// record's displayed frame is inconsistent (the entry is then skipped).
fn rebuild_outcome(record: OutcomeRecord) -> Option<ScalingOutcome> {
    let displayed = GrayImage::from_raw(
        record.displayed_width,
        record.displayed_height,
        record.displayed,
    )
    .ok()?;
    Some(ScalingOutcome {
        policy: record.policy,
        beta: record.beta,
        dynamic_range: record.dynamic_range,
        distortion: record.distortion,
        power: PowerBreakdown {
            ccfl: record.power[0],
            panel: record.power[1],
            controller: record.power[2],
            beta: record.power[3],
        },
        power_saving: record.power_saving,
        lut: LookupTable::from_entries(record.lut),
        displayed,
        fit_evaluations: record.fit_evaluations,
    })
}

/// Rebuilds a [`FrameTransform`] from its spilled parts, recomposing the
/// fused display response through the pipeline's subsystem model; `None`
/// when any part is rejected by its validated constructor.
fn rebuild_transform(
    config: &hebs_core::PipelineConfig,
    record: &ApproxSpillRecord,
) -> Option<FrameTransform> {
    let target = TargetRange::new(record.target_min, record.target_max).ok()?;
    let points = record
        .points
        .iter()
        .map(|&(x, y)| ControlPoint::new(x, y))
        .collect();
    let curve = PiecewiseLinear::new(points).ok()?;
    let lut = LookupTable::from_entries(record.lut);
    FrameTransform::from_parts(config, target, record.beta, record.blend_weight, curve, lut).ok()
}

/// Validates a cache configuration, shared between [`Engine::new`] and the
/// [`TenantRegistry`](crate::TenantRegistry) builder (which constructs the
/// shared cache itself).
pub(crate) fn validate_cache_config(cache: &CacheConfig) -> Result<()> {
    if cache.capacity == 0 {
        return Err(RuntimeError::InvalidConfig {
            name: "cache.capacity",
            reason: "must be nonzero (disable the cache with None instead)".to_string(),
        });
    }
    if cache.shards == 0 {
        return Err(RuntimeError::InvalidConfig {
            name: "cache.shards",
            reason: "must be nonzero".to_string(),
        });
    }
    if cache.signature_resolution == 0 {
        return Err(RuntimeError::InvalidConfig {
            name: "cache.signature_resolution",
            reason: "must be nonzero".to_string(),
        });
    }
    if cache.byte_budget == Some(0) {
        return Err(RuntimeError::InvalidConfig {
            name: "cache.byte_budget",
            reason: "must be nonzero (use None for unbounded)".to_string(),
        });
    }
    if !cache.budget_band_width.is_finite()
        || cache.budget_band_width <= 0.0
        || cache.budget_band_width > 1.0
    {
        return Err(RuntimeError::InvalidConfig {
            name: "cache.budget_band_width",
            reason: format!("{} is outside (0, 1]", cache.budget_band_width),
        });
    }
    Ok(())
}

/// Builds the streaming pipeline — feeder thread, worker pool, bounded
/// channels — spawning each thread through `spawn`, which is
/// `std::thread::spawn` for [`Engine::stream`] and a scoped spawn for
/// [`Engine::stream_scoped`]. The producer's lifetime `'a` is `'static` in
/// the former case and the scope's lifetime in the latter.
fn stream_pipeline<'a, H>(
    inner: &Arc<EngineInner>,
    iter: impl Iterator<Item = GrayImage> + Send + 'a,
    mut spawn: impl FnMut(Box<dyn FnOnce() + Send + 'a>) -> H,
) -> (StreamCore, Vec<H>) {
    let (feed_tx, feed_rx) = sync_channel::<(usize, GrayImage)>(inner.queue_depth);
    let (out_tx, out_rx) = sync_channel::<Sequenced>(inner.queue_depth);
    // Stats class (highest rank): the guard is held across `recv`, but never
    // while a serve-path lock is taken — the serve runs after the guard drops.
    let feed_rx = Arc::new(OrderedMutex::new(LockClass::Stats, feed_rx));
    let progress = Arc::new(FeedProgress::default());

    let mut handles = Vec::with_capacity(inner.workers + 1);
    let feed_progress = Arc::clone(&progress);
    handles.push(spawn(Box::new(move || {
        feed(iter, &feed_tx, &feed_progress);
    })));
    for _ in 0..inner.workers {
        let inner = Arc::clone(inner);
        let feed_rx = Arc::clone(&feed_rx);
        let out_tx: SyncSender<Sequenced> = out_tx.clone();
        handles.push(spawn(Box::new(move || {
            let mut scratch = FitScratch::default();
            loop {
                let next =
                    lock_healthy(feed_rx.lock(), || inner.totals.record_poison_recovery()).recv();
                let Ok((index, frame)) = next else { break };
                let result =
                    inner.serve_timed(index, &frame, inner.max_distortion, None, &mut scratch);
                if out_tx.send(Sequenced { index, result }).is_err() {
                    break; // Consumer went away; stop serving.
                }
            }
        })));
    }

    (
        StreamCore {
            results: Some(out_rx),
            reorder: BinaryHeap::new(),
            next_index: 0,
            progress,
            failure_reported: false,
        },
        handles,
    )
}

/// How far the feeder got: the total frame count once the producer iterator
/// is exhausted, and whether the producer itself panicked. Lets the consumer
/// distinguish "stream over" from "a worker died holding the tail frames"
/// from "the producer died mid-stream".
#[derive(Default)]
struct FeedProgress {
    total: AtomicUsize,
    exhausted: std::sync::atomic::AtomicBool,
    produced: AtomicUsize,
    failed: std::sync::atomic::AtomicBool,
}

/// Feeds the producer iterator into the bounded queue until it is exhausted
/// or the pool shuts down. A panic inside the producer iterator is recorded
/// in [`FeedProgress::failed`] so the consumer can surface it instead of
/// ending the stream as if it completed.
fn feed<I: Iterator<Item = GrayImage>>(
    iter: I,
    tx: &SyncSender<(usize, GrayImage)>,
    progress: &FeedProgress,
) {
    struct PanicGuard<'a>(&'a FeedProgress);
    impl Drop for PanicGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.failed.store(true, Ordering::Release);
            }
        }
    }
    let guard = PanicGuard(progress);

    let mut count = 0usize;
    for (index, frame) in iter.enumerate() {
        if tx.send((index, frame)).is_err() {
            return; // Pool shut down early; the total is unknowable.
        }
        count = index + 1;
        progress.produced.store(count, Ordering::Release);
    }
    progress.total.store(count, Ordering::Release);
    progress.exhausted.store(true, Ordering::Release);
    drop(guard);
}

/// A completed frame tagged with its input position, ordered by position for
/// the reorder heap.
struct Sequenced {
    index: usize,
    result: Result<FrameResult>,
}

impl PartialEq for Sequenced {
    fn eq(&self, other: &Self) -> bool {
        self.index == other.index
    }
}
impl Eq for Sequenced {}
impl PartialOrd for Sequenced {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sequenced {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.index.cmp(&other.index)
    }
}

/// The outcome of a non-blocking poll of a [`FrameStream`]
/// ([`FrameStream::try_next`] / [`FrameStream::next_timeout`]).
#[derive(Debug)]
pub enum StreamPoll {
    /// The next in-order frame result (or per-frame error) is ready.
    Ready(Result<FrameResult>),
    /// No result is ready yet — the producer or the pool is still working
    /// (or, for [`FrameStream::next_timeout`], the timeout elapsed first).
    /// Poll again later; the stream is still live.
    Pending,
    /// The stream is complete; no further results will arrive.
    Finished,
}

/// What one receive attempt against the result channel produced.
enum Received {
    /// A completed frame arrived.
    Got(Sequenced),
    /// Nothing available right now, but workers may still deliver.
    Empty,
    /// The channel is closed: every worker has exited.
    Closed,
}

/// The reordering/accounting state shared by [`FrameStream`] and
/// [`ScopedFrameStream`]: the result channel, the reorder heap and the
/// feeder progress. The two stream types differ only in how their pipeline
/// threads are owned (plain vs. scoped join handles).
struct StreamCore {
    results: Option<Receiver<Sequenced>>,
    reorder: BinaryHeap<Reverse<Sequenced>>,
    next_index: usize,
    progress: Arc<FeedProgress>,
    failure_reported: bool,
}

impl StreamCore {
    fn try_next(&mut self) -> StreamPoll {
        self.poll_with(|rx| match rx.try_recv() {
            Ok(seq) => Received::Got(seq),
            Err(std::sync::mpsc::TryRecvError::Empty) => Received::Empty,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Received::Closed,
        })
    }

    fn next_timeout(&mut self, timeout: Duration) -> StreamPoll {
        let deadline = Instant::now() + timeout;
        self.poll_with(|rx| {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(remaining) {
                Ok(seq) => Received::Got(seq),
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Received::Empty,
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Received::Closed,
            }
        })
    }

    /// The blocking receive behind the [`Iterator`] interface:
    /// `Received::Empty` is unreachable, so the poll only ever ends Ready
    /// or Finished.
    fn next_blocking(&mut self) -> Option<Result<FrameResult>> {
        match self.poll_with(|rx| match rx.recv() {
            Ok(seq) => Received::Got(seq),
            Err(_) => Received::Closed,
        }) {
            StreamPoll::Ready(item) => Some(item),
            StreamPoll::Pending => unreachable!("a blocking receive never reports Pending"),
            StreamPoll::Finished => None,
        }
    }

    /// The shared poll loop: drain the reorder heap, receive via `recv`
    /// until the next in-order result is available, and translate the
    /// closed channel into the end-of-stream accounting (lost frames,
    /// producer/pool failures, completion).
    fn poll_with(&mut self, mut recv: impl FnMut(&Receiver<Sequenced>) -> Received) -> StreamPoll {
        loop {
            if let Some(Reverse(head)) = self.reorder.peek() {
                if head.index == self.next_index {
                    let Reverse(seq) = self.reorder.pop().expect("peeked entry exists"); // lint: allow(no-unwrap) guarded by the peek above
                    self.next_index += 1;
                    return StreamPoll::Ready(seq.result);
                }
            }
            let received = match self.results.as_ref() {
                Some(rx) => recv(rx),
                None => Received::Closed,
            };
            match received {
                Received::Got(seq) => self.reorder.push(Reverse(seq)),
                Received::Empty => return StreamPoll::Pending,
                Received::Closed => {
                    // All workers are done; drain what is left in order. A
                    // gap in the index sequence — including missing frames at
                    // the tail, which the feeder's final count exposes —
                    // means a worker died before delivering that frame:
                    // surface the loss instead of silently skipping it.
                    let next_delivered = self.reorder.peek().map(|Reverse(head)| head.index);
                    let expected_total = self
                        .progress
                        .exhausted
                        .load(Ordering::Acquire)
                        .then(|| self.progress.total.load(Ordering::Acquire));
                    let gap = match (next_delivered, expected_total) {
                        (Some(delivered), _) => delivered != self.next_index,
                        (None, Some(total)) => self.next_index < total,
                        (None, None) => false,
                    };
                    if gap {
                        let lost = self.next_index;
                        self.next_index += 1;
                        return StreamPoll::Ready(Err(RuntimeError::FrameLost { index: lost }));
                    }
                    if self.reorder.is_empty() && !self.failure_reported {
                        if self.progress.failed.load(Ordering::Acquire) {
                            // The producer iterator panicked: every frame it
                            // yielded has been drained above, so report the
                            // early end once instead of finishing silently.
                            self.failure_reported = true;
                            return StreamPoll::Ready(Err(RuntimeError::ProducerFailed {
                                frames_produced: self.progress.produced.load(Ordering::Acquire),
                            }));
                        }
                        if expected_total.is_none() {
                            // The output channel closed while the producer
                            // had neither finished nor failed: every worker
                            // died. Surface that instead of ending the
                            // stream as if it completed.
                            self.failure_reported = true;
                            return StreamPoll::Ready(Err(RuntimeError::PoolFailed {
                                frames_served: self.next_index,
                            }));
                        }
                    }
                    // No gap and nothing left to report: a nonempty heap is
                    // impossible here (its head would have matched at the
                    // top of the loop or counted as a gap), so the stream
                    // is complete.
                    return StreamPoll::Finished;
                }
            }
        }
    }
}

/// An in-order iterator over the results of [`Engine::stream`].
///
/// Results arrive from the pool in completion order; a small reorder heap
/// (bounded by the number of frames in flight) restores input order.
///
/// Besides the blocking [`Iterator`] interface, the stream can be *polled*
/// with [`FrameStream::try_next`] (never blocks) or
/// [`FrameStream::next_timeout`] (blocks at most a deadline), so an event
/// loop multiplexing other work never parks forever on a stalled producer.
pub struct FrameStream {
    core: StreamCore,
    handles: Vec<JoinHandle<()>>,
}

impl FrameStream {
    /// Polls for the next in-order result without blocking.
    ///
    /// Returns [`StreamPoll::Pending`] when the next result has not been
    /// produced yet — for example because the producer iterator is stalled
    /// waiting on I/O — instead of parking the caller on the channel the
    /// way the [`Iterator`] interface does.
    pub fn try_next(&mut self) -> StreamPoll {
        self.core.try_next()
    }

    /// Polls for the next in-order result, blocking at most `timeout`.
    ///
    /// The timeout is one deadline for the whole call (not per internal
    /// receive), so a trickle of out-of-order completions cannot extend it.
    pub fn next_timeout(&mut self, timeout: Duration) -> StreamPoll {
        self.core.next_timeout(timeout)
    }
}

impl Iterator for FrameStream {
    type Item = Result<FrameResult>;

    fn next(&mut self) -> Option<Self::Item> {
        self.core.next_blocking()
    }
}

impl Drop for FrameStream {
    fn drop(&mut self) {
        // Closing the result channel unblocks any worker parked on a full
        // output queue (its send fails); workers then drop the feed receiver,
        // which unblocks the feeder. Reap the pool so no thread outlives the
        // stream.
        drop(self.core.results.take());
        let handles = std::mem::take(&mut self.handles);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The scoped counterpart of [`FrameStream`], returned by
/// [`Engine::stream_scoped`]: the same in-order iterator and polling
/// interface, with the pipeline threads owned by a [`std::thread::scope`]
/// so the producer may borrow from the caller's stack.
pub struct ScopedFrameStream<'scope> {
    core: StreamCore,
    handles: Vec<ScopedJoinHandle<'scope, ()>>,
}

impl ScopedFrameStream<'_> {
    /// Polls for the next in-order result without blocking; see
    /// [`FrameStream::try_next`].
    pub fn try_next(&mut self) -> StreamPoll {
        self.core.try_next()
    }

    /// Polls for the next in-order result, blocking at most `timeout`; see
    /// [`FrameStream::next_timeout`].
    pub fn next_timeout(&mut self, timeout: Duration) -> StreamPoll {
        self.core.next_timeout(timeout)
    }
}

impl Iterator for ScopedFrameStream<'_> {
    type Item = Result<FrameResult>;

    fn next(&mut self) -> Option<Self::Item> {
        self.core.next_blocking()
    }
}

impl Drop for ScopedFrameStream<'_> {
    fn drop(&mut self) {
        // Same teardown as FrameStream; the scope would join the threads at
        // its end anyway, but joining here keeps drop-early semantics (and
        // backpressure release) identical between the two stream types.
        drop(self.core.results.take());
        let handles = std::mem::take(&mut self.handles);
        for handle in handles {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_core::{BacklightPolicy, PipelineConfig};
    use hebs_imaging::{synthetic, FrameSequence, SceneKind};

    fn engine(config: EngineConfig) -> Engine {
        Engine::new(HebsPolicy::closed_loop(PipelineConfig::default()), config).unwrap()
    }

    fn test_frames(count: usize) -> Vec<GrayImage> {
        FrameSequence::new(SceneKind::SceneCut, 32, 32, count, 11)
            .frames()
            .collect()
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let bad_budget = EngineConfig {
            max_distortion: 1.5,
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(policy, bad_budget),
            Err(RuntimeError::InvalidConfig {
                name: "max_distortion",
                ..
            })
        ));

        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let bad_cache = EngineConfig {
            cache: Some(CacheConfig::default().with_capacity(0)),
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(policy, bad_cache),
            Err(RuntimeError::InvalidConfig {
                name: "cache.capacity",
                ..
            })
        ));

        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let bad_resolution = EngineConfig {
            cache: Some(CacheConfig {
                signature_resolution: 0,
                ..CacheConfig::approximate()
            }),
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(policy, bad_resolution),
            Err(RuntimeError::InvalidConfig {
                name: "cache.signature_resolution",
                ..
            })
        ));
    }

    #[test]
    fn worker_autodetection_and_overrides() {
        let auto = engine(EngineConfig::default());
        assert!(auto.workers() >= 1);
        let fixed = engine(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        });
        assert_eq!(fixed.workers(), 3);
        assert_eq!(fixed.max_distortion(), 0.10);
    }

    #[test]
    fn batch_results_are_in_input_order() {
        let engine = engine(EngineConfig {
            workers: 4,
            ..EngineConfig::default()
        });
        let frames = test_frames(12);
        let report = engine.process_batch(&frames).unwrap();
        assert_eq!(report.frames(), 12);
        for (i, result) in report.results.iter().enumerate() {
            assert_eq!(result.index, i);
        }
    }

    #[test]
    fn batch_matches_sequential_policy_outcomes() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let frames = test_frames(6);
        let expected: Vec<_> = frames
            .iter()
            .map(|f| policy.optimize(f, 0.10).unwrap())
            .collect();

        let engine = engine(EngineConfig {
            workers: 3,
            ..EngineConfig::default()
        });
        let report = engine.process_batch(&frames).unwrap();
        for (result, want) in report.results.iter().zip(&expected) {
            assert_eq!(result.outcome.beta, want.beta);
            assert_eq!(result.outcome.distortion, want.distortion);
            assert_eq!(result.outcome.lut, want.lut);
            assert_eq!(result.outcome.displayed, want.displayed);
        }
    }

    #[test]
    fn exact_cache_replays_identical_frames() {
        let engine = engine(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let frames = test_frames(8);
        let cold = engine.process_batch(&frames).unwrap();
        let warm = engine.process_batch(&frames).unwrap();
        assert_eq!(warm.cache_hit_rate(), 1.0, "second pass should be all hits");
        for (a, b) in cold.results.iter().zip(&warm.results) {
            assert_eq!(a.outcome.beta, b.outcome.beta);
            assert_eq!(a.outcome.distortion, b.outcome.distortion);
            assert_eq!(a.outcome.displayed, b.outcome.displayed);
        }
        assert!(engine.cached_fits() > 0);
        let stats = engine.stats();
        assert_eq!(stats.frames, 16);
        assert!(stats.cache_hits >= 8);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let engine = engine(EngineConfig::default());
        let report = engine.process_batch(&[]).unwrap();
        assert_eq!(report.frames(), 0);
        assert_eq!(report.cache_hit_rate(), 0.0);
        assert_eq!(report.mean_latency(), Duration::ZERO);
        assert_eq!(report.latency_quantile(0.95), Duration::ZERO);
    }

    #[test]
    fn stream_yields_results_in_input_order() {
        let engine = engine(EngineConfig {
            workers: 4,
            queue_depth: 2,
            ..EngineConfig::default()
        });
        let frames = test_frames(16);
        let results: Vec<_> = engine
            .stream(frames.clone())
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(results.len(), 16);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.index, i);
        }

        // And the outcomes match the batch path.
        let report = engine.process_batch(&frames).unwrap();
        for (s, b) in results.iter().zip(&report.results) {
            assert_eq!(s.outcome.beta, b.outcome.beta);
            assert_eq!(s.outcome.distortion, b.outcome.distortion);
        }
    }

    #[test]
    fn producer_panic_is_surfaced_as_an_error() {
        let engine = engine(EngineConfig {
            workers: 2,
            queue_depth: 2,
            cache: None,
            ..EngineConfig::default()
        });
        let frames = test_frames(4);
        let feed = frames.into_iter().enumerate().map(|(i, frame)| {
            if i == 3 {
                panic!("decoder died");
            }
            frame
        });
        let results: Vec<_> = engine.stream(feed).collect();
        assert_eq!(results.len(), 4, "3 served frames plus the failure");
        for (i, result) in results[..3].iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().index, i);
        }
        assert!(matches!(
            results[3],
            Err(RuntimeError::ProducerFailed { frames_produced: 3 })
        ));
    }

    #[test]
    fn dropping_a_stream_early_shuts_the_pool_down() {
        let engine = engine(EngineConfig {
            workers: 2,
            queue_depth: 1,
            ..EngineConfig::default()
        });
        let frames = test_frames(32);
        let mut stream = engine.stream(frames);
        let first = stream.next().unwrap().unwrap();
        assert_eq!(first.index, 0);
        drop(stream); // Must not deadlock or panic.
    }

    #[test]
    fn single_frame_processing_works() {
        let engine = engine(EngineConfig::default());
        let frame = synthetic::portrait(32, 32, 3);
        let first = engine.process_frame(&frame).unwrap();
        assert!(!first.cache_hit);
        let second = engine.process_frame(&frame).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.outcome.beta, second.outcome.beta);
    }

    #[test]
    fn engine_handles_are_cloneable_and_share_the_cache() {
        let a = engine(EngineConfig::default());
        let b = a.clone();
        let frame = synthetic::still_life(32, 32, 9);
        a.process_frame(&frame).unwrap();
        let result = b.process_frame(&frame).unwrap();
        assert!(result.cache_hit, "clones share one cache");
        assert_eq!(b.stats().frames, 2);
    }

    #[test]
    fn cache_v2_configs_are_validated() {
        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let bad_bytes = EngineConfig {
            cache: Some(CacheConfig::default().with_byte_budget(Some(0))),
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(policy, bad_bytes),
            Err(RuntimeError::InvalidConfig {
                name: "cache.byte_budget",
                ..
            })
        ));

        let policy = HebsPolicy::closed_loop(PipelineConfig::default());
        let bad_band = EngineConfig {
            cache: Some(CacheConfig::default().with_budget_band_width(0.0)),
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(policy, bad_band),
            Err(RuntimeError::InvalidConfig {
                name: "cache.budget_band_width",
                ..
            })
        ));
    }

    #[test]
    fn per_request_budgets_are_validated() {
        let engine = engine(EngineConfig::default());
        let frame = synthetic::portrait(16, 16, 1);
        assert!(matches!(
            engine.process_frame_with_budget(&frame, 1.5),
            Err(RuntimeError::InvalidBudget { .. })
        ));
        assert!(matches!(
            engine.process_frame_with_budget(&frame, f64::NAN),
            Err(RuntimeError::InvalidBudget { .. })
        ));
    }

    /// Regression: `ShardedLru` hit/miss counters must agree with
    /// `EngineStats` on every path, including the rejected-hit path where
    /// a cached fit fails the distortion recheck for a stricter budget.
    #[test]
    fn lru_counters_agree_with_engine_stats_on_exact_rejections() {
        // One wide band so a loose-budget fit and a strict-budget request
        // share cache entries.
        let engine = engine(EngineConfig {
            workers: 1,
            max_distortion: 0.30,
            cache: Some(CacheConfig::exact().with_budget_band_width(0.5)),
            ..EngineConfig::default()
        });
        let frame = synthetic::portrait(32, 32, 3);

        let loose = engine.process_frame(&frame).unwrap();
        assert!(!loose.cache_hit);
        assert!(loose.outcome.distortion > 0.02, "loose fit uses its budget");

        // Stricter budget in the same band: the cached fit's measured
        // distortion exceeds it, so the hit is rejected and a refit runs.
        let strict = engine.process_frame_with_budget(&frame, 0.02).unwrap();
        assert!(!strict.cache_hit, "rejected hit must surface as a miss");
        assert!(strict.outcome.distortion <= 0.02);

        // The strict refit replaced the entry, so a loose request is now
        // served by the stricter fit: cross-budget sharing.
        let shared = engine.process_frame_with_budget(&frame, 0.30).unwrap();
        assert!(shared.cache_hit, "stricter fit serves the looser budget");
        assert!(shared.outcome.distortion <= 0.02);

        let stats = engine.stats();
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 2);
        assert_eq!(stats.cache_rejected, 1);
        let counters = engine.cache_counters().unwrap();
        assert_eq!(counters.hits, stats.cache_hits, "lru hits drifted");
        assert_eq!(counters.misses, stats.cache_misses, "lru misses drifted");
        assert_eq!(
            counters.rejections, stats.cache_rejected,
            "lru rejections drifted"
        );
        assert_eq!(
            counters.coalesced, stats.cache_coalesced,
            "lru coalesced drifted"
        );
    }

    /// Same reconciliation for the approximate mode, whose rejection path
    /// (serve-time distortion recheck) is where the v1 counters drifted.
    #[test]
    fn lru_counters_agree_with_engine_stats_on_approximate_rejections() {
        let engine = engine(EngineConfig {
            workers: 1,
            max_distortion: 0.30,
            cache: Some(CacheConfig::approximate().with_budget_band_width(0.5)),
            ..EngineConfig::default()
        });
        let frame = synthetic::portrait(32, 32, 3);

        let loose = engine.process_frame(&frame).unwrap();
        assert!(!loose.cache_hit);
        let strict = engine.process_frame_with_budget(&frame, 0.02).unwrap();
        assert!(!strict.cache_hit, "over-budget replay must count as a miss");
        assert!(strict.outcome.distortion <= 0.02);

        let stats = engine.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.frames);
        assert_eq!(stats.cache_rejected, 1);
        let counters = engine.cache_counters().unwrap();
        assert_eq!(counters.hits, stats.cache_hits);
        assert_eq!(counters.misses, stats.cache_misses);
        assert_eq!(counters.rejections, stats.cache_rejected);
        assert_eq!(counters.coalesced, stats.cache_coalesced);
    }

    #[test]
    fn fit_evaluations_are_surfaced_and_zero_on_replays() {
        let engine = engine(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let frame = synthetic::portrait(32, 32, 5);
        engine.process_frame(&frame).unwrap();
        let after_miss = engine.stats().fit_evaluations;
        assert!(
            after_miss > 0,
            "a closed-loop miss must report its candidate evaluations"
        );
        engine.process_frame(&frame).unwrap(); // exact-cache replay
        assert_eq!(
            engine.stats().fit_evaluations,
            after_miss,
            "replays run no fits"
        );
    }

    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<EngineConfig>();
        assert_send_sync::<FrameResult>();
        assert_send_sync::<BatchReport>();
        assert_send_sync::<crate::ServingMode>();
    }

    #[test]
    fn try_next_reports_pending_on_a_stalled_producer_instead_of_blocking() {
        use std::sync::mpsc::channel;

        let engine = engine(EngineConfig {
            workers: 2,
            queue_depth: 2,
            cache: None,
            ..EngineConfig::default()
        });
        // A producer driven from outside the stream: nothing is yielded
        // until `feed` sends, which models a decoder stalled on I/O.
        let (feed, gate) = channel::<GrayImage>();
        let mut stream = engine.stream(std::iter::from_fn(move || gate.recv().ok()));

        // Nothing produced yet: the blocking iterator would park forever
        // here; the poll interface reports Pending immediately.
        assert!(matches!(stream.try_next(), StreamPoll::Pending));
        assert!(matches!(
            stream.next_timeout(Duration::from_millis(10)),
            StreamPoll::Pending
        ));

        // Unstall the producer: the result arrives within the deadline.
        feed.send(synthetic::portrait(24, 24, 7)).unwrap();
        let polled = loop {
            match stream.next_timeout(Duration::from_secs(10)) {
                StreamPoll::Pending => continue,
                other => break other,
            }
        };
        match polled {
            StreamPoll::Ready(result) => assert_eq!(result.unwrap().index, 0),
            other => panic!("expected a ready frame, got {other:?}"),
        }

        // Ending the producer finishes the stream through the poll API too.
        drop(feed);
        let finished = loop {
            match stream.next_timeout(Duration::from_secs(10)) {
                StreamPoll::Pending => continue,
                other => break other,
            }
        };
        assert!(matches!(finished, StreamPoll::Finished));
        assert!(matches!(stream.try_next(), StreamPoll::Finished));
    }

    #[test]
    fn open_loop_configs_are_validated() {
        use crate::{RecharacterizePolicy, ServingMode};

        let cases = [
            (
                "mode.recharacterize.sample_period",
                RecharacterizePolicy {
                    sample_period: 0,
                    ..RecharacterizePolicy::default()
                },
            ),
            (
                "mode.recharacterize.sample_capacity",
                RecharacterizePolicy {
                    sample_capacity: 0,
                    ..RecharacterizePolicy::default()
                },
            ),
            (
                "mode.recharacterize.ranges",
                RecharacterizePolicy {
                    ranges: vec![],
                    ..RecharacterizePolicy::default()
                },
            ),
            (
                "mode.recharacterize.ranges",
                RecharacterizePolicy {
                    ranges: vec![100, 300],
                    ..RecharacterizePolicy::default()
                },
            ),
        ];
        for (name, recharacterize) in cases {
            let policy = HebsPolicy::closed_loop(PipelineConfig::default());
            let result = Engine::new(
                policy,
                EngineConfig {
                    mode: ServingMode::OpenLoop { recharacterize },
                    ..EngineConfig::default()
                },
            );
            match result {
                Err(RuntimeError::InvalidConfig { name: got, .. }) => assert_eq!(got, name),
                other => panic!("expected InvalidConfig({name}), got {:?}", other.is_ok()),
            }
        }
    }

    #[test]
    fn open_loop_mode_requires_a_closed_loop_base_policy() {
        use crate::{RecharacterizePolicy, ServingMode};
        // An open-loop base policy would make the drift fallback repeat the
        // same characteristic lookup, breaking the distortion contract.
        let samples: Vec<hebs_core::CharacterizationSample> = (1..=5)
            .map(|i| hebs_core::CharacterizationSample {
                image: format!("s{i}"),
                dynamic_range: 50 * i,
                distortion: 0.3 - 0.05 * f64::from(i),
                power_saving: 0.4,
            })
            .collect();
        let curve = DistortionCharacteristic::from_samples(samples).unwrap();
        let policy = HebsPolicy::open_loop(PipelineConfig::default(), curve, false);
        assert!(matches!(
            Engine::new(
                policy,
                EngineConfig {
                    mode: ServingMode::OpenLoop {
                        recharacterize: RecharacterizePolicy::default(),
                    },
                    ..EngineConfig::default()
                },
            ),
            Err(RuntimeError::InvalidConfig { name: "mode", .. })
        ));
    }

    fn synthetic_curve(offset: f64) -> DistortionCharacteristic {
        let samples: Vec<hebs_core::CharacterizationSample> = (1..=5)
            .map(|i| hebs_core::CharacterizationSample {
                image: format!("s{i}"),
                dynamic_range: 50 * i,
                distortion: (0.3 - 0.05 * f64::from(i) + offset).max(0.0),
                power_saving: 0.4,
            })
            .collect();
        DistortionCharacteristic::from_samples(samples).unwrap()
    }

    fn two_class_bank() -> hebs_core::CharacteristicBank {
        hebs_core::CharacteristicBank::from_classes(vec![
            hebs_core::BankClass {
                centroid: [0.0; hebs_imaging::SIGNATURE_BINS],
                characteristic: Arc::new(synthetic_curve(0.0)),
                members: 1,
            },
            hebs_core::BankClass {
                centroid: [4.0; hebs_imaging::SIGNATURE_BINS],
                characteristic: Arc::new(synthetic_curve(0.1)),
                members: 1,
            },
        ])
        .unwrap()
    }

    #[test]
    fn zero_and_oversized_class_counts_are_rejected() {
        use crate::{RecharacterizePolicy, ServingMode};
        for classes in [0usize, 10_000] {
            let policy = HebsPolicy::closed_loop(PipelineConfig::default());
            let result = Engine::new(
                policy,
                EngineConfig {
                    mode: ServingMode::OpenLoop {
                        recharacterize: RecharacterizePolicy {
                            classes,
                            ..RecharacterizePolicy::default()
                        },
                    },
                    ..EngineConfig::default()
                },
            );
            assert!(matches!(
                result,
                Err(RuntimeError::InvalidConfig {
                    name: "mode.recharacterize.classes",
                    ..
                })
            ));
        }
    }

    #[test]
    fn bank_installs_respect_the_provisioned_class_count() {
        use crate::{RecharacterizePolicy, ServingMode};
        let engine_with_classes = |classes: usize| {
            Engine::new(
                HebsPolicy::closed_loop(PipelineConfig::default()),
                EngineConfig {
                    mode: ServingMode::OpenLoop {
                        recharacterize: RecharacterizePolicy {
                            classes,
                            ..RecharacterizePolicy::default()
                        },
                    },
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        };

        // A 2-class bank does not fit an engine provisioned for 1 class...
        let narrow = engine_with_classes(1);
        assert!(matches!(
            narrow.install_bank(two_class_bank()),
            Err(RuntimeError::InvalidConfig { name: "bank", .. })
        ));
        assert_eq!(narrow.characteristic_classes(), 0);

        // ...and installs cleanly when provisioned, with one generation per
        // class.
        let wide = engine_with_classes(2);
        let generation = wide.install_bank(two_class_bank()).unwrap();
        assert_eq!(wide.characteristic_classes(), 2);
        assert_eq!(wide.characteristic_generation(), generation);
        assert!(generation >= 2, "each class gets its own generation");
        assert!(wide.characteristic().is_some());

        // A single-curve install still works on a multi-class engine (a
        // one-class bank, the classic flow).
        let single_generation = wide.install_characteristic(synthetic_curve(0.0)).unwrap();
        assert!(single_generation > generation);
        assert_eq!(wide.characteristic_classes(), 1);
    }

    #[test]
    fn closed_loop_engines_refuse_characteristic_installs() {
        let engine = engine(EngineConfig::default());
        let samples: Vec<hebs_core::CharacterizationSample> = (1..=5)
            .map(|i| hebs_core::CharacterizationSample {
                image: format!("s{i}"),
                dynamic_range: 50 * i,
                distortion: 0.3 - 0.05 * f64::from(i),
                power_saving: 0.4,
            })
            .collect();
        let curve = DistortionCharacteristic::from_samples(samples).unwrap();
        assert!(matches!(
            engine.install_characteristic(curve),
            Err(RuntimeError::InvalidConfig { name: "mode", .. })
        ));
        assert!(matches!(
            engine.install_bank(two_class_bank()),
            Err(RuntimeError::InvalidConfig { name: "mode", .. })
        ));
        assert_eq!(engine.characteristic_generation(), 0);
        assert_eq!(engine.characteristic_classes(), 0);
        assert!(engine.characteristic().is_none());
    }

    /// Warm-start snapshot pins: round trips preserve the bank (classes,
    /// generations, first-miss cost), corrupt or mismatched bytes are a
    /// typed rejection that leaves the engine serving cold, and spilled
    /// cache entries re-enter through the normal insert path.
    mod snapshots {
        use super::*;
        use crate::{RecharacterizePolicy, ServingMode, SnapshotError};

        fn open_loop_engine(classes: usize, cache: Option<CacheConfig>) -> Engine {
            open_loop_engine_with_fit(classes, cache, hebs_core::CurveFit::default())
        }

        fn open_loop_engine_with_fit(
            classes: usize,
            cache: Option<CacheConfig>,
            fit: hebs_core::CurveFit,
        ) -> Engine {
            Engine::new(
                HebsPolicy::closed_loop(PipelineConfig::default()),
                EngineConfig {
                    workers: 1,
                    cache,
                    mode: ServingMode::OpenLoop {
                        recharacterize: RecharacterizePolicy {
                            classes,
                            fit,
                            ..RecharacterizePolicy::default()
                        },
                    },
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        }

        fn snapshot_bytes(engine: &Engine) -> Vec<u8> {
            let mut bytes = Vec::new();
            engine.snapshot_to_writer(&mut bytes).unwrap();
            bytes
        }

        #[test]
        fn snapshot_requires_an_installed_bank() {
            // A closed-loop engine has no characteristic bank at all...
            let closed = engine(EngineConfig::default());
            assert!(matches!(
                closed.snapshot_to_writer(&mut Vec::new()),
                Err(RuntimeError::Snapshot(SnapshotError::NoBank))
            ));
            // ...and an open-loop engine that has not characterized yet has
            // nothing worth shipping either.
            let cold = open_loop_engine(2, None);
            assert!(matches!(
                cold.snapshot_to_writer(&mut Vec::new()),
                Err(RuntimeError::Snapshot(SnapshotError::NoBank))
            ));
        }

        #[test]
        fn round_trip_restores_classes_and_generations() {
            let canary = open_loop_engine(2, None);
            canary.install_bank(two_class_bank()).unwrap();
            let bytes = snapshot_bytes(&canary);

            let fleet = open_loop_engine(2, None);
            let report = fleet.restore_from_reader(&mut &bytes[..]).unwrap();
            assert_eq!(report.classes, 2);
            assert_eq!(report.cache_restored, 0);
            assert_eq!(fleet.characteristic_classes(), 2);
            assert_eq!(
                fleet.characteristic_generation(),
                canary.characteristic_generation(),
                "a fresh restore replays the canary's install order"
            );
            assert_eq!(fleet.stats().snapshot_rejected, 0);

            // The restored bank serves immediately at the open-loop cost:
            // the first miss is one characteristic evaluation, with no
            // bootstrap recharacterization.
            fleet
                .process_frame(&synthetic::portrait(32, 32, 9))
                .unwrap();
            let stats = fleet.stats();
            assert_eq!(stats.fit_evaluations, 1, "warm first miss is one eval");
            assert_eq!(stats.recharacterizations, 0);
        }

        #[test]
        fn corrupt_snapshots_are_rejected_and_leave_the_engine_cold() {
            let canary = open_loop_engine(2, None);
            canary.install_bank(two_class_bank()).unwrap();
            let mut bytes = snapshot_bytes(&canary);
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x20;

            let fleet = open_loop_engine(2, None);
            assert!(matches!(
                fleet.restore_from_reader(&mut &bytes[..]),
                Err(RuntimeError::Snapshot(SnapshotError::ChecksumMismatch))
            ));
            assert_eq!(fleet.stats().snapshot_rejected, 1);
            assert_eq!(fleet.characteristic_classes(), 0, "no partial install");

            // Cold-start degradation: the engine still serves through the
            // closed-loop fallback, it just pays the cold (multi-eval) fit
            // cost instead of the warm single-eval lookup.
            let result = fleet
                .process_frame(&synthetic::portrait(32, 32, 9))
                .unwrap();
            assert!(result.outcome.power_saving >= 0.0);
            assert!(
                fleet.stats().fit_evaluations > 1,
                "a cold serve pays the full closed-loop fit"
            );
        }

        #[test]
        fn fit_mode_mismatch_is_refused() {
            // Restoring an Average-fit bank into a WorstCase engine would
            // silently weaken the distortion guarantee; the restore must be
            // a typed rejection instead.
            let canary = open_loop_engine_with_fit(2, None, hebs_core::CurveFit::Average);
            canary.install_bank(two_class_bank()).unwrap();
            let bytes = snapshot_bytes(&canary);

            let fleet = open_loop_engine(2, None);
            assert!(matches!(
                fleet.restore_from_reader(&mut &bytes[..]),
                Err(RuntimeError::Snapshot(SnapshotError::Malformed { .. }))
            ));
            assert_eq!(fleet.stats().snapshot_rejected, 1);
            assert_eq!(fleet.characteristic_classes(), 0);
        }

        #[test]
        fn oversized_banks_are_refused_by_narrow_engines() {
            let canary = open_loop_engine(2, None);
            canary.install_bank(two_class_bank()).unwrap();
            let bytes = snapshot_bytes(&canary);

            let narrow = open_loop_engine(1, None);
            assert!(matches!(
                narrow.restore_from_reader(&mut &bytes[..]),
                Err(RuntimeError::Snapshot(SnapshotError::Malformed { .. }))
            ));
            assert_eq!(narrow.stats().snapshot_rejected, 1);
        }

        #[test]
        fn spilled_exact_entries_replay_as_hits_after_restore() {
            let canary = open_loop_engine(2, Some(CacheConfig::exact()));
            canary.install_bank(two_class_bank()).unwrap();
            let frame = synthetic::portrait(32, 32, 5);
            canary.process_frame(&frame).unwrap();
            let bytes = snapshot_bytes(&canary);

            let fleet = open_loop_engine(2, Some(CacheConfig::exact()));
            let report = fleet.restore_from_reader(&mut &bytes[..]).unwrap();
            assert_eq!(report.cache_restored, 1);
            assert_eq!(report.cache_skipped, 0);

            // The spilled entry was re-keyed under the fleet engine's own
            // hash seed and generations: the same frame replays bit-exact
            // with zero fit work.
            let replay = fleet.process_frame(&frame).unwrap();
            assert!(replay.cache_hit, "restored entry must serve as a hit");
            assert_eq!(fleet.stats().fit_evaluations, 0);
        }

        #[test]
        fn cache_spill_is_skipped_when_the_cache_shape_differs() {
            let canary = open_loop_engine(2, Some(CacheConfig::exact()));
            canary.install_bank(two_class_bank()).unwrap();
            canary
                .process_frame(&synthetic::portrait(32, 32, 5))
                .unwrap();
            let bytes = snapshot_bytes(&canary);

            // An approximate-cache engine cannot adopt exact entries; the
            // bank still restores and the spill is counted as skipped.
            let fleet = open_loop_engine(2, Some(CacheConfig::approximate()));
            let report = fleet.restore_from_reader(&mut &bytes[..]).unwrap();
            assert_eq!(report.classes, 2);
            assert_eq!(report.cache_restored, 0);
            assert_eq!(report.cache_skipped, 1);
        }
    }

    /// Pixel-traversal pins for the fused serve path. The counter in
    /// [`hebs_imaging::traversals`] is thread-local and
    /// [`Engine::process_frame`] serves on the calling thread, so each test
    /// observes exactly its own serves. All pins use the histogram-capable
    /// [`GlobalUiqiDistortion`](hebs_quality::GlobalUiqiDistortion) measure:
    /// fits then run entirely in the histogram domain and the only
    /// per-pixel work left is the fused ingest and the final LUT apply.
    mod traversal_pins {
        use super::*;
        use crate::RecharacterizePolicy;
        use hebs_imaging::traversals;
        use hebs_quality::GlobalUiqiDistortion;

        fn global_measure_engine(cache: Option<CacheConfig>, mode: ServingMode) -> Engine {
            let policy = HebsPolicy::closed_loop(
                PipelineConfig::default().with_measure(GlobalUiqiDistortion),
            );
            Engine::new(
                policy,
                EngineConfig {
                    workers: 1,
                    cache,
                    mode,
                    ..EngineConfig::default()
                },
            )
            .unwrap()
        }

        fn frame() -> GrayImage {
            synthetic::linear_gradient(32, 32, 16, 240, true)
        }

        #[test]
        fn closed_loop_miss_traverses_the_frame_exactly_twice() {
            let engine = global_measure_engine(Some(CacheConfig::exact()), ServingMode::ClosedLoop);
            let frame = frame();
            let before = traversals::count();
            engine.process_frame(&frame).unwrap();
            assert_eq!(
                traversals::count() - before,
                2,
                "a closed-loop miss is one fused ingest plus one LUT materialize"
            );
        }

        #[test]
        fn exact_cache_hit_traverses_the_frame_exactly_once() {
            let engine = global_measure_engine(Some(CacheConfig::exact()), ServingMode::ClosedLoop);
            let frame = frame();
            engine.process_frame(&frame).unwrap();
            let before = traversals::count();
            let result = engine.process_frame(&frame).unwrap();
            assert!(result.cache_hit);
            assert_eq!(
                traversals::count() - before,
                1,
                "an exact hit shares the cached output: only the fused ingest runs"
            );
        }

        #[test]
        fn approximate_hit_traverses_the_frame_exactly_twice() {
            let engine =
                global_measure_engine(Some(CacheConfig::approximate()), ServingMode::ClosedLoop);
            let frame = frame();
            engine.process_frame(&frame).unwrap();
            let before = traversals::count();
            let result = engine.process_frame(&frame).unwrap();
            assert!(result.cache_hit);
            assert_eq!(
                traversals::count() - before,
                2,
                "an approximate hit replays the cached transform: ingest plus one materialize"
            );
        }

        #[test]
        fn uncached_serve_traverses_the_frame_exactly_twice() {
            let engine = global_measure_engine(None, ServingMode::ClosedLoop);
            let frame = frame();
            let before = traversals::count();
            engine.process_frame(&frame).unwrap();
            assert_eq!(traversals::count() - before, 2);
        }

        /// Satellite pin: a sketched serve performs zero *extra* full-frame
        /// traversals. With `sample_period: 1` every serve pushes its
        /// histogram into the class sketch, yet the costs stay identical to
        /// the unsketched pins above — the push clones the ingest histogram
        /// instead of re-reading the frame, and the bootstrap
        /// re-characterization triggered by the sketch runs purely in the
        /// histogram domain.
        #[test]
        fn sketched_serves_add_no_extra_frame_traversals() {
            let mode = ServingMode::OpenLoop {
                recharacterize: RecharacterizePolicy {
                    interval: None,
                    drift_limit: None,
                    sample_period: 1,
                    ..RecharacterizePolicy::default()
                },
            };
            let engine = global_measure_engine(Some(CacheConfig::exact()), mode);
            let frame = frame();

            let before = traversals::count();
            engine.process_frame(&frame).unwrap();
            assert_eq!(
                traversals::count() - before,
                2,
                "a sketched miss still costs ingest + materialize only"
            );

            let before = traversals::count();
            let result = engine.process_frame(&frame).unwrap();
            assert!(result.cache_hit);
            assert_eq!(
                traversals::count() - before,
                1,
                "a sketched exact hit still costs the ingest only"
            );
        }
    }
}
