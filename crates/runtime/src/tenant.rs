//! Multi-tenant serving: tenant routing, weighted cache partitioning and
//! admission control.
//!
//! A serving deployment multiplexes many (display profile × distortion
//! budget) *tenants* over shared hardware. [`TenantRegistry`] gives each
//! tenant its own [`Engine`] — its own `PipelineConfig` budget, curve bank,
//! traffic sketches and characteristic generations — while all tenants
//! share **one** transformation cache whose byte budget is partitioned by
//! [`TenantSpec::cache_weight`]. Every cache key carries the tenant id, so
//! no cross-tenant replay is possible, and each tenant's entries are
//! charged against its own slice: a hot tenant evicts *its own* entries
//! under pressure, never a neighbour's.
//!
//! On top of routing the registry bounds behavior under overload:
//!
//! * **Admission control** — [`TenantRegistry::admit`] hands out an RAII
//!   [`AdmissionPermit`] per in-flight frame; arrivals beyond a tenant's
//!   bound are refused with a typed [`RuntimeError::Shed`] and counted in
//!   [`EngineStats::sheds`]. The [`ShedPolicy`] is reject-newest per tenant
//!   by default, or weighted-fair across tenants: under shared overload a
//!   tenant is only clamped down to its weighted fair share, so a bursting
//!   neighbour cannot starve a well-behaved tenant.
//! * **Deadline-aware serving** — serves accept [`ServeOptions`] with a
//!   deadline; late frames degrade to the installed open-loop curve
//!   instead of paying the closed-loop drift recheck (see
//!   [`ServeOptions::deadline`]).

use std::fmt;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hebs_core::HebsPolicy;
use hebs_imaging::GrayImage;

use crate::cache::{CacheConfig, TransformCache};
use crate::engine::{validate_cache_config, Engine, EngineConfig, FrameResult, ServeOptions};
use crate::error::{Result, RuntimeError};
use crate::serving::ServingMode;
use crate::snapshot::{
    ByteReader, ByteWriter, RestoreReport, SnapshotError, REGISTRY_MAGIC, SNAPSHOT_FORMAT_VERSION,
};
use crate::stats::EngineStats;

/// Identifies one tenant of a [`TenantRegistry`]. Ids are assigned by the
/// builder in registration order (0, 1, …) and stamped into every cache
/// key the tenant's engine writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(u16);

impl TenantId {
    /// The id as a registry index.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    pub(crate) fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant#{}", self.0)
    }
}

/// How arrivals beyond the admission bounds are shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Per-tenant bound only: an arrival is shed when its tenant already
    /// has [`TenantSpec::queue_limit`] frames admitted. Tenants are fully
    /// independent — one tenant's overload never affects another's
    /// admission. The default.
    #[default]
    RejectNewest,
    /// A shared bound on top of the per-tenant one: while the registry's
    /// total admitted count is below `shared_capacity`, tenants may burst
    /// up to their own `queue_limit`; at or beyond it, each tenant is
    /// clamped to its *weighted fair share* of the shared capacity
    /// (proportional to [`TenantSpec::cache_weight`], minimum 1). A
    /// bursting neighbour can therefore use idle capacity but can never
    /// push a well-behaved tenant below its share.
    WeightedFair {
        /// Total admitted frames across all tenants before fair-share
        /// clamping kicks in (must be nonzero).
        shared_capacity: usize,
    },
}

/// Configuration of one tenant: its identity, serving parameters and its
/// weight in the shared resources.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable tenant name (looked up via
    /// [`TenantRegistry::id_of`]).
    pub name: String,
    /// The tenant's distortion budget, applied to every frame it serves
    /// (unless a serve overrides it via [`ServeOptions`]).
    pub max_distortion: f64,
    /// The tenant's serving mode (closed-loop or open-loop with its own
    /// re-characterization policy and curve bank).
    pub mode: ServingMode,
    /// The tenant's weight in shared partitions: its slice of the shared
    /// cache byte budget, and its fair share under
    /// [`ShedPolicy::WeightedFair`], are proportional to this (must be
    /// nonzero).
    pub cache_weight: u32,
    /// Maximum admitted-but-unfinished frames before arrivals are shed
    /// (must be nonzero).
    pub queue_limit: usize,
    /// Worker threads for the tenant engine's batch/stream paths (serves
    /// routed through the registry run on the calling thread).
    pub workers: usize,
}

impl Default for TenantSpec {
    fn default() -> Self {
        TenantSpec {
            name: String::new(),
            max_distortion: 0.10,
            mode: ServingMode::ClosedLoop,
            cache_weight: 1,
            queue_limit: 64,
            workers: 1,
        }
    }
}

impl TenantSpec {
    /// A default spec with a name.
    pub fn named(name: impl Into<String>) -> Self {
        TenantSpec {
            name: name.into(),
            ..TenantSpec::default()
        }
    }

    /// Sets the tenant's distortion budget.
    pub fn with_budget(mut self, max_distortion: f64) -> Self {
        self.max_distortion = max_distortion;
        self
    }

    /// Sets the tenant's serving mode.
    pub fn with_mode(mut self, mode: ServingMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the tenant's shared-resource weight.
    pub fn with_cache_weight(mut self, cache_weight: u32) -> Self {
        self.cache_weight = cache_weight;
        self
    }

    /// Sets the tenant's admission bound.
    pub fn with_queue_limit(mut self, queue_limit: usize) -> Self {
        self.queue_limit = queue_limit;
        self
    }
}

/// One registered tenant's runtime state.
struct TenantState {
    name: String,
    engine: Engine,
    queue_limit: usize,
    /// The tenant's clamp under [`ShedPolicy::WeightedFair`]:
    /// `max(1, shared_capacity × weight ∕ Σweights)`. Unused (0) under
    /// [`ShedPolicy::RejectNewest`].
    fair_share: usize,
    /// Admitted-but-unfinished frames (what [`EngineStats::queue_depth`]
    /// reports).
    outstanding: Arc<AtomicUsize>,
}

/// An RAII admission slot: holding one means the frame is admitted and
/// counted against its tenant's (and the registry's) in-flight bound;
/// dropping it releases the slot. Obtain one from
/// [`TenantRegistry::admit`], serve through
/// [`TenantRegistry::serve_with_permit`], and drop it when the frame's
/// result has been delivered.
#[derive(Debug)]
pub struct AdmissionPermit {
    tenant: TenantId,
    outstanding: Arc<AtomicUsize>,
    total: Arc<AtomicUsize>,
}

impl AdmissionPermit {
    /// The tenant this permit admits a frame for.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.total.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Builder for a [`TenantRegistry`]; see [`TenantRegistry::builder`].
#[derive(Default)]
pub struct TenantRegistryBuilder {
    cache: Option<CacheConfig>,
    shed: ShedPolicy,
    tenants: Vec<(HebsPolicy, TenantSpec)>,
}

impl TenantRegistryBuilder {
    /// Configures the shared transformation cache. Its byte budget is
    /// partitioned across tenants by [`TenantSpec::cache_weight`]; with no
    /// cache configured, tenants serve uncached.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets the shed policy (default: [`ShedPolicy::RejectNewest`]).
    pub fn with_shed_policy(mut self, shed: ShedPolicy) -> Self {
        self.shed = shed;
        self
    }

    /// Registers a tenant: its HEBS policy (the closed-loop pipeline its
    /// budget is enforced with) and its spec. Ids are assigned in
    /// registration order.
    pub fn tenant(mut self, policy: HebsPolicy, spec: TenantSpec) -> Self {
        self.tenants.push((policy, spec));
        self
    }

    /// Builds the registry: creates the shared cache, partitions its byte
    /// budget by weight, and constructs one engine per tenant.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::InvalidConfig`] when no tenant is
    /// registered, a spec's weight or queue bound is zero, the shed
    /// policy's shared capacity is zero, or a tenant's engine
    /// configuration is invalid.
    pub fn build(self) -> Result<TenantRegistry> {
        if self.tenants.is_empty() {
            return Err(RuntimeError::InvalidConfig {
                name: "tenants",
                reason: "a registry needs at least one tenant".to_string(),
            });
        }
        if self.tenants.len() > usize::from(u16::MAX) {
            return Err(RuntimeError::InvalidConfig {
                name: "tenants",
                reason: format!("{} tenants exceed the u16 id space", self.tenants.len()),
            });
        }
        if let ShedPolicy::WeightedFair { shared_capacity } = self.shed {
            if shared_capacity == 0 {
                return Err(RuntimeError::InvalidConfig {
                    name: "shed.shared_capacity",
                    reason: "must be nonzero".to_string(),
                });
            }
        }
        let mut total_weight: u64 = 0;
        for (_, spec) in &self.tenants {
            if spec.cache_weight == 0 {
                return Err(RuntimeError::InvalidConfig {
                    name: "tenant.cache_weight",
                    reason: format!("tenant {:?} has weight 0", spec.name),
                });
            }
            if spec.queue_limit == 0 {
                return Err(RuntimeError::InvalidConfig {
                    name: "tenant.queue_limit",
                    reason: format!("tenant {:?} has queue limit 0", spec.name),
                });
            }
            total_weight += u64::from(spec.cache_weight);
        }

        let cache = match &self.cache {
            Some(config) => {
                validate_cache_config(config)?;
                Some(Arc::new(TransformCache::new(config)))
            }
            None => None,
        };
        // Partition the shared byte budget by weight. An unbounded cache
        // (byte_budget None) leaves every tenant unlimited: nothing to
        // partition.
        if let (Some(cache), Some(byte_budget)) =
            (&cache, self.cache.as_ref().and_then(|c| c.byte_budget))
        {
            for (id, (_, spec)) in self.tenants.iter().enumerate() {
                let slice = (byte_budget as u128 * u128::from(spec.cache_weight)
                    / u128::from(total_weight)) as usize;
                cache.set_tenant_limit(id as u16, slice);
            }
        }

        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (id, (policy, spec)) in self.tenants.into_iter().enumerate() {
            let fair_share = match self.shed {
                ShedPolicy::RejectNewest => 0,
                ShedPolicy::WeightedFair { shared_capacity } => (shared_capacity as u128
                    * u128::from(spec.cache_weight)
                    / u128::from(total_weight))
                .max(1) as usize,
            };
            let config = EngineConfig {
                workers: spec.workers,
                queue_depth: 0,
                max_distortion: spec.max_distortion,
                cache: None,
                mode: spec.mode,
            };
            let engine = match &cache {
                Some(cache) => {
                    Engine::with_shared_cache(policy, config, Arc::clone(cache), id as u16)?
                }
                None => Engine::new(policy, config)?,
            };
            tenants.push(TenantState {
                name: spec.name,
                engine,
                queue_limit: spec.queue_limit,
                fair_share,
                outstanding: Arc::new(AtomicUsize::new(0)),
            });
        }
        Ok(TenantRegistry {
            cache,
            shed: self.shed,
            tenants,
            total_outstanding: Arc::new(AtomicUsize::new(0)),
        })
    }
}

/// A registry of tenant engines sharing one transformation cache, with
/// admission control in front.
///
/// ```
/// use hebs_core::{HebsPolicy, PipelineConfig};
/// use hebs_imaging::synthetic;
/// use hebs_runtime::{CacheConfig, ServeOptions, TenantRegistry, TenantSpec};
///
/// let registry = TenantRegistry::builder()
///     .with_cache(CacheConfig::exact())
///     .tenant(
///         HebsPolicy::closed_loop(PipelineConfig::default()),
///         TenantSpec::named("mobile").with_budget(0.05),
///     )
///     .tenant(
///         HebsPolicy::closed_loop(PipelineConfig::default()),
///         TenantSpec::named("desktop").with_budget(0.15).with_cache_weight(3),
///     )
///     .build()?;
/// let mobile = registry.id_of("mobile").unwrap();
/// let frame = synthetic::portrait(32, 32, 1);
/// let result = registry.serve(mobile, &frame, &ServeOptions::default())?;
/// assert!(result.outcome.distortion <= 0.05);
/// # Ok::<(), hebs_runtime::RuntimeError>(())
/// ```
pub struct TenantRegistry {
    cache: Option<Arc<TransformCache>>,
    shed: ShedPolicy,
    tenants: Vec<TenantState>,
    total_outstanding: Arc<AtomicUsize>,
}

impl fmt::Debug for TenantRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantRegistry")
            .field("tenants", &self.tenants.len())
            .field("shed", &self.shed)
            .field("cached", &self.cache.is_some())
            .finish_non_exhaustive()
    }
}

impl TenantRegistry {
    /// Starts building a registry.
    pub fn builder() -> TenantRegistryBuilder {
        TenantRegistryBuilder::default()
    }

    /// Number of registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The registered tenant ids, in registration order.
    pub fn ids(&self) -> impl Iterator<Item = TenantId> + '_ {
        (0..self.tenants.len()).map(|id| TenantId(id as u16))
    }

    /// Looks a tenant up by name (the first registration wins on
    /// duplicates).
    pub fn id_of(&self, name: &str) -> Option<TenantId> {
        self.tenants
            .iter()
            .position(|t| t.name == name)
            .map(|id| TenantId(id as u16))
    }

    /// A tenant's name.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an unregistered id.
    pub fn name(&self, tenant: TenantId) -> Result<&str> {
        Ok(&self.state(tenant)?.name)
    }

    /// A tenant's engine, for direct access to batch/stream serving,
    /// characteristic installs and raw statistics. Serves through the
    /// engine bypass admission control; route load through
    /// [`TenantRegistry::admit`] + [`TenantRegistry::serve_with_permit`]
    /// (or [`TenantRegistry::serve`]) to bound it.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an unregistered id.
    pub fn engine(&self, tenant: TenantId) -> Result<&Engine> {
        Ok(&self.state(tenant)?.engine)
    }

    /// Admits one frame for `tenant`, or sheds it.
    ///
    /// The returned [`AdmissionPermit`] counts against the tenant's
    /// in-flight bound until dropped; drop it when the frame's result has
    /// been delivered (not merely computed), so the bound covers the whole
    /// queue, not just the serving pool.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Shed`] when the tenant is at its bound (see
    /// [`ShedPolicy`]) — the shed is also counted in the tenant's
    /// [`EngineStats::sheds`] — and [`RuntimeError::UnknownTenant`] for an
    /// unregistered id.
    pub fn admit(&self, tenant: TenantId) -> Result<AdmissionPermit> {
        let state = self.state(tenant)?;
        // Optimistically claim the slot, then roll back on refusal: two
        // racing arrivals can briefly overshoot the bound, but never both
        // hold permits beyond it.
        hebs_analysis::interleave::point("tenant.admit");
        let outstanding = state.outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        let total = self.total_outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        let admitted = match self.shed {
            ShedPolicy::RejectNewest => outstanding <= state.queue_limit,
            ShedPolicy::WeightedFair { shared_capacity } => {
                outstanding <= state.fair_share
                    || (total <= shared_capacity && outstanding <= state.queue_limit)
            }
        };
        if !admitted {
            state.outstanding.fetch_sub(1, Ordering::AcqRel);
            self.total_outstanding.fetch_sub(1, Ordering::AcqRel);
            state.engine.record_shed();
            return Err(RuntimeError::Shed {
                tenant: tenant.raw(),
                queue_depth: outstanding - 1,
            });
        }
        Ok(AdmissionPermit {
            tenant,
            outstanding: Arc::clone(&state.outstanding),
            total: Arc::clone(&self.total_outstanding),
        })
    }

    /// Serves one admitted frame on the calling thread, with the permit's
    /// tenant's engine. The permit stays held (the caller drops it once
    /// the result is delivered).
    ///
    /// # Errors
    ///
    /// Propagates the tenant engine's serving errors.
    pub fn serve_with_permit(
        &self,
        permit: &AdmissionPermit,
        frame: &GrayImage,
        options: &ServeOptions,
    ) -> Result<FrameResult> {
        let state = self.state(permit.tenant())?;
        state.engine.process_frame_with_options(frame, options)
    }

    /// Admit-and-serve in one call: the permit is held for the duration of
    /// the serve and released when it returns.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Shed`] when admission refuses the frame;
    /// otherwise propagates the tenant engine's serving errors.
    pub fn serve(
        &self,
        tenant: TenantId,
        frame: &GrayImage,
        options: &ServeOptions,
    ) -> Result<FrameResult> {
        let permit = self.admit(tenant)?;
        self.serve_with_permit(&permit, frame, options)
    }

    /// A tenant's cumulative statistics, with the shared-cache fields
    /// scoped to the tenant: `cache_bytes` is the tenant's own resident
    /// bytes (its partition charge, not the whole shared cache) and
    /// `queue_depth` its currently admitted frame count.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an unregistered id.
    pub fn stats(&self, tenant: TenantId) -> Result<EngineStats> {
        let state = self.state(tenant)?;
        let mut stats = state.engine.stats();
        if let Some(cache) = &self.cache {
            stats.cache_bytes = cache.tenant_bytes(tenant.raw()) as u64;
        }
        stats.queue_depth = state.outstanding.load(Ordering::Acquire) as u64;
        Ok(stats)
    }

    /// Bytes currently charged to a tenant in the shared cache (0 with no
    /// cache configured).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownTenant`] for an unregistered id.
    pub fn tenant_bytes(&self, tenant: TenantId) -> Result<usize> {
        let _ = self.state(tenant)?;
        Ok(self
            .cache
            .as_ref()
            .map_or(0, |cache| cache.tenant_bytes(tenant.raw())))
    }

    /// Saves every tenant's warm-start snapshot into one container: the
    /// canary side of fleet bank distribution. Each tenant record carries
    /// the tenant's *name* and its engine's self-checking snapshot (see
    /// [`Engine::snapshot_to_writer`]); a tenant whose engine has nothing
    /// learned yet (closed-loop, or open-loop before characterization) is
    /// recorded as absent rather than failing the save.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Snapshot`] with [`SnapshotError::Io`] when
    /// `writer` fails.
    pub fn snapshot_all_to_writer<W: Write>(&self, writer: &mut W) -> Result<()> {
        let mut w = ByteWriter::new();
        w.raw(&REGISTRY_MAGIC);
        w.u16(SNAPSHOT_FORMAT_VERSION);
        w.u32(self.tenants.len() as u32);
        for state in &self.tenants {
            w.str16(&state.name);
            let mut blob = Vec::new();
            match state.engine.snapshot_to_writer(&mut blob) {
                Ok(()) => {
                    w.u8(1);
                    w.u64(blob.len() as u64);
                    w.raw(&blob);
                }
                Err(RuntimeError::Snapshot(SnapshotError::NoBank)) => w.u8(0),
                Err(err) => return Err(err),
            }
        }
        writer
            .write_all(&w.into_bytes())
            .map_err(|err| RuntimeError::Snapshot(SnapshotError::Io(err)))
    }

    /// Restores a fleet-distribution container saved by
    /// [`TenantRegistry::snapshot_all_to_writer`]: tenants are matched *by
    /// name*, each matched engine restores through
    /// [`Engine::restore_from_reader`], and the per-tenant reports of the
    /// tenants that restored are returned in container order.
    ///
    /// Degradations are per tenant, never fleet-wide: an unknown name
    /// (renamed or removed tenant), an absent record, or a tenant blob the
    /// engine rejects (counted in that tenant's
    /// [`EngineStats::snapshot_rejected`]) is skipped and every other
    /// tenant still restores.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Snapshot`] when the container itself is
    /// unreadable — bad magic, newer format version, or truncated framing.
    pub fn restore_all_from_reader<R: Read>(
        &self,
        reader: &mut R,
    ) -> Result<Vec<(TenantId, RestoreReport)>> {
        let mut bytes = Vec::new();
        reader
            .read_to_end(&mut bytes)
            .map_err(|err| RuntimeError::Snapshot(SnapshotError::Io(err)))?;
        self.restore_all(&bytes).map_err(RuntimeError::Snapshot)
    }

    fn restore_all(
        &self,
        bytes: &[u8],
    ) -> std::result::Result<Vec<(TenantId, RestoreReport)>, SnapshotError> {
        let mut r = ByteReader::new(bytes);
        if r.take(8, "registry magic")? != REGISTRY_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.u16("registry version")?;
        if version > SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let count = r.u32("registry tenant count")? as usize;
        if count > usize::from(u16::MAX) {
            return Err(SnapshotError::Malformed {
                context: "registry tenant count",
                reason: format!("{count} exceeds the tenant id space"),
            });
        }
        let mut restored = Vec::new();
        for _ in 0..count {
            let name = r.str16("registry tenant name")?;
            match r.u8("registry tenant flag")? {
                0 => continue,
                1 => {}
                other => {
                    return Err(SnapshotError::Malformed {
                        context: "registry tenant flag",
                        reason: format!("unknown flag {other}"),
                    })
                }
            }
            let len = r.u64("registry blob length")? as usize;
            let blob = r.take(len, "registry blob")?;
            let Some(id) = self.id_of(&name) else {
                continue;
            };
            let Ok(state) = self.state(id) else {
                continue;
            };
            // A rejected tenant blob degrades that tenant to cold start
            // (the engine counts the rejection); the rest of the fleet
            // restore proceeds.
            if let Ok(report) = state.engine.restore_from_reader(&mut &blob[..]) {
                restored.push((id, report));
            }
        }
        Ok(restored)
    }

    fn state(&self, tenant: TenantId) -> Result<&TenantState> {
        self.tenants
            .get(tenant.index())
            .ok_or(RuntimeError::UnknownTenant {
                tenant: tenant.raw(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hebs_core::PipelineConfig;
    use hebs_imaging::synthetic;

    fn closed_loop() -> HebsPolicy {
        HebsPolicy::closed_loop(PipelineConfig::default())
    }

    fn two_tenant_registry(shed: ShedPolicy) -> TenantRegistry {
        TenantRegistry::builder()
            .with_cache(CacheConfig::exact())
            .with_shed_policy(shed)
            .tenant(
                closed_loop(),
                TenantSpec::named("a")
                    .with_queue_limit(2)
                    .with_cache_weight(3),
            )
            .tenant(closed_loop(), TenantSpec::named("b").with_queue_limit(2))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_registries() {
        assert!(matches!(
            TenantRegistry::builder().build(),
            Err(RuntimeError::InvalidConfig {
                name: "tenants",
                ..
            })
        ));
        assert!(matches!(
            TenantRegistry::builder()
                .tenant(closed_loop(), TenantSpec::default().with_cache_weight(0))
                .build(),
            Err(RuntimeError::InvalidConfig {
                name: "tenant.cache_weight",
                ..
            })
        ));
        assert!(matches!(
            TenantRegistry::builder()
                .tenant(closed_loop(), TenantSpec::default().with_queue_limit(0))
                .build(),
            Err(RuntimeError::InvalidConfig {
                name: "tenant.queue_limit",
                ..
            })
        ));
        assert!(matches!(
            TenantRegistry::builder()
                .with_shed_policy(ShedPolicy::WeightedFair { shared_capacity: 0 })
                .tenant(closed_loop(), TenantSpec::default())
                .build(),
            Err(RuntimeError::InvalidConfig {
                name: "shed.shared_capacity",
                ..
            })
        ));
        assert!(matches!(
            TenantRegistry::builder()
                .with_cache(CacheConfig::exact().with_capacity(0))
                .tenant(closed_loop(), TenantSpec::default())
                .build(),
            Err(RuntimeError::InvalidConfig {
                name: "cache.capacity",
                ..
            })
        ));
    }

    #[test]
    fn ids_names_and_unknown_tenants() {
        let registry = two_tenant_registry(ShedPolicy::RejectNewest);
        assert_eq!(registry.tenant_count(), 2);
        let ids: Vec<TenantId> = registry.ids().collect();
        assert_eq!(ids.len(), 2);
        assert_eq!(registry.name(ids[0]).unwrap(), "a");
        assert_eq!(registry.id_of("b"), Some(ids[1]));
        assert_eq!(registry.id_of("nope"), None);
        let bogus = TenantId(7);
        assert!(matches!(
            registry.name(bogus),
            Err(RuntimeError::UnknownTenant { tenant: 7 })
        ));
        assert!(matches!(
            registry.admit(bogus),
            Err(RuntimeError::UnknownTenant { .. })
        ));
        assert_eq!(format!("{}", ids[1]), "tenant#1");
    }

    #[test]
    fn reject_newest_sheds_at_the_tenant_bound_and_recovers() {
        let registry = two_tenant_registry(ShedPolicy::RejectNewest);
        let a = registry.id_of("a").unwrap();
        let b = registry.id_of("b").unwrap();

        let p1 = registry.admit(a).unwrap();
        let p2 = registry.admit(a).unwrap();
        let shed = registry.admit(a);
        assert!(matches!(
            shed,
            Err(RuntimeError::Shed {
                tenant: 0,
                queue_depth: 2
            })
        ));
        // The other tenant is unaffected.
        let pb = registry.admit(b).unwrap();
        assert_eq!(pb.tenant(), b);

        // Shed accounting: counted per tenant, queue depth is live.
        let stats = registry.stats(a).unwrap();
        assert_eq!(stats.sheds, 1);
        assert_eq!(stats.queue_depth, 2);
        assert_eq!(registry.stats(b).unwrap().sheds, 0);

        // Releasing a permit re-opens the bound.
        drop(p1);
        let p3 = registry.admit(a).unwrap();
        drop(p2);
        drop(p3);
        assert_eq!(registry.stats(a).unwrap().queue_depth, 0);
    }

    #[test]
    fn weighted_fair_clamps_to_the_share_only_under_shared_overload() {
        let registry = TenantRegistry::builder()
            .with_shed_policy(ShedPolicy::WeightedFair { shared_capacity: 4 })
            .tenant(
                closed_loop(),
                TenantSpec::named("protected")
                    .with_cache_weight(3)
                    .with_queue_limit(8),
            )
            .tenant(
                closed_loop(),
                TenantSpec::named("bursty")
                    .with_cache_weight(1)
                    .with_queue_limit(8),
            )
            .build()
            .unwrap();
        let protected = registry.id_of("protected").unwrap();
        let bursty = registry.id_of("bursty").unwrap();
        // Fair shares of capacity 4 at weights 3:1 → 3 and 1.

        // Idle registry: the bursty tenant may exceed its fair share (up
        // to its own queue_limit) while shared capacity remains.
        let burst: Vec<AdmissionPermit> = (0..3).map(|_| registry.admit(bursty).unwrap()).collect();
        assert_eq!(burst.len(), 3, "bursting into idle capacity is allowed");

        // Shared capacity is now 3/4 used; the 4th admit fills it. Beyond
        // that the bursty tenant is clamped to its fair share (1) and
        // sheds...
        let fill = registry.admit(bursty).unwrap();
        assert!(matches!(
            registry.admit(bursty),
            Err(RuntimeError::Shed { tenant: 1, .. })
        ));
        // ...while the protected tenant can still claim up to its share.
        let pa = registry.admit(protected).unwrap();
        let pb = registry.admit(protected).unwrap();
        let pc = registry.admit(protected).unwrap();
        assert!(
            matches!(registry.admit(protected), Err(RuntimeError::Shed { .. })),
            "beyond its fair share the protected tenant sheds too"
        );
        drop((burst, fill, pa, pb, pc));
        assert_eq!(registry.stats(protected).unwrap().queue_depth, 0);
        assert_eq!(registry.stats(bursty).unwrap().queue_depth, 0);
    }

    #[test]
    fn serves_route_to_the_tenants_own_budget_and_cache_slice() {
        let registry = TenantRegistry::builder()
            .with_cache(CacheConfig::exact())
            .tenant(closed_loop(), TenantSpec::named("strict").with_budget(0.02))
            .tenant(closed_loop(), TenantSpec::named("loose").with_budget(0.30))
            .build()
            .unwrap();
        let strict = registry.id_of("strict").unwrap();
        let loose = registry.id_of("loose").unwrap();
        let frame = synthetic::portrait(32, 32, 3);

        let s = registry
            .serve(strict, &frame, &ServeOptions::default())
            .unwrap();
        assert!(s.outcome.distortion <= 0.02);
        let l = registry
            .serve(loose, &frame, &ServeOptions::default())
            .unwrap();
        assert!(l.outcome.distortion <= 0.30);
        assert!(
            !l.cache_hit,
            "the identical frame must not replay across tenants"
        );

        // Each tenant's bytes are charged to its own partition.
        assert!(registry.tenant_bytes(strict).unwrap() > 0);
        assert!(registry.tenant_bytes(loose).unwrap() > 0);
        let strict_stats = registry.stats(strict).unwrap();
        assert_eq!(
            strict_stats.cache_bytes as usize,
            registry.tenant_bytes(strict).unwrap(),
            "stats scope cache_bytes to the tenant"
        );

        // A repeat within a tenant replays from its own slice.
        let again = registry
            .serve(strict, &frame, &ServeOptions::default())
            .unwrap();
        assert!(again.cache_hit);
    }

    #[test]
    fn permits_are_tenant_tagged_and_serve_with_permit_routes_by_them() {
        let registry = two_tenant_registry(ShedPolicy::RejectNewest);
        let a = registry.id_of("a").unwrap();
        let frame = synthetic::still_life(24, 24, 5);
        let permit = registry.admit(a).unwrap();
        assert_eq!(permit.tenant(), a);
        let result = registry
            .serve_with_permit(&permit, &frame, &ServeOptions::default())
            .unwrap();
        assert!(result.outcome.power_saving >= 0.0);
        drop(permit);
        assert_eq!(registry.stats(a).unwrap().frames, 1);
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TenantRegistry>();
        assert_send_sync::<AdmissionPermit>();
        assert_send_sync::<ShedPolicy>();
        assert_send_sync::<TenantSpec>();
        assert_send_sync::<TenantId>();
    }

    fn synthetic_curve() -> hebs_core::DistortionCharacteristic {
        let samples: Vec<hebs_core::CharacterizationSample> = (1..=5)
            .map(|i| hebs_core::CharacterizationSample {
                image: format!("s{i}"),
                dynamic_range: 50 * i,
                distortion: 0.3 - 0.05 * f64::from(i),
                power_saving: 0.4,
            })
            .collect();
        hebs_core::DistortionCharacteristic::from_samples(samples).unwrap()
    }

    /// A mixed fleet: one warm-startable open-loop tenant alongside a
    /// closed-loop one that has nothing to snapshot.
    fn mixed_registry() -> TenantRegistry {
        TenantRegistry::builder()
            .tenant(
                closed_loop(),
                TenantSpec::named("edge").with_mode(crate::ServingMode::OpenLoop {
                    recharacterize: crate::RecharacterizePolicy::default(),
                }),
            )
            .tenant(closed_loop(), TenantSpec::named("batch"))
            .build()
            .unwrap()
    }

    #[test]
    fn registry_snapshots_round_trip_by_tenant_name() {
        let canary = mixed_registry();
        let edge = canary.id_of("edge").unwrap();
        canary
            .engine(edge)
            .unwrap()
            .install_characteristic(synthetic_curve())
            .unwrap();

        let mut bytes = Vec::new();
        canary.snapshot_all_to_writer(&mut bytes).unwrap();

        // Restore matches tenants by name, not index: only the open-loop
        // tenant had a bank, and only it reports a restore.
        let fleet = mixed_registry();
        let restored = fleet.restore_all_from_reader(&mut &bytes[..]).unwrap();
        let fleet_edge = fleet.id_of("edge").unwrap();
        assert_eq!(restored.len(), 1);
        assert_eq!(restored[0].0, fleet_edge);
        assert_eq!(restored[0].1.classes, 1);
        assert_eq!(
            fleet
                .engine(fleet_edge)
                .unwrap()
                .characteristic_generation(),
            canary.engine(edge).unwrap().characteristic_generation()
        );
        // The closed-loop tenant is untouched.
        let batch = fleet.id_of("batch").unwrap();
        assert_eq!(fleet.stats(batch).unwrap().snapshot_rejected, 0);
    }

    #[test]
    fn registry_restores_skip_unknown_names_and_reject_corrupt_containers() {
        let canary = mixed_registry();
        let edge = canary.id_of("edge").unwrap();
        canary
            .engine(edge)
            .unwrap()
            .install_characteristic(synthetic_curve())
            .unwrap();
        let mut bytes = Vec::new();
        canary.snapshot_all_to_writer(&mut bytes).unwrap();

        // A fleet node without the "edge" tenant skips that record instead
        // of misrouting the bank into a different tenant.
        let renamed = TenantRegistry::builder()
            .tenant(
                closed_loop(),
                TenantSpec::named("other").with_mode(crate::ServingMode::OpenLoop {
                    recharacterize: crate::RecharacterizePolicy::default(),
                }),
            )
            .tenant(closed_loop(), TenantSpec::named("batch"))
            .build()
            .unwrap();
        let restored = renamed.restore_all_from_reader(&mut &bytes[..]).unwrap();
        assert!(restored.is_empty());
        let other = renamed.id_of("other").unwrap();
        assert_eq!(renamed.engine(other).unwrap().characteristic_classes(), 0);

        // Container-level corruption is a typed error, not a panic.
        bytes[0] ^= 0xFF;
        let fleet = mixed_registry();
        assert!(matches!(
            fleet.restore_all_from_reader(&mut &bytes[..]),
            Err(RuntimeError::Snapshot(crate::SnapshotError::BadMagic))
        ));
    }
}
